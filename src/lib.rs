//! # gridcast
//!
//! Facade crate re-exporting the whole `gridcast` workspace: a reproduction of
//! *"Scheduling Heuristics for Efficient Broadcast Operations on Grid
//! Environments"* (Barchet-Steffenel & Mounié, PMEO-PDS'06).
//!
//! The workspace implements:
//!
//! * the **pLogP** performance model ([`plogp`]),
//! * a **grid topology** substrate with the GRID'5000 snapshot of the paper's
//!   Table 3 ([`topology`]),
//! * **intra-cluster collective algorithms** and their cost models
//!   ([`collectives`]),
//! * the paper's **inter-cluster broadcast scheduling heuristics** — Flat Tree,
//!   FEF, ECEF, ECEF-LA, ECEF-LAt, ECEF-LAT and BottomUp — all driven by one
//!   pattern-agnostic, allocation-free
//!   [`ScheduleEngine`](gridcast_core::ScheduleEngine) with per-heuristic
//!   [`SelectionPolicy`](gridcast_core::SelectionPolicy) rules ([`core`]),
//! * a **discrete-event simulator** standing in for the paper's GRID'5000 +
//!   MagPIe/LAM-MPI testbed ([`simulator`]),
//! * the **experiment harness** regenerating every figure and table of the
//!   evaluation ([`experiments`]).
//!
//! ## Quickstart
//!
//! ```
//! use gridcast::prelude::*;
//!
//! // The 88-machine GRID'5000 snapshot of the paper's Table 3.
//! let grid = grid5000_table3();
//! let message = MessageSize::from_mib(1);
//!
//! // Build the broadcast problem rooted at cluster 0 and schedule it with the
//! // grid-aware ECEF-LAT heuristic.
//! let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
//! let schedule = HeuristicKind::EcefLaMax.schedule(&problem);
//! println!("predicted makespan: {}", schedule.makespan());
//! assert!(schedule.makespan() > Time::ZERO);
//!
//! // Sweeps and services should hold a reusable engine and batch heuristics:
//! // buffers are shared across runs and the round loop never allocates.
//! let mut engine = ScheduleEngine::new();
//! let all = engine.schedule_all(&problem, &HeuristicKind::all());
//! assert_eq!(all.len(), 7);
//! assert_eq!(all[4].makespan(), schedule.makespan()); // ECEF-LAT appears in both
//! ```

pub use gridcast_collectives as collectives;
pub use gridcast_core as core;
pub use gridcast_experiments as experiments;
pub use gridcast_plogp as plogp;
pub use gridcast_simulator as simulator;
pub use gridcast_topology as topology;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use gridcast_collectives::{
        concat_blocks, intra_broadcast_time, BroadcastAlgorithm, Pattern, PatternCost,
    };
    pub use gridcast_core::{
        allgather_estimate, allgather_schedule, alltoall_estimate, alltoall_schedule,
        BroadcastProblem, EdgeCosts, HeuristicKind, RelayGatherProblem, RelayOrdering,
        RelayScatterProblem, Schedule, ScheduleEngine, ScheduleEvent, SelectionPolicy,
    };
    pub use gridcast_plogp::{MessageSize, PLogP, Time};
    pub use gridcast_simulator::{SimulationOutcome, Simulator};
    pub use gridcast_topology::{grid5000_table3, Cluster, ClusterId, Grid, GridGenerator, NodeId};
}
