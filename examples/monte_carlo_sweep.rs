//! Run a small Monte-Carlo sweep (the engine behind Figures 1–4) and print the
//! mean completion times and hit rates for a grid size of your choice.
//!
//! ```text
//! cargo run --release --example monte_carlo_sweep -- 20
//! ```
//!
//! The optional argument is the number of clusters (default 10).

use gridcast::core::HeuristicKind;
use gridcast::experiments::{run_monte_carlo, ExperimentConfig};

fn main() {
    let clusters: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .filter(|&n| n >= 2)
        .unwrap_or(10);
    let config = ExperimentConfig::default().with_iterations(1_000);
    let kinds = HeuristicKind::all();

    println!(
        "Monte-Carlo sweep: {} clusters, {} iterations, 1 MiB broadcast, Table 2 parameters\n",
        clusters, config.iterations
    );
    let outcome = run_monte_carlo(clusters, &kinds, &config);

    println!(
        "{:<12} {:>16} {:>12}",
        "heuristic", "mean makespan", "hit rate"
    );
    for kind in kinds {
        println!(
            "{:<12} {:>15.3}s {:>11.1}%",
            kind.name(),
            outcome.mean_of(kind).unwrap().as_secs(),
            outcome.hit_rate_of(kind).unwrap() * 100.0
        );
    }
    println!(
        "\nper-iteration global minimum (lower envelope): {:.3}s",
        outcome.mean_global_minimum.as_secs()
    );
}
