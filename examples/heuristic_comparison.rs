//! Compare all seven heuristics of the paper on the same grid, both by the
//! model-predicted makespan and by simulated execution — a one-instance preview
//! of Figures 5 and 6.
//!
//! ```text
//! cargo run --release --example heuristic_comparison
//! ```

use gridcast::prelude::*;

fn main() {
    let grid = grid5000_table3();
    let root = ClusterId(0);

    println!(
        "{:<12} {:>14} {:>14} {:>14}",
        "message", "heuristic", "predicted", "simulated"
    );
    for mib in [1u64, 2, 4] {
        let message = MessageSize::from_mib(mib);
        let simulator = Simulator::new(&grid, message);
        let problem = BroadcastProblem::from_grid(&grid, root, message);
        for kind in [
            HeuristicKind::FlatTree,
            HeuristicKind::Fef,
            HeuristicKind::Ecef,
            HeuristicKind::EcefLa,
            HeuristicKind::EcefLaMin,
            HeuristicKind::EcefLaMax,
            HeuristicKind::BottomUp,
        ] {
            let schedule = kind.schedule(&problem);
            let predicted = schedule.makespan();
            let simulated = simulator.execute_schedule(&schedule, Time::ZERO).completion;
            println!(
                "{:<12} {:>14} {:>13.3}s {:>13.3}s",
                format!("{mib} MiB"),
                kind.name(),
                predicted.as_secs(),
                simulated.as_secs()
            );
        }
        // The grid-unaware MPI default, for reference.
        let lam = simulator.run_default_mpi(root).completion;
        println!(
            "{:<12} {:>14} {:>14} {:>13.3}s",
            format!("{mib} MiB"),
            "Default MPI",
            "-",
            lam.as_secs()
        );
        println!();
    }
}
