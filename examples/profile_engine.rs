//! Ad-hoc decomposition of where `schedule_all` time goes at large n.
//!
//! ```text
//! cargo run --release --example profile_engine [clusters]
//! ```
//!
//! Timings on shared machines are noisy; every number printed here is a
//! minimum over several repeats, which is the best estimator of true cost
//! under external interference.

use gridcast::core::{adaptive_k_best, HeuristicKind, ScheduleEngine};
use gridcast::prelude::*;
use gridcast::topology::GridGenerator;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    use rand::SeedableRng;
    let grid = GridGenerator::table2().generate(n, &mut ChaCha8Rng::seed_from_u64(0));
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));

    let mut engine = ScheduleEngine::new();
    // Warm up buffers before timing anything.
    let _ = engine.makespan(&problem, HeuristicKind::Ecef);

    for kind in HeuristicKind::all() {
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            let _ = engine.makespan(&problem, kind);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        let t = engine.take_telemetry();
        println!("{:>10}: {best:>10.2} ms (min of 5)  {t:?}", kind.name());
    }

    println!("adaptive K at n={n}: {}", adaptive_k_best(n));
    for k in [1usize, 2, 4, 6, 8, 12, 16] {
        let mut probe = ScheduleEngine::with_k_best(k);
        let mut out = Vec::new();
        let mut best = f64::INFINITY;
        for _ in 0..7 {
            let start = Instant::now();
            probe.schedule_all_into(&problem, &HeuristicKind::all(), &mut out);
            best = best.min(start.elapsed().as_secs_f64() * 1e3);
        }
        println!("K={k:<2} batch: {best:>10.2} ms (min of 7)");
    }
}
