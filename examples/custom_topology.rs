//! Build a custom grid topology from scratch, detect its logical clusters from
//! raw node-to-node latencies, and pick the best broadcast schedule for it.
//!
//! The scenario: a company runs three sites — a large on-premise cluster, a
//! smaller remote office and a batch of cloud nodes with mediocre connectivity —
//! and wants to know how a 2 MiB broadcast should be scheduled.
//!
//! ```text
//! cargo run --release --example custom_topology
//! ```

use gridcast::collectives::intra_broadcast_time;
use gridcast::prelude::*;
use gridcast::topology::clustering::synthesize_node_matrix;
use gridcast::topology::{detect_logical_clusters, LowekampConfig, SquareMatrix};

fn main() {
    // Site link parameters: latency + a constant gap for the 2 MiB payload.
    let lan = |lat_us: f64, mb_per_s: f64| {
        PLogP::affine(
            Time::from_micros(lat_us),
            Time::from_micros(25.0),
            mb_per_s * 1e6,
        )
    };

    let grid = Grid::builder()
        .cluster(Cluster::with_plogp(
            ClusterId(0),
            "on-prem",
            64,
            lan(45.0, 110.0),
        ))
        .cluster(Cluster::with_plogp(
            ClusterId(1),
            "office",
            12,
            lan(60.0, 90.0),
        ))
        .cluster(Cluster::with_plogp(
            ClusterId(2),
            "cloud",
            24,
            lan(120.0, 60.0),
        ))
        .link_symmetric(ClusterId(0), ClusterId(1), lan(8_000.0, 5.0))
        .link_symmetric(ClusterId(0), ClusterId(2), lan(25_000.0, 2.0))
        .link_symmetric(ClusterId(1), ClusterId(2), lan(30_000.0, 1.5))
        .build()
        .expect("all links configured");

    let message = MessageSize::from_mib(2);
    println!(
        "custom grid: {} machines in {} sites",
        grid.num_nodes(),
        grid.num_clusters()
    );
    for cluster in grid.clusters() {
        println!(
            "  {:<8} {:>3} machines, intra-cluster broadcast of {message}: {}",
            cluster.name,
            cluster.size,
            intra_broadcast_time(cluster, message)
        );
    }

    // Sanity-check the topology the way the paper does: feed the raw
    // node-to-node latencies to the Lowekamp-style clustering and confirm the
    // logical clusters match the intended sites.
    let mut latency_us = Vec::with_capacity(grid.num_clusters() * grid.num_clusters());
    for i in grid.cluster_ids() {
        for j in grid.cluster_ids() {
            latency_us.push(if i == j {
                50.0
            } else {
                grid.latency(i, j).as_micros()
            });
        }
    }
    let sizes: Vec<u32> = grid.clusters().iter().map(|c| c.size).collect();
    let node_matrix = synthesize_node_matrix(
        &sizes,
        &SquareMatrix::from_rows(grid.num_clusters(), latency_us),
    );
    let clustering = detect_logical_clusters(&node_matrix, LowekampConfig::default());
    println!(
        "\nLowekamp clustering recovers {} logical clusters with sizes {:?}",
        clustering.num_clusters(),
        clustering.sorted_sizes()
    );

    // Schedule from every possible root and report the best heuristic each time.
    println!("\n{:<10} {:>12} {:>14}", "root", "best", "makespan");
    for root in grid.cluster_ids() {
        let problem = BroadcastProblem::from_grid(&grid, root, message);
        let (best_kind, best_makespan) = gridcast::core::HeuristicKind::all()
            .into_iter()
            .map(|kind| (kind, kind.schedule(&problem).makespan()))
            .min_by_key(|&(_, makespan)| makespan)
            .expect("at least one heuristic");
        println!(
            "{:<10} {:>12} {:>13.3}s",
            grid.cluster(root).name,
            best_kind.name(),
            best_makespan.as_secs()
        );
    }
}
