//! Times one large scheduling point: the full 7-heuristic batch at a size
//! far beyond the paper's figures, demonstrating the engine's n² wall is
//! gone in practice (a naive cubic round loop would need hours here).
//!
//! ```text
//! cargo run --release --example frontier_point [clusters]
//! ```

use gridcast::core::{HeuristicKind, ScheduleEngine};
use gridcast::prelude::*;
use gridcast::topology::GridGenerator;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10_000);
    use rand::SeedableRng;
    let start = Instant::now();
    let grid = GridGenerator::table2().generate(n, &mut ChaCha8Rng::seed_from_u64(0));
    let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
    println!("generate: {:.2} s", start.elapsed().as_secs_f64());

    let mut engine = ScheduleEngine::new();
    let mut out = Vec::new();
    let start = Instant::now();
    engine.schedule_all_into(&problem, &HeuristicKind::all(), &mut out);
    let batch = start.elapsed().as_secs_f64();
    for s in &out {
        println!("{:>10}: makespan {}", s.heuristic, s.makespan());
    }
    println!("n={n} 7-heuristic batch: {batch:.2} s");
}
