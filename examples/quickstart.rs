//! Quickstart: schedule and execute a broadcast on the paper's GRID'5000 grid.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gridcast::prelude::*;

fn main() {
    // The 88-machine, 6-logical-cluster snapshot of the paper's Table 3.
    let grid = grid5000_table3();
    let message = MessageSize::from_mib(4);
    let root = ClusterId(0);

    println!(
        "Broadcasting {message} from {} over {} machines in {} clusters\n",
        grid.cluster(root).name,
        grid.num_nodes(),
        grid.num_clusters()
    );

    // 1. Build the problem instance the heuristics work on: inter-cluster
    //    latencies and gaps plus per-cluster internal broadcast times.
    let problem = BroadcastProblem::from_grid(&grid, root, message);

    // 2. Schedule it with the paper's grid-aware ECEF-LAT heuristic.
    let schedule = HeuristicKind::EcefLaMax.schedule(&problem);
    println!(
        "{} schedule ({} inter-cluster transfers):",
        schedule.heuristic,
        schedule.num_transfers()
    );
    for event in &schedule.events {
        println!(
            "  {} -> {}  start {}  arrival {}",
            grid.cluster(event.sender).name,
            grid.cluster(event.receiver).name,
            event.start,
            event.arrival
        );
    }
    println!("predicted makespan: {}\n", schedule.makespan());

    // 3. Execute the schedule on the discrete-event simulator and compare the
    //    measured completion with the prediction.
    let simulator = Simulator::new(&grid, message);
    let outcome = simulator.execute_schedule(&schedule, Time::ZERO);
    println!("simulated completion: {}", outcome.completion);
    println!("last machine to receive: {:?}", outcome.last_receiver());

    // 4. Compare against the naive flat tree — the strategy the paper's
    //    grid-aware heuristics were designed to replace.
    let flat = HeuristicKind::FlatTree.schedule(&problem);
    let flat_outcome = simulator.execute_schedule(&flat, Time::ZERO);
    println!(
        "\nflat tree would need {} ({:.1}x slower)",
        flat_outcome.completion,
        flat_outcome.completion / outcome.completion
    );
}
