//! # gridcast-simulator
//!
//! A discrete-event simulator of message passing on a grid — the substitute for
//! the paper's practical evaluation testbed (88 GRID'5000 machines running a
//! modified MagPIe on top of LAM-MPI).
//!
//! The paper's Section 7 runs each scheduling heuristic for real and compares the
//! measured broadcast completion times (Figure 6) against the pLogP predictions
//! (Figure 5). We do not have the testbed, so this crate *executes* the schedules
//! instead of just predicting them:
//!
//! * every machine is simulated individually ([`plan::SendPlan`] assigns each
//!   machine an ordered list of forwards),
//! * a machine's network interface is busy for the gap `g(m)` of every message it
//!   sends, and a receiver only holds the message `L + g(m)` after the send
//!   started ([`network::NodeNetwork`] resolves the parameters from the grid
//!   topology — intra-cluster vs. inter-cluster),
//! * an event-driven engine ([`engine`]) processes arrivals in time order and
//!   reports per-machine reception times ([`SimulationOutcome`]),
//! * the grid-unaware binomial tree over all ranks ("Default LAM" in Figure 6)
//!   and the schedule-driven grid-aware executions share the same engine,
//! * **personalised** patterns execute too: a [`SizedSendPlan`] carries a
//!   payload per send (relayed concatenations, aggregate blocks, per-machine
//!   slices) and [`execute_sized_plan`] prices each gap for those bytes —
//!   the node-level realisation of the relay-capable scatter schedules of
//!   `gridcast_core::patterns`,
//! * both executors are **lowerings of one discrete-event core** ([`engine`]):
//!   a monotonic event queue plus per-machine interface and per-pair
//!   wide-area channel resources, emitting the trace in non-decreasing time
//!   order to a caller-chosen [`TraceSink`] (drop, count, stream, or retain),
//! * **what-if sweeps** ([`whatif`]) evaluate thousands of perturbed
//!   scenarios — scaled links, degraded uplinks, alternate roots, dropped
//!   relays — against one shared read-only grid on a scoped worker pool,
//!   bit-identically for any thread count,
//! * **faults are first-class events** ([`faults`]): a seeded [`FaultPlan`]
//!   injects deterministic message loss, duplication, extra delay, link
//!   flaps and node crashes; [`execute_plan_under_faults`] runs plans with
//!   ack/retry/timeout transport semantics and returns a loud
//!   [`Outcome::Incomplete`] (never a silent hang) when delivery is
//!   impossible, while [`resplice_after_crash`] re-plans the orphaned
//!   remainder of a broadcast around a dead relay, and
//! * the cost of *computing* the schedule itself (the paper's "algorithm
//!   complexity" concern) can be measured and added via [`overhead`].
//!
//! The simulated times differ from the paper's absolute measurements (different
//! hardware, different MPI), but the relative behaviour of the heuristics — who
//! wins, by roughly what factor — is preserved, which is what EXPERIMENTS.md
//! tracks.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod error;
pub mod faults;
pub mod network;
pub mod outcome;
pub mod overhead;
pub mod plan;
pub mod simulator;
pub mod trace;
pub mod whatif;

pub use engine::{
    execute_plan, execute_plan_with_sink, execute_sized_plan, execute_sized_plan_with_sink,
    try_execute_plan_with_sink, try_execute_sized_plan_with_sink,
};
pub use error::SimError;
pub use faults::{
    execute_plan_under_faults, resplice_after_crash, CapacityWindow, FaultPlan, LinkFlap,
    NodeCrash, RetryPolicy,
};
pub use network::NodeNetwork;
pub use outcome::{FaultStats, FaultySimulation, Outcome, SimulationOutcome};
pub use overhead::measure_scheduling_overhead;
pub use plan::{SendPlan, SizedSend, SizedSendPlan};
pub use simulator::Simulator;
pub use trace::{CountingSink, NullSink, StreamingSink, TraceEvent, TraceKind, TraceSink};
pub use whatif::{
    fault_sweep, Perturbation, ReplayDelta, Scenario, WarmStartTelemetry, WhatIfReport,
    WhatIfRunner, DROP_RELAY_FACTOR,
};
