//! Results of a simulated broadcast execution.

use gridcast_plogp::Time;
use gridcast_topology::NodeId;
use serde::{Deserialize, Serialize};

/// The outcome of executing a [`SendPlan`](crate::SendPlan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Time at which every machine holds the message (the measured makespan).
    pub completion: Time,
    /// Per-machine reception time (zero for the source).
    pub receive_times: Vec<Time>,
    /// Number of point-to-point messages exchanged.
    pub messages: usize,
    /// Number of simulation events processed by the engine.
    pub events_processed: usize,
}

impl SimulationOutcome {
    /// The reception time of one machine.
    pub fn receive_time(&self, node: NodeId) -> Time {
        self.receive_times[node.index()]
    }

    /// Whether every machine finished: a plan that leaves machines unreached
    /// (broadcast) or starved behind a gate that never opens (personalised
    /// patterns) reports an infinite completion, and this is the idiomatic
    /// check for it.
    pub fn is_complete(&self) -> bool {
        self.completion.is_finite()
    }

    /// The last machine to receive the message and when.
    pub fn last_receiver(&self) -> (NodeId, Time) {
        self.receive_times
            .iter()
            .enumerate()
            .max_by_key(|&(_, t)| *t)
            .map(|(i, &t)| (NodeId(i as u32), t))
            .unwrap_or((NodeId(0), Time::ZERO))
    }

    /// Mean reception time over all machines (a secondary metric sometimes used
    /// to compare broadcast algorithms beyond the pure makespan).
    pub fn mean_receive_time(&self) -> Time {
        if self.receive_times.is_empty() {
            return Time::ZERO;
        }
        let total: Time = self.receive_times.iter().copied().sum();
        total / self.receive_times.len() as f64
    }
}

/// Fault-activity counters of one run under a
/// [`FaultPlan`](crate::faults::FaultPlan).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Transmissions started (first attempts *and* retransmissions; each
    /// occupies its sender's interface and, cross-cluster, a WAN channel).
    pub attempts: usize,
    /// Transmissions that failed to deliver (lost by the injector, or
    /// addressed to a machine that is dead at the arrival instant).
    pub lost: usize,
    /// Retransmissions: attempts beyond the first for some send.
    pub retries: usize,
    /// Sends abandoned after exhausting their retry budget.
    pub drops: usize,
    /// Extra copies injected by the duplication fault.
    pub duplicates: usize,
    /// Node crashes that fired.
    pub crashes: usize,
}

/// A [`SimulationOutcome`] annotated with the fault activity that produced
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultySimulation {
    /// The per-machine outcome (reception times, makespan, message count —
    /// where `messages` includes retransmissions).
    pub outcome: SimulationOutcome,
    /// What the fault injector and the retry protocol did.
    pub stats: FaultStats,
}

impl FaultySimulation {
    /// Machines whose reception time is infinite: never reached by any
    /// delivered copy (crashed before receiving, or starved by drops).
    pub fn unreached(&self) -> Vec<NodeId> {
        self.outcome
            .receive_times
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_finite())
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }
}

/// The loud result of a faulty execution: either every machine holds the
/// message, or the run is **explicitly** incomplete — no silent infinite
/// times to discover three aggregations later.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Outcome {
    /// Every machine received the message; the makespan is finite.
    Complete(FaultySimulation),
    /// At least one machine never received the message (its sender exhausted
    /// the retry budget, or a crash removed it / its whole subtree).
    Incomplete {
        /// Plan edges whose payload never arrived, in deterministic
        /// `(sender, receiver)` plan order — both sends dropped after the
        /// retry budget and sends never attempted (the sender itself was
        /// never reached, or died first).
        undelivered: Vec<(NodeId, NodeId)>,
        /// The partial run: reception times of the machines that *were*
        /// reached, with an infinite completion.
        partial: FaultySimulation,
    },
}

impl Outcome {
    /// The simulation record, complete or partial.
    pub fn simulation(&self) -> &FaultySimulation {
        match self {
            Outcome::Complete(sim) => sim,
            Outcome::Incomplete { partial, .. } => partial,
        }
    }

    /// The fault-activity counters of the run.
    pub fn stats(&self) -> FaultStats {
        self.simulation().stats
    }

    /// The completion time: finite iff the run is [`Outcome::Complete`].
    pub fn completion(&self) -> Time {
        self.simulation().outcome.completion
    }

    /// Whether every machine was reached.
    pub fn is_complete(&self) -> bool {
        matches!(self, Outcome::Complete(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_metrics() {
        let outcome = SimulationOutcome {
            completion: Time::from_millis(30.0),
            receive_times: vec![
                Time::ZERO,
                Time::from_millis(10.0),
                Time::from_millis(30.0),
                Time::from_millis(20.0),
            ],
            messages: 3,
            events_processed: 4,
        };
        assert_eq!(outcome.receive_time(NodeId(1)), Time::from_millis(10.0));
        let (node, t) = outcome.last_receiver();
        assert_eq!(node, NodeId(2));
        assert_eq!(t, Time::from_millis(30.0));
        assert_eq!(outcome.mean_receive_time(), Time::from_millis(15.0));
    }

    #[test]
    fn empty_outcome_is_well_behaved() {
        let outcome = SimulationOutcome {
            completion: Time::ZERO,
            receive_times: vec![],
            messages: 0,
            events_processed: 0,
        };
        assert_eq!(outcome.mean_receive_time(), Time::ZERO);
        assert_eq!(outcome.last_receiver(), (NodeId(0), Time::ZERO));
    }

    #[test]
    fn outcome_accessors_cover_both_arms() {
        let sim = FaultySimulation {
            outcome: SimulationOutcome {
                completion: Time::INFINITY,
                receive_times: vec![Time::ZERO, Time::from_millis(1.0), Time::INFINITY],
                messages: 2,
                events_processed: 1,
            },
            stats: FaultStats {
                drops: 1,
                ..FaultStats::default()
            },
        };
        assert_eq!(sim.unreached(), vec![NodeId(2)]);
        let incomplete = Outcome::Incomplete {
            undelivered: vec![(NodeId(1), NodeId(2))],
            partial: sim.clone(),
        };
        assert!(!incomplete.is_complete());
        assert!(!incomplete.completion().is_finite());
        assert_eq!(incomplete.stats().drops, 1);

        let mut done = sim;
        done.outcome.completion = Time::from_millis(1.0);
        done.outcome.receive_times[2] = Time::from_millis(1.0);
        let complete = Outcome::Complete(done);
        assert!(complete.is_complete());
        assert!(complete.completion().is_finite());
    }
}
