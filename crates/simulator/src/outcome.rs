//! Results of a simulated broadcast execution.

use gridcast_plogp::Time;
use gridcast_topology::NodeId;
use serde::{Deserialize, Serialize};

/// The outcome of executing a [`SendPlan`](crate::SendPlan).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Time at which every machine holds the message (the measured makespan).
    pub completion: Time,
    /// Per-machine reception time (zero for the source).
    pub receive_times: Vec<Time>,
    /// Number of point-to-point messages exchanged.
    pub messages: usize,
    /// Number of simulation events processed by the engine.
    pub events_processed: usize,
}

impl SimulationOutcome {
    /// The reception time of one machine.
    pub fn receive_time(&self, node: NodeId) -> Time {
        self.receive_times[node.index()]
    }

    /// Whether every machine finished: a plan that leaves machines unreached
    /// (broadcast) or starved behind a gate that never opens (personalised
    /// patterns) reports an infinite completion, and this is the idiomatic
    /// check for it.
    pub fn is_complete(&self) -> bool {
        self.completion.is_finite()
    }

    /// The last machine to receive the message and when.
    pub fn last_receiver(&self) -> (NodeId, Time) {
        self.receive_times
            .iter()
            .enumerate()
            .max_by_key(|&(_, t)| *t)
            .map(|(i, &t)| (NodeId(i as u32), t))
            .unwrap_or((NodeId(0), Time::ZERO))
    }

    /// Mean reception time over all machines (a secondary metric sometimes used
    /// to compare broadcast algorithms beyond the pure makespan).
    pub fn mean_receive_time(&self) -> Time {
        if self.receive_times.is_empty() {
            return Time::ZERO;
        }
        let total: Time = self.receive_times.iter().copied().sum();
        total / self.receive_times.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_metrics() {
        let outcome = SimulationOutcome {
            completion: Time::from_millis(30.0),
            receive_times: vec![
                Time::ZERO,
                Time::from_millis(10.0),
                Time::from_millis(30.0),
                Time::from_millis(20.0),
            ],
            messages: 3,
            events_processed: 4,
        };
        assert_eq!(outcome.receive_time(NodeId(1)), Time::from_millis(10.0));
        let (node, t) = outcome.last_receiver();
        assert_eq!(node, NodeId(2));
        assert_eq!(t, Time::from_millis(30.0));
        assert_eq!(outcome.mean_receive_time(), Time::from_millis(15.0));
    }

    #[test]
    fn empty_outcome_is_well_behaved() {
        let outcome = SimulationOutcome {
            completion: Time::ZERO,
            receive_times: vec![],
            messages: 0,
            events_processed: 0,
        };
        assert_eq!(outcome.mean_receive_time(), Time::ZERO);
        assert_eq!(outcome.last_receiver(), (NodeId(0), Time::ZERO));
    }
}
