//! The high-level simulator façade tying schedules, plans and the engine
//! together.

use crate::engine::execute_plan;
use crate::network::NodeNetwork;
use crate::outcome::SimulationOutcome;
use crate::overhead::measure_scheduling_overhead;
use crate::plan::SendPlan;
use crate::trace::TraceEvent;
use gridcast_core::{BroadcastProblem, HeuristicKind, Schedule};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};

/// Executes broadcast operations on a simulated grid.
///
/// This plays the role of the paper's modified MagPIe library running on
/// GRID'5000: it takes a scheduling heuristic, computes the inter-cluster
/// schedule (optionally charging its computation time), realises it as a
/// node-level plan with binomial intra-cluster trees, and measures the resulting
/// completion time with the discrete-event engine.
#[derive(Debug, Clone)]
pub struct Simulator {
    grid: Grid,
    network: NodeNetwork,
    message: MessageSize,
}

impl Simulator {
    /// Creates a simulator for `grid` broadcasting messages of size `message`.
    pub fn new(grid: &Grid, message: MessageSize) -> Self {
        Simulator {
            grid: grid.clone(),
            network: NodeNetwork::new(grid),
            message,
        }
    }

    /// The simulated grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The message size being broadcast.
    pub fn message(&self) -> MessageSize {
        self.message
    }

    /// The broadcast problem instance seen by the scheduling heuristics.
    pub fn problem(&self, root: ClusterId) -> BroadcastProblem {
        BroadcastProblem::from_grid(&self.grid, root, self.message)
    }

    /// Executes an already-computed inter-cluster schedule, charging
    /// `scheduling_overhead` before the first message leaves the root.
    pub fn execute_schedule(
        &self,
        schedule: &Schedule,
        scheduling_overhead: Time,
    ) -> SimulationOutcome {
        self.execute_schedule_with_sink(schedule, scheduling_overhead, &mut crate::trace::NullSink)
    }

    /// Executes an already-computed schedule and records the full trace.
    pub fn execute_schedule_traced(
        &self,
        schedule: &Schedule,
        scheduling_overhead: Time,
    ) -> (SimulationOutcome, Vec<TraceEvent>) {
        let mut trace = Vec::new();
        let outcome = self.execute_schedule_with_sink(schedule, scheduling_overhead, &mut trace);
        (outcome, trace)
    }

    /// Executes an already-computed schedule with a caller-chosen
    /// [`TraceSink`](crate::trace::TraceSink) — the one schedule-execution
    /// entry point the plain and traced wrappers above delegate to, and the
    /// way to stream a trace instead of materialising it.
    pub fn execute_schedule_with_sink<S: crate::trace::TraceSink>(
        &self,
        schedule: &Schedule,
        scheduling_overhead: Time,
        sink: &mut S,
    ) -> SimulationOutcome {
        let plan = SendPlan::from_grid_schedule(&self.grid, schedule);
        crate::engine::execute_plan_with_sink(
            &self.network,
            &plan,
            self.message,
            scheduling_overhead,
            sink,
        )
    }

    /// Schedules the broadcast with `kind` rooted at `root` and executes it,
    /// charging the measured wall-clock scheduling cost as start-up overhead
    /// (the paper's Section 7 concern about algorithm complexity).
    pub fn run_heuristic(
        &self,
        kind: HeuristicKind,
        root: ClusterId,
    ) -> (Schedule, SimulationOutcome) {
        let problem = self.problem(root);
        let overhead = measure_scheduling_overhead(kind, &problem, 3);
        let schedule = kind.schedule(&problem);
        let outcome = self.execute_schedule(&schedule, overhead);
        (schedule, outcome)
    }

    /// Executes the grid-unaware binomial tree over all machines — the
    /// "Default LAM" baseline of Figure 6.
    pub fn run_default_mpi(&self, root: ClusterId) -> SimulationOutcome {
        let plan = SendPlan::binomial_over_all_nodes(&self.grid, root);
        execute_plan(&self.network, &plan, self.message, Time::ZERO, None)
    }

    /// The model-predicted makespan for a heuristic (what Figure 5 plots),
    /// without executing anything.
    pub fn predict_heuristic(&self, kind: HeuristicKind, root: ClusterId) -> Time {
        kind.schedule(&self.problem(root)).makespan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::grid5000_table3;

    fn simulator(mib: u64) -> Simulator {
        Simulator::new(&grid5000_table3(), MessageSize::from_mib(mib))
    }

    #[test]
    fn every_heuristic_executes_and_reaches_all_machines() {
        let sim = simulator(1);
        for kind in HeuristicKind::all() {
            let (schedule, outcome) = sim.run_heuristic(kind, ClusterId(0));
            assert!(
                schedule.validate(&sim.problem(ClusterId(0))).is_ok(),
                "{kind}"
            );
            assert!(outcome.completion.is_finite(), "{kind}");
            assert!(
                outcome.receive_times.iter().all(|t| t.is_finite()),
                "{kind}"
            );
            assert_eq!(outcome.messages, 87, "{kind}");
        }
    }

    #[test]
    fn grid_aware_heuristics_beat_flat_tree_in_execution() {
        // The headline result of Figure 6: the flat tree is by far the worst
        // strategy on the 88-machine grid, and the ECEF family wins.
        let sim = simulator(4);
        let root = ClusterId(0);
        let flat = sim
            .run_heuristic(HeuristicKind::FlatTree, root)
            .1
            .completion;
        let ecef_la = sim.run_heuristic(HeuristicKind::EcefLa, root).1.completion;
        let ecef_lat = sim
            .run_heuristic(HeuristicKind::EcefLaMax, root)
            .1
            .completion;
        assert!(ecef_la < flat, "ECEF-LA {ecef_la} vs Flat {flat}");
        assert!(ecef_lat < flat, "ECEF-LAT {ecef_lat} vs Flat {flat}");
        // And the default (grid-unaware) MPI binomial sits in between: better
        // than the flat tree, worse than the grid-aware schedules.
        let lam = sim.run_default_mpi(root).completion;
        assert!(lam < flat, "Default LAM {lam} vs Flat {flat}");
        assert!(ecef_la < lam, "ECEF-LA {ecef_la} vs Default LAM {lam}");
    }

    #[test]
    fn predictions_track_measurements() {
        // Figure 5 vs Figure 6: "performance predictions fit with a good
        // precision the practical results". The prediction uses T_i from the
        // best intra-cluster algorithm while the execution uses binomial trees,
        // so we allow a generous 35 % band rather than exact agreement.
        let sim = simulator(1);
        let root = ClusterId(0);
        for kind in [
            HeuristicKind::FlatTree,
            HeuristicKind::Ecef,
            HeuristicKind::EcefLaMax,
            HeuristicKind::BottomUp,
        ] {
            let predicted = sim.predict_heuristic(kind, root);
            let (_, outcome) = sim.run_heuristic(kind, root);
            let measured = outcome.completion;
            let rel = (predicted.as_secs() - measured.as_secs()).abs() / measured.as_secs();
            assert!(
                rel < 0.35,
                "{kind}: predicted {predicted} vs measured {measured} (rel {rel:.2})"
            );
        }
    }

    #[test]
    fn traced_execution_matches_untraced() {
        let sim = simulator(1);
        let root = ClusterId(2);
        let schedule = HeuristicKind::BottomUp.schedule(&sim.problem(root));
        let plain = sim.execute_schedule(&schedule, Time::ZERO);
        let (traced, trace) = sim.execute_schedule_traced(&schedule, Time::ZERO);
        assert_eq!(plain.completion, traced.completion);
        assert!(!trace.is_empty());
    }

    #[test]
    fn completion_grows_with_message_size() {
        let small = simulator(1);
        let large = simulator(4);
        let root = ClusterId(0);
        let t_small = small
            .run_heuristic(HeuristicKind::EcefLa, root)
            .1
            .completion;
        let t_large = large
            .run_heuristic(HeuristicKind::EcefLa, root)
            .1
            .completion;
        assert!(t_large > t_small);
    }

    #[test]
    fn any_root_cluster_works() {
        let sim = simulator(1);
        for root in sim.grid().cluster_ids() {
            let (_, outcome) = sim.run_heuristic(HeuristicKind::EcefLaMax, root);
            assert!(outcome.completion.is_finite());
            // The root coordinator never receives over the network; it holds the
            // message as soon as the scheduling overhead has been paid, long
            // before any wide-area transfer could complete.
            let root_time = outcome.receive_time(sim.grid().coordinator(root));
            assert!(root_time < Time::from_millis(100.0));
        }
    }
}
