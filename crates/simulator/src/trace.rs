//! Execution traces: the sequence of sends and arrivals of a simulated run,
//! and the [`TraceSink`]s that observe it.
//!
//! The unified discrete-event core emits every [`TraceEvent`] **in
//! non-decreasing time order** to a caller-chosen sink instead of
//! materialising a `Vec<TraceEvent>` unconditionally. Four sinks cover the
//! practical spectrum:
//!
//! * [`NullSink`] — drops everything; the executor's trace plumbing compiles
//!   away entirely (the what-if sweeps run millions of events through this),
//! * [`CountingSink`] — aggregates counts without retaining events,
//! * [`StreamingSink`] — writes one line per event to any [`std::io::Write`]
//!   as the simulation runs, so a trace never has to fit in memory,
//! * `Vec<TraceEvent>` — the retained sink (every `Vec` *is* a sink), kept
//!   for test parity and for callers that genuinely need random access.

use gridcast_plogp::Time;
use gridcast_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;

/// The kind of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A machine started pushing a message to another machine.
    SendStart,
    /// A machine received the full message.
    Arrival,
    /// A machine retransmitted an unacknowledged send (fault executor only):
    /// the retry timer expired without a delivery, and the retry budget still
    /// had attempts left.
    Retry,
    /// A machine abandoned a send after exhausting its retry budget (fault
    /// executor only). The payload is reported in
    /// [`Outcome::Incomplete`](crate::Outcome::Incomplete) as undelivered.
    Drop,
    /// A machine crashed (fault executor only); `from == to` names the dead
    /// machine. Sends and receptions at or after this time do not happen.
    Crash,
}

/// One entry of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Entry kind.
    pub kind: TraceKind,
    /// Simulation time of the entry.
    pub time: Time,
    /// Sending machine.
    pub from: NodeId,
    /// Receiving machine.
    pub to: NodeId,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::SendStart => write!(f, "[{}] {} -> {} send", self.time, self.from, self.to),
            TraceKind::Arrival => write!(f, "[{}] {} -> {} arrival", self.time, self.from, self.to),
            TraceKind::Retry => write!(f, "[{}] {} -> {} retry", self.time, self.from, self.to),
            TraceKind::Drop => write!(f, "[{}] {} -> {} drop", self.time, self.from, self.to),
            TraceKind::Crash => write!(f, "[{}] {} crash", self.time, self.from),
        }
    }
}

/// An observer of the discrete-event core's trace stream.
///
/// The core calls [`TraceSink::record`] once per [`TraceEvent`], in
/// non-decreasing `time` order (the event queue is monotonic — this is the
/// streaming contract the sink-parity proptests pin). Implementations decide
/// what to keep: nothing, counts, a serialised stream, or the full vector.
pub trait TraceSink {
    /// Observes one event of the simulation, in non-decreasing time order.
    fn record(&mut self, event: TraceEvent);

    /// Whether the executor should construct and deliver events at all.
    /// [`NullSink`] returns `false`, letting the hot path skip event
    /// construction entirely; everything else keeps the default `true`.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }

    /// Takes the sink's pending I/O error, if any. The fallible executors
    /// ([`try_execute_plan_with_sink`](crate::engine::try_execute_plan_with_sink)
    /// and friends) call this after the event queue drains and surface the
    /// error as [`SimError::Trace`](crate::SimError::Trace); sinks without a
    /// fallible backing (counting, retained, null) keep the default `None`.
    /// Taking the error clears it: for [`StreamingSink`] a subsequent
    /// [`finish`](StreamingSink::finish) succeeds, so the error is reported
    /// exactly once.
    #[inline]
    fn take_error(&mut self) -> Option<std::io::Error> {
        None
    }
}

/// A sink that drops every event — the zero-cost default of the untraced
/// entry points and the what-if sweeps.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline]
    fn record(&mut self, _event: TraceEvent) {}

    #[inline]
    fn enabled(&self) -> bool {
        false
    }
}

/// A sink that counts events without retaining them.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountingSink {
    /// Number of [`TraceKind::SendStart`] events observed.
    pub sends: usize,
    /// Number of [`TraceKind::Arrival`] events observed.
    pub arrivals: usize,
    /// Number of [`TraceKind::Retry`] events observed.
    pub retries: usize,
    /// Number of [`TraceKind::Drop`] events observed.
    pub drops: usize,
    /// Number of [`TraceKind::Crash`] events observed.
    pub crashes: usize,
    /// Time of the last event observed (`Time::ZERO` before the first).
    pub last_time: Time,
}

impl CountingSink {
    /// Total number of events observed.
    pub fn total(&self) -> usize {
        self.sends + self.arrivals + self.retries + self.drops + self.crashes
    }
}

impl TraceSink for CountingSink {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        match event.kind {
            TraceKind::SendStart => self.sends += 1,
            TraceKind::Arrival => self.arrivals += 1,
            TraceKind::Retry => self.retries += 1,
            TraceKind::Drop => self.drops += 1,
            TraceKind::Crash => self.crashes += 1,
        }
        self.last_time = event.time;
    }
}

/// The retained-vector sink: appends every event. This reproduces the
/// pre-sink behaviour of the executors (`Option<&mut Vec<TraceEvent>>`) and
/// anchors the parity tests the streaming sinks are checked against.
impl TraceSink for Vec<TraceEvent> {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        self.push(event);
    }
}

/// A sink that writes one [`Display`](fmt::Display)-formatted line per event
/// to an [`std::io::Write`] as the simulation runs, so traces stream to disk
/// (or a pipe) instead of accumulating in memory.
///
/// Write errors are sticky: the first failure is retained, further events are
/// dropped, and either [`StreamingSink::finish`] or the executor surfaces it —
/// the fallible entry points
/// ([`try_execute_plan_with_sink`](crate::engine::try_execute_plan_with_sink)
/// and friends) call [`TraceSink::take_error`] after the drain and return
/// [`SimError::Trace`](crate::SimError::Trace). The infallible executors still
/// never fail because of a trace sink; with those, check `finish()`.
#[derive(Debug)]
pub struct StreamingSink<W: Write> {
    writer: W,
    written: usize,
    error: Option<std::io::Error>,
}

impl<W: Write> StreamingSink<W> {
    /// Wraps a writer. Callers that care about throughput should hand in a
    /// [`std::io::BufWriter`]; the sink writes one line per event.
    pub fn new(writer: W) -> Self {
        StreamingSink {
            writer,
            written: 0,
            error: None,
        }
    }

    /// Number of events successfully written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and returns the writer, or the first write error encountered.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> TraceSink for StreamingSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.writer, "{event}") {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    #[inline]
    fn take_error(&mut self) -> Option<std::io::Error> {
        self.error.take()
    }
}

/// Adapter giving the legacy `Option<&mut Vec<TraceEvent>>` signatures a
/// single monomorphisation of the core: `None` behaves like [`NullSink`]
/// (events are not even constructed), `Some` like the retained vector.
impl TraceSink for Option<&mut Vec<TraceEvent>> {
    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if let Some(v) = self.as_deref_mut() {
            v.push(event);
        }
    }

    #[inline]
    fn enabled(&self) -> bool {
        self.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(kind: TraceKind, ms: f64) -> TraceEvent {
        TraceEvent {
            kind,
            time: Time::from_millis(ms),
            from: NodeId(0),
            to: NodeId(31),
        }
    }

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            kind: TraceKind::SendStart,
            time: Time::from_millis(1.5),
            from: NodeId(0),
            to: NodeId(31),
        };
        assert_eq!(e.to_string(), "[1.500ms] n0 -> n31 send");
        let a = TraceEvent {
            kind: TraceKind::Arrival,
            ..e
        };
        assert!(a.to_string().ends_with("arrival"));
    }

    #[test]
    fn counting_sink_aggregates_without_retaining() {
        let mut sink = CountingSink::default();
        sink.record(event(TraceKind::SendStart, 1.0));
        sink.record(event(TraceKind::SendStart, 2.0));
        sink.record(event(TraceKind::Arrival, 3.0));
        assert_eq!(sink.sends, 2);
        assert_eq!(sink.arrivals, 1);
        assert_eq!(sink.total(), 3);
        assert_eq!(sink.last_time, Time::from_millis(3.0));
    }

    #[test]
    fn streaming_sink_writes_display_lines() {
        let mut sink = StreamingSink::new(Vec::new());
        let e = event(TraceKind::SendStart, 1.5);
        let a = event(TraceKind::Arrival, 2.0);
        sink.record(e);
        sink.record(a);
        assert_eq!(sink.written(), 2);
        let bytes = sink.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, vec![e.to_string(), a.to_string()]);
    }

    #[test]
    fn null_sink_is_disabled_and_vec_sink_retains() {
        assert!(!NullSink.enabled());
        let mut vec: Vec<TraceEvent> = Vec::new();
        assert!(TraceSink::enabled(&vec));
        vec.record(event(TraceKind::Arrival, 1.0));
        assert_eq!(vec.len(), 1);
    }
}
