//! Execution traces: the sequence of sends and arrivals of a simulated run.

use gridcast_plogp::Time;
use gridcast_topology::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind of a trace entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// A machine started pushing a message to another machine.
    SendStart,
    /// A machine received the full message.
    Arrival,
}

/// One entry of an execution trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Entry kind.
    pub kind: TraceKind,
    /// Simulation time of the entry.
    pub time: Time,
    /// Sending machine.
    pub from: NodeId,
    /// Receiving machine.
    pub to: NodeId,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            TraceKind::SendStart => write!(f, "[{}] {} -> {} send", self.time, self.from, self.to),
            TraceKind::Arrival => write!(f, "[{}] {} -> {} arrival", self.time, self.from, self.to),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_readable() {
        let e = TraceEvent {
            kind: TraceKind::SendStart,
            time: Time::from_millis(1.5),
            from: NodeId(0),
            to: NodeId(31),
        };
        assert_eq!(e.to_string(), "[1.500ms] n0 -> n31 send");
        let a = TraceEvent {
            kind: TraceKind::Arrival,
            ..e
        };
        assert!(a.to_string().ends_with("arrival"));
    }
}
