//! Deterministic fault injection and ack/retry/timeout transport semantics.
//!
//! The paper schedules against a *static* pLogP-calibrated network, but the
//! grids it targets lose messages, flap links and crash nodes routinely. This
//! module makes the discrete-event core survive that storm without giving up
//! the repo's reproducibility contract:
//!
//! * a [`FaultPlan`] injects **message loss, duplication, extra delay, link
//!   flap windows and node crashes** into a run. Every probabilistic decision
//!   is a pure function of `(seed, decision kind, sender, receiver, attempt
//!   number)` — a dedicated `ChaCha8` stream per decision — so a faulty run
//!   is **bit-reproducible and independent of event interleaving or worker
//!   thread count**, exactly like everything else in the workspace;
//! * [`execute_plan_under_faults`] runs a [`SendPlan`] under a fault plan
//!   with **ack/retry/timeout** transport semantics (per-send retry budget,
//!   exponential backoff with deterministic jitter, duplicate suppression by
//!   first-arrival reception — the unacked-send retry cache is the per-send
//!   `delivered` table): a lost copy is retransmitted when its timeout
//!   expires, an exhausted budget emits a [`TraceKind::Drop`] and the run
//!   returns a loud [`Outcome::Incomplete`] naming every undelivered edge
//!   instead of a silent infinite completion;
//! * [`resplice_after_crash`] is the cluster-level recovery path: when a
//!   relay dies mid-collective, the already-delivered commit prefix is kept
//!   and the orphaned remainder is re-planned around the corpse via
//!   [`ScheduleEngine::reschedule_excluding`] — strictly cheaper than a
//!   naive from-scratch restart, which must re-send everything after the
//!   crash instant.
//!
//! What is modeled: per-copy loss/duplication/extra delay, unordered-pair
//! link-down windows (a transmission cannot *start* while its link is down),
//! fail-stop crashes at a fixed time (a machine dead at `t` neither sends
//! nor receives at or after `t` — a copy arriving exactly at the crash
//! instant is lost). What is not: acknowledgement traffic does not occupy
//! the network (timeouts are priced off `g + 2L`, the data-and-ack round
//! trip, but acks are free), flaps do not kill copies already in flight, and
//! crashed machines never recover.

use crate::engine::{EventQueue, WanChannels};
use crate::error::SimError;
use crate::network::NodeNetwork;
use crate::outcome::{FaultStats, FaultySimulation, Outcome, SimulationOutcome};
use crate::plan::SendPlan;
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use gridcast_core::{BroadcastProblem, HeuristicKind, Schedule, ScheduleEngine};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// A window during which the wide-area link between two clusters is down:
/// no transmission between them may *start* in `[from, until)`. Copies
/// already in flight are not affected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkFlap {
    /// The unordered cluster pair whose link flaps (`(c, c)` gates
    /// intra-cluster traffic of cluster `c`).
    pub between: (ClusterId, ClusterId),
    /// Start of the down window (inclusive).
    pub from: Time,
    /// End of the down window (exclusive): transmissions may start again at
    /// this instant.
    pub until: Time,
}

impl LinkFlap {
    fn covers(&self, a: usize, b: usize) -> bool {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let (fa, fb) = (self.between.0.index(), self.between.1.index());
        let (flo, fhi) = if fa <= fb { (fa, fb) } else { (fb, fa) };
        (lo, hi) == (flo, fhi)
    }
}

/// A time-varying capacity window: transmissions over the **directed**
/// cluster link `from → to` that *start* inside `[from_time, until)` have
/// their gap scaled by `factor`. Copies already in flight are unaffected,
/// and the retry protocol prices its timeout off the scaled gap (a congested
/// link earns a longer timeout, exactly as a real RTT estimator would).
///
/// This is the execution-time lowering of
/// [`gridcast_core::Perturbation::TimeVaryingCapacity`]: the static model the
/// prediction leg prices never sees the window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityWindow {
    /// Sending cluster of the affected directed link.
    pub from: ClusterId,
    /// Receiving cluster of the affected directed link.
    pub to: ClusterId,
    /// Gap multiplier inside the window, positive and finite.
    pub factor: f64,
    /// Start of the window (inclusive).
    pub from_time: Time,
    /// End of the window (exclusive).
    pub until: Time,
}

/// A fail-stop node crash: the machine is dead at `at` — it starts no
/// transmission and receives no copy at or after that instant, and it never
/// recovers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCrash {
    /// The machine that dies.
    pub node: NodeId,
    /// The instant it dies.
    pub at: Time,
}

// Decision-kind salts: each probabilistic decision draws from its own
// key-separated ChaCha8 stream, so adding a fault dimension never shifts the
// draws of another.
const SALT_LOSS: u64 = 0xA1;
const SALT_DUP: u64 = 0xA2;
const SALT_DELAY: u64 = 0xA3;
const SALT_DELAY_MAG: u64 = 0xA4;
const SALT_JITTER: u64 = 0xA5;

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded, declarative fault injection plan.
///
/// Probabilities are per *transmission attempt* (a retransmission re-rolls
/// with a fresh attempt number). The determinism contract: every draw is a
/// pure function of `(seed, decision, sender, receiver, attempt)`, so two
/// runs of the same plan under the same faults are byte-identical, from any
/// number of worker threads, in any event interleaving.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Root seed of every decision stream.
    pub seed: u64,
    /// Probability that a transmitted copy is lost.
    pub loss: f64,
    /// Probability that a delivered copy is duplicated (the ghost copy
    /// arrives one extra latency later; first-arrival reception suppresses
    /// it).
    pub duplication: f64,
    /// Probability that a delivered copy is delayed beyond the model time.
    pub delay_probability: f64,
    /// Maximum extra delay; the actual delay is uniform in `[0, max]`.
    pub max_extra_delay: Time,
    /// Link-down windows.
    pub flaps: Vec<LinkFlap>,
    /// Fail-stop node crashes.
    pub crashes: Vec<NodeCrash>,
    /// Time-varying capacity windows (gap scaling by start time).
    #[serde(default)]
    pub capacity_windows: Vec<CapacityWindow>,
}

impl FaultPlan {
    /// A fault-free plan with the given seed: running under it is
    /// bit-identical to the fault-free executor (the conformance tests pin
    /// this).
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            loss: 0.0,
            duplication: 0.0,
            delay_probability: 0.0,
            max_extra_delay: Time::ZERO,
            flaps: Vec::new(),
            crashes: Vec::new(),
            capacity_windows: Vec::new(),
        }
    }

    /// Sets the per-attempt loss probability (in `[0, 1]`).
    pub fn with_loss(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "loss probability must be in [0, 1]"
        );
        self.loss = p;
        self
    }

    /// Sets the per-delivery duplication probability (in `[0, 1]`).
    pub fn with_duplication(mut self, p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "duplication probability must be in [0, 1]"
        );
        self.duplication = p;
        self
    }

    /// Sets the extra-delay fault: with probability `p`, a delivered copy
    /// arrives up to `max` later (uniformly).
    pub fn with_extra_delay(mut self, p: f64, max: Time) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "delay probability must be in [0, 1]"
        );
        assert!(max.is_finite() && max >= Time::ZERO, "delay must be finite");
        self.delay_probability = p;
        self.max_extra_delay = max;
        self
    }

    /// Adds a link-down window.
    pub fn with_flap(mut self, flap: LinkFlap) -> Self {
        assert!(flap.from <= flap.until, "flap window must not be inverted");
        self.flaps.push(flap);
        self
    }

    /// Adds a fail-stop node crash.
    pub fn with_crash(mut self, crash: NodeCrash) -> Self {
        assert!(crash.at.is_finite(), "crash time must be finite");
        self.crashes.push(crash);
        self
    }

    /// Adds a time-varying capacity window.
    pub fn with_capacity_window(mut self, window: CapacityWindow) -> Self {
        assert!(
            window.factor.is_finite() && window.factor > 0.0,
            "capacity factor must be positive and finite"
        );
        assert!(
            window.from_time <= window.until,
            "capacity window must not be inverted"
        );
        self.capacity_windows.push(window);
        self
    }

    /// The gap of a transmission over the directed cluster link `from → to`
    /// starting at `start`, with every active capacity window applied (stacked
    /// windows multiply).
    fn capacity_gap(&self, from: usize, to: usize, start: Time, gap: Time) -> Time {
        let mut gap = gap;
        for w in &self.capacity_windows {
            if w.from.index() == from
                && w.to.index() == to
                && start >= w.from_time
                && start < w.until
            {
                gap = gap * w.factor;
            }
        }
        gap
    }

    /// A uniform draw in `[0, 1)` for one decision — a pure function of the
    /// decision coordinates, independent of any sampling that happened
    /// before it.
    fn unit(&self, salt: u64, from: NodeId, to: NodeId, attempt: u32) -> f64 {
        let mut key = self.seed ^ mix64(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        key = mix64(key ^ (((from.index() as u64) << 32) | to.index() as u64));
        key = mix64(key ^ u64::from(attempt));
        ChaCha8Rng::seed_from_u64(key).gen_f64()
    }

    /// The earliest instant at or after `at` at which the link between the
    /// two clusters is up. Windows may chain; each is applied at most once
    /// per call, so this converges.
    fn flap_clear(&self, a: usize, b: usize, at: Time) -> Time {
        let mut t = at;
        let mut moved = true;
        while moved {
            moved = false;
            for f in &self.flaps {
                if f.covers(a, b) && t >= f.from && t < f.until {
                    t = f.until;
                    moved = true;
                }
            }
        }
        t
    }

    fn crash_times(&self, n: usize) -> Vec<Time> {
        let mut crash = vec![Time::INFINITY; n];
        for c in &self.crashes {
            let i = c.node.index();
            assert!(i < n, "crash names machine {} of a {n}-machine run", c.node);
            crash[i] = crash[i].min(c.at);
        }
        crash
    }
}

/// The ack/retry/timeout protocol configuration.
///
/// A sender considers a copy unacknowledged after `max(base_timeout, g +
/// 2L) · backoff^attempt · (1 + jitter·u)` where `u ∈ [0, 1)` is a
/// deterministic per-attempt draw — the classic exponential backoff with
/// jitter, priced off the pLogP data-and-ack round trip of the actual link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total transmission budget per send (first attempt included). Must be
    /// at least 1; the send is abandoned (a [`TraceKind::Drop`]) when the
    /// budget is exhausted.
    pub max_attempts: u32,
    /// Floor for the first timeout; the per-link round trip `g + 2L` is used
    /// when larger (or when this is zero).
    pub base_timeout: Time,
    /// Multiplicative backoff per retransmission.
    pub backoff: f64,
    /// Jitter fraction: the timeout is stretched by up to this fraction,
    /// deterministically per attempt.
    pub jitter: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base_timeout: Time::ZERO,
            backoff: 2.0,
            jitter: 0.1,
        }
    }
}

impl RetryPolicy {
    /// The timeout armed for `attempt` (0-based) of a send over a link with
    /// round trip `rtt = g + 2L`.
    fn timeout(
        &self,
        faults: &FaultPlan,
        from: NodeId,
        to: NodeId,
        attempt: u32,
        rtt: Time,
    ) -> Time {
        let base = rtt.max(self.base_timeout);
        let mut scale = self.backoff.powi(attempt as i32);
        if self.jitter > 0.0 {
            scale *= 1.0 + self.jitter * faults.unit(SALT_JITTER, from, to, attempt);
        }
        base * scale
    }
}

/// The fault executor's event vocabulary: the fault-free pair plus retry
/// timers and crash marks.
#[derive(Debug, Clone, Copy)]
enum FaultEventKind {
    /// A machine attempts its next pending plan send.
    Attempt { node: NodeId },
    /// A retry timer for one plan send (`send` indexes the sender's forward
    /// list) expires: retransmit if undelivered and budget remains.
    Timeout { node: NodeId, send: u32 },
    /// A copy lands.
    Arrival { from: NodeId, to: NodeId },
    /// A machine dies (trace/stat mark; the semantics use the precomputed
    /// crash-time table so same-instant ordering cannot matter).
    Crash { node: NodeId },
}

/// Read-only context of one faulty run.
struct Ctx<'a> {
    network: &'a NodeNetwork,
    plan: &'a SendPlan,
    faults: &'a FaultPlan,
    retry: &'a RetryPolicy,
    m: MessageSize,
    crash_time: Vec<Time>,
}

/// Mutable state of one faulty run.
struct FaultState {
    nic_free: Vec<Time>,
    arrivals: Vec<u32>,
    cursor: Vec<usize>,
    attempt_pending: Vec<bool>,
    first_arrival: Vec<Time>,
    /// Flat per-send tables (`send_base[node] + k`): the transmission count
    /// and the unacked/delivered cache of the retry protocol.
    send_base: Vec<usize>,
    attempts: Vec<u32>,
    delivered: Vec<bool>,
    wan: WanChannels,
    queue: EventQueue<FaultEventKind>,
    messages: usize,
    events_processed: usize,
    stats: FaultStats,
}

enum Transmit {
    /// Resources (sender NIC, WAN channel, flap window) are busy until the
    /// given time; the caller re-queues its own event kind there.
    Deferred(Time),
    /// The transmission started at the event time.
    Started,
}

/// Tries to start transmission `entry` of `node` at `now`. On success this
/// occupies resources, emits the trace record, rolls the fault draws and
/// schedules either the arrival (plus a possible duplicate) or the retry
/// timer.
fn transmit<S: TraceSink>(
    ctx: &Ctx<'_>,
    st: &mut FaultState,
    sink: &mut S,
    node: usize,
    entry: usize,
    now: Time,
) -> Result<Transmit, SimError> {
    let from = NodeId(node as u32);
    let to = ctx.plan.forwards[node][entry];
    let src_cluster = ctx.network.nodes()[node].cluster.index();
    let dst_cluster = ctx.network.nodes()[to.index()].cluster.index();
    let mut gap = ctx.network.gap(from, to, ctx.m);
    let latency = ctx.network.latency(from, to);

    let mut earliest = now.max(st.nic_free[node]);
    let channel_slot = if src_cluster != dst_cluster {
        let (free, slot) = st.wan.earliest(src_cluster, dst_cluster);
        earliest = earliest.max(free);
        Some(slot)
    } else {
        None
    };
    // A transmission cannot start while the link is down; the deferral is
    // fault-plan state, not queue state, so it converges like any resource.
    earliest = ctx.faults.flap_clear(src_cluster, dst_cluster, earliest);
    if earliest > now {
        return Ok(Transmit::Deferred(earliest));
    }
    // Capacity windows scale the gap of transmissions *starting* inside them;
    // the send is committed to `now`, so the scaled gap drives both the NIC
    // release and the retry timeout below.
    if !ctx.faults.capacity_windows.is_empty() {
        gap = ctx.faults.capacity_gap(src_cluster, dst_cluster, now, gap);
    }

    let flat = st.send_base[node] + entry;
    let attempt = st.attempts[flat];
    st.attempts[flat] = attempt + 1;
    st.stats.attempts += 1;
    st.messages += 1;
    let start = now;
    let release = start + gap;
    st.nic_free[node] = release;
    if let Some(slot) = channel_slot {
        st.wan.occupy(slot, release);
    }
    if sink.enabled() {
        sink.record(TraceEvent {
            kind: if attempt == 0 {
                TraceKind::SendStart
            } else {
                TraceKind::Retry
            },
            time: start,
            from,
            to,
        });
    }
    if attempt > 0 {
        st.stats.retries += 1;
    }

    let mut arrival = release + latency;
    if ctx.faults.delay_probability > 0.0
        && ctx.faults.unit(SALT_DELAY, from, to, attempt) < ctx.faults.delay_probability
    {
        arrival += ctx.faults.max_extra_delay * ctx.faults.unit(SALT_DELAY_MAG, from, to, attempt);
    }
    let lost =
        ctx.faults.loss > 0.0 && ctx.faults.unit(SALT_LOSS, from, to, attempt) < ctx.faults.loss;
    // A copy arriving at or after the receiver's crash instant is lost too —
    // the sender cannot tell the difference and keeps retrying into the
    // void until its budget runs out.
    let receiver_dead = ctx.crash_time[to.index()] <= arrival;
    if lost || receiver_dead {
        st.stats.lost += 1;
        let rtt = gap + latency + latency;
        let timeout = ctx.retry.timeout(ctx.faults, from, to, attempt, rtt);
        st.queue.push(
            start + timeout,
            FaultEventKind::Timeout {
                node: from,
                send: entry as u32,
            },
        )?;
    } else {
        st.delivered[flat] = true;
        st.queue
            .push(arrival, FaultEventKind::Arrival { from, to })?;
        if ctx.faults.duplication > 0.0
            && ctx.faults.unit(SALT_DUP, from, to, attempt) < ctx.faults.duplication
        {
            st.stats.duplicates += 1;
            st.queue
                .push(arrival + latency, FaultEventKind::Arrival { from, to })?;
        }
    }
    Ok(Transmit::Started)
}

/// Schedules the next gated-and-ready plan send of `node`, mirroring the
/// fault-free core's advance (dead machines additionally stay silent).
fn advance(ctx: &Ctx<'_>, st: &mut FaultState, node: usize, now: Time) -> Result<(), SimError> {
    if st.attempt_pending[node] || st.cursor[node] >= ctx.plan.forwards[node].len() {
        return Ok(());
    }
    let after = u32::from(node != ctx.plan.source.index());
    if st.arrivals[node] < after {
        return Ok(());
    }
    if ctx.crash_time[node] <= now {
        return Ok(());
    }
    let at = now.max(st.nic_free[node]);
    st.attempt_pending[node] = true;
    st.queue.push(
        at,
        FaultEventKind::Attempt {
            node: NodeId(node as u32),
        },
    )
}

/// Executes a [`SendPlan`] under a [`FaultPlan`] with ack/retry/timeout
/// transport semantics.
///
/// Semantics on top of [`execute_plan_with_sink`](crate::execute_plan_with_sink)
/// (under a fault-free plan the two are bit-identical — conformance-tested):
///
/// * every transmission occupies its sender's interface (and, cross-cluster,
///   a WAN channel) for the gap **whether or not the copy survives** — lost
///   bytes still cost bandwidth;
/// * a lost copy (injected loss, or a receiver dead at the arrival instant)
///   arms a retry timer: `max(base_timeout, g + 2L) · backoff^attempt ·
///   (1 + jitter·u)` after the transmission started. When it expires the
///   send retransmits (a [`TraceKind::Retry`]) if its budget allows, else it
///   is abandoned with a [`TraceKind::Drop`];
/// * duplicated copies arrive one extra latency later; reception is
///   first-arrival, so duplicates are suppressed by construction;
/// * a machine whose crash time has passed neither starts transmissions
///   (pending plan sends stay unsent and are reported undelivered) nor
///   receives copies; its crash is traced as a [`TraceKind::Crash`];
/// * the run returns [`Outcome::Complete`] iff every machine was reached,
///   and otherwise a loud [`Outcome::Incomplete`] with the undelivered plan
///   edges in deterministic plan order.
///
/// Determinism: the result — outcome, stats, full trace — is a pure function
/// of the arguments. No global RNG, no wall clock, no thread count.
pub fn execute_plan_under_faults<S: TraceSink>(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    faults: &FaultPlan,
    retry: &RetryPolicy,
    sink: &mut S,
) -> Result<Outcome, SimError> {
    let n = network.num_nodes();
    assert_eq!(
        plan.num_nodes(),
        n,
        "plan covers {} machines but the network has {n}",
        plan.num_nodes()
    );
    assert!(
        retry.max_attempts >= 1,
        "the retry budget includes attempt 0"
    );
    let mut send_base = Vec::with_capacity(n + 1);
    let mut total_sends = 0usize;
    for node in 0..n {
        send_base.push(total_sends);
        total_sends += plan.forwards[node].len();
    }
    send_base.push(total_sends);

    let ctx = Ctx {
        network,
        plan,
        faults,
        retry,
        m,
        crash_time: faults.crash_times(n),
    };
    let mut st = FaultState {
        nic_free: vec![start_offset; n],
        arrivals: vec![0u32; n],
        cursor: vec![0usize; n],
        attempt_pending: vec![false; n],
        first_arrival: vec![Time::INFINITY; n],
        send_base,
        attempts: vec![0u32; total_sends],
        delivered: vec![false; total_sends],
        wan: WanChannels::new(network),
        queue: EventQueue::new(),
        messages: 0,
        events_processed: 0,
        stats: FaultStats::default(),
    };

    // Crash marks first (they are known up front), then the initial
    // attempts — the relative order only affects trace interleaving at
    // equal instants, deterministically.
    for c in &faults.crashes {
        st.queue
            .push(c.at.max(Time::ZERO), FaultEventKind::Crash { node: c.node })?;
    }
    for node in 0..n {
        advance(&ctx, &mut st, node, start_offset)?;
    }

    while let Some(event) = st.queue.pop() {
        let now = event.time;
        match event.kind {
            FaultEventKind::Attempt { node } => {
                let idx = node.index();
                if ctx.crash_time[idx] <= now {
                    // The sender died while this attempt was queued; its
                    // remaining plan sends stay unsent.
                    st.attempt_pending[idx] = false;
                    continue;
                }
                let entry = st.cursor[idx];
                match transmit(&ctx, &mut st, sink, idx, entry, now)? {
                    Transmit::Deferred(at) => st.queue.push(at, event.kind)?,
                    Transmit::Started => {
                        st.cursor[idx] += 1;
                        st.attempt_pending[idx] = false;
                        advance(&ctx, &mut st, idx, now)?;
                    }
                }
            }
            FaultEventKind::Timeout { node, send } => {
                let idx = node.index();
                let entry = send as usize;
                let flat = st.send_base[idx] + entry;
                if st.delivered[flat] || ctx.crash_time[idx] <= now {
                    // Acked meanwhile (a later copy of a lost send cannot be
                    // acked — but a duplicate path may deliver), or the
                    // sender itself died: the timer is moot.
                    continue;
                }
                if st.attempts[flat] >= ctx.retry.max_attempts {
                    st.stats.drops += 1;
                    if sink.enabled() {
                        sink.record(TraceEvent {
                            kind: TraceKind::Drop,
                            time: now,
                            from: node,
                            to: ctx.plan.forwards[idx][entry],
                        });
                    }
                    continue;
                }
                match transmit(&ctx, &mut st, sink, idx, entry, now)? {
                    Transmit::Deferred(at) => st.queue.push(at, event.kind)?,
                    Transmit::Started => {}
                }
            }
            FaultEventKind::Arrival { from, to } => {
                st.events_processed += 1;
                let idx = to.index();
                if ctx.crash_time[idx] <= now {
                    // A copy (e.g. a duplicate) crossing the crash instant:
                    // the dead NIC receives nothing.
                    continue;
                }
                if sink.enabled() {
                    sink.record(TraceEvent {
                        kind: TraceKind::Arrival,
                        time: now,
                        from,
                        to,
                    });
                }
                st.arrivals[idx] += 1;
                st.first_arrival[idx] = st.first_arrival[idx].min(now);
                advance(&ctx, &mut st, idx, now)?;
            }
            FaultEventKind::Crash { node } => {
                st.stats.crashes += 1;
                if sink.enabled() {
                    sink.record(TraceEvent {
                        kind: TraceKind::Crash,
                        time: now,
                        from: node,
                        to: node,
                    });
                }
            }
        }
    }

    let source = plan.source;
    let receive_times: Vec<Time> = (0..n)
        .map(|i| {
            if i == source.index() {
                start_offset
            } else {
                st.first_arrival[i]
            }
        })
        .collect();
    let completion = receive_times.iter().copied().max().unwrap_or(Time::ZERO);
    let sim = FaultySimulation {
        outcome: SimulationOutcome {
            completion,
            receive_times,
            messages: st.messages,
            events_processed: st.events_processed,
        },
        stats: st.stats,
    };
    if completion.is_finite() {
        Ok(Outcome::Complete(sim))
    } else {
        let mut undelivered = Vec::new();
        for node in 0..n {
            for (k, &to) in plan.forwards[node].iter().enumerate() {
                if !st.delivered[st.send_base[node] + k] {
                    undelivered.push((NodeId(node as u32), to));
                }
            }
        }
        Ok(Outcome::Incomplete {
            undelivered,
            partial: sim,
        })
    }
}

/// Cluster-level crash recovery: keep what the dying broadcast already
/// delivered, re-plan the rest around the corpse.
///
/// The commit prefix is every event of `original` fully delivered by
/// `crash_at` (`arrival <= crash_at`) — including deliveries *to* and sends
/// *by* the failed relay from before it died; copies still in flight at the
/// crash instant are conservatively treated as not sent and re-planned. The
/// remainder is re-scheduled from that prefix via
/// [`ScheduleEngine::reschedule_excluding`], with every surviving cluster's
/// ready time clamped to `crash_at` (nothing new starts before the failure
/// is detected).
///
/// The repair strictly beats a naive from-scratch restart whenever the
/// prefix delivered anything useful: the restart must re-send every edge
/// after `crash_at`, while the resplice starts from the already-covered
/// clusters (the core's conformance suite pins both the bit-exactness of
/// the re-plan and the strict win).
///
/// # Panics
///
/// If `failed` is the root (a dead root has nothing to recover) or
/// `crash_at` is not finite.
pub fn resplice_after_crash(
    engine: &mut ScheduleEngine,
    problem: &BroadcastProblem,
    original: &Schedule,
    kind: HeuristicKind,
    failed: ClusterId,
    crash_at: Time,
) -> Schedule {
    let committed: Vec<_> = original
        .events
        .iter()
        .copied()
        .filter(|e| e.arrival <= crash_at)
        .collect();
    engine.reschedule_excluding(problem, kind, failed, &committed, crash_at)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::execute_plan_with_sink;
    use crate::trace::CountingSink;
    use gridcast_topology::{grid5000_table3, Grid};

    fn grid() -> Grid {
        grid5000_table3()
    }

    fn binomial(grid: &Grid) -> SendPlan {
        SendPlan::binomial_over_all_nodes(grid, ClusterId(0))
    }

    #[test]
    fn capacity_windows_scale_gap_only_inside_window() {
        let plan = FaultPlan::new(1).with_capacity_window(CapacityWindow {
            from: ClusterId(0),
            to: ClusterId(1),
            factor: 4.0,
            from_time: Time::from_millis(10.0),
            until: Time::from_millis(20.0),
        });
        let g = Time::from_millis(100.0);
        // Inclusive start, exclusive end, directed link only.
        assert_eq!(plan.capacity_gap(0, 1, Time::from_millis(10.0), g), g * 4.0);
        assert_eq!(plan.capacity_gap(0, 1, Time::from_millis(19.0), g), g * 4.0);
        assert_eq!(plan.capacity_gap(0, 1, Time::from_millis(20.0), g), g);
        assert_eq!(plan.capacity_gap(0, 1, Time::from_millis(5.0), g), g);
        assert_eq!(plan.capacity_gap(1, 0, Time::from_millis(15.0), g), g);
    }

    #[test]
    fn stacked_capacity_windows_multiply() {
        let w = |factor| CapacityWindow {
            from: ClusterId(2),
            to: ClusterId(3),
            factor,
            from_time: Time::ZERO,
            until: Time::from_millis(50.0),
        };
        let plan = FaultPlan::new(1)
            .with_capacity_window(w(2.0))
            .with_capacity_window(w(3.0));
        let g = Time::from_millis(10.0);
        assert_eq!(plan.capacity_gap(2, 3, Time::ZERO, g), g * 2.0 * 3.0);
    }

    #[test]
    fn fault_free_plan_is_bit_identical_to_the_plain_executor() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        let mut plain_trace = Vec::new();
        let plain = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut plain_trace);
        let faults = FaultPlan::new(42);
        let mut faulty_trace = Vec::new();
        let outcome = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &RetryPolicy::default(),
            &mut faulty_trace,
        )
        .unwrap();
        let Outcome::Complete(sim) = outcome else {
            panic!("fault-free run must complete");
        };
        assert_eq!(sim.outcome, plain);
        assert_eq!(sim.stats.retries, 0);
        assert_eq!(sim.stats.lost, 0);
        assert_eq!(faulty_trace, plain_trace);
        // Bit-identical, not approximately equal.
        for (a, b) in sim
            .outcome
            .receive_times
            .iter()
            .zip(plain.receive_times.iter())
        {
            assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
        }
    }

    #[test]
    fn loss_with_retries_completes_with_inflated_makespan() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        let clean = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut crate::NullSink);
        for seed in [11u64, 23, 47] {
            let faults = FaultPlan::new(seed).with_loss(0.2);
            let retry = RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            };
            let outcome = execute_plan_under_faults(
                &network,
                &plan,
                m,
                Time::ZERO,
                &faults,
                &retry,
                &mut crate::NullSink,
            )
            .unwrap();
            let Outcome::Complete(sim) = outcome else {
                panic!("p = 0.2 with an 8-attempt budget must complete (seed {seed})");
            };
            assert!(sim.outcome.completion >= clean.completion);
            assert!(sim.stats.retries > 0, "seed {seed} rolled no losses at all");
            assert_eq!(sim.stats.lost, sim.stats.retries + sim.stats.drops);
        }
    }

    #[test]
    fn exhausted_budgets_drop_loudly_with_undelivered_edges() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        // Certain loss: every copy dies, every send exhausts its budget.
        let faults = FaultPlan::new(7).with_loss(1.0);
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let mut counting = CountingSink::default();
        let outcome = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &retry,
            &mut counting,
        )
        .unwrap();
        let Outcome::Incomplete {
            undelivered,
            partial,
        } = outcome
        else {
            panic!("certain loss cannot complete");
        };
        // Only the source's own sends were ever attempted (nobody else got
        // the message), each dropped after 2 attempts.
        let source_sends = plan.forwards[plan.source.index()].len();
        assert_eq!(counting.sends, source_sends);
        assert_eq!(counting.retries, source_sends);
        assert_eq!(counting.drops, source_sends);
        assert_eq!(partial.stats.drops, source_sends);
        // Every plan edge is undelivered, in deterministic plan order.
        assert_eq!(undelivered.len(), plan.num_messages());
        assert!(!partial.outcome.completion.is_finite());
        assert_eq!(partial.unreached().len(), network.num_nodes() - 1);
    }

    #[test]
    fn crashes_kill_subtrees_and_are_traced() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        // Find a relay (a non-source node that forwards) and kill it before
        // the broadcast starts: its whole subtree goes dark.
        let relay = (0..network.num_nodes())
            .find(|&i| i != plan.source.index() && !plan.forwards[i].is_empty())
            .expect("a binomial plan has relays");
        let faults = FaultPlan::new(3).with_crash(NodeCrash {
            node: NodeId(relay as u32),
            at: Time::ZERO,
        });
        let retry = RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        };
        let mut counting = CountingSink::default();
        let outcome = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &retry,
            &mut counting,
        )
        .unwrap();
        assert_eq!(counting.crashes, 1);
        let Outcome::Incomplete {
            undelivered,
            partial,
        } = outcome
        else {
            panic!("killing a relay must be loud");
        };
        assert_eq!(partial.stats.crashes, 1);
        // The relay's parent retried into the void, then dropped.
        assert!(partial.stats.drops >= 1);
        // The dead relay and its pending sends are all undelivered.
        assert!(undelivered
            .iter()
            .any(|&(_, to)| to == NodeId(relay as u32)));
        assert!(undelivered
            .iter()
            .any(|&(from, _)| from == NodeId(relay as u32)));
        assert!(partial.unreached().contains(&NodeId(relay as u32)));
    }

    #[test]
    fn flap_windows_defer_transmission_starts() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        // Node 0 (cluster 0) sends to the first node of another cluster.
        let target = network
            .nodes()
            .iter()
            .find(|n| n.cluster != network.nodes()[0].cluster)
            .expect("multi-cluster grid")
            .id;
        plan.forwards[0].push(target);
        let m = MessageSize::from_mib(1);
        let clean = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut crate::NullSink);
        let down_until = Time::from_millis(40.0);
        let faults = FaultPlan::new(1).with_flap(LinkFlap {
            between: (
                network.nodes()[0].cluster,
                network.nodes()[target.index()].cluster,
            ),
            from: Time::ZERO,
            until: down_until,
        });
        let outcome = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &RetryPolicy::default(),
            &mut crate::NullSink,
        )
        .unwrap();
        let expected = down_until + clean.receive_time(target);
        assert!(
            outcome
                .simulation()
                .outcome
                .receive_time(target)
                .approx_eq(expected, Time::from_micros(1.0)),
            "the transfer starts exactly when the link comes back up"
        );
    }

    #[test]
    fn duplication_injects_suppressed_ghost_copies() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        let clean = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut crate::NullSink);
        let faults = FaultPlan::new(5).with_duplication(1.0);
        let mut counting = CountingSink::default();
        let outcome = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &RetryPolicy::default(),
            &mut counting,
        )
        .unwrap();
        let Outcome::Complete(sim) = outcome else {
            panic!("duplication never prevents completion");
        };
        // Ghost copies double the arrivals but reception is first-arrival:
        // every machine's receive time is exactly the clean one.
        assert_eq!(sim.stats.duplicates, clean.messages);
        assert_eq!(counting.arrivals, 2 * clean.messages);
        for (a, b) in sim
            .outcome
            .receive_times
            .iter()
            .zip(clean.receive_times.iter())
        {
            assert_eq!(a.as_secs().to_bits(), b.as_secs().to_bits());
        }
    }

    #[test]
    fn faulty_replay_is_byte_identical_for_a_fixed_seed() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = binomial(&grid);
        let m = MessageSize::from_mib(1);
        let faults = FaultPlan::new(0xDEAD_BEEF)
            .with_loss(0.15)
            .with_duplication(0.1)
            .with_extra_delay(0.2, Time::from_millis(3.0))
            .with_crash(NodeCrash {
                node: NodeId(17),
                at: Time::from_millis(25.0),
            });
        let retry = RetryPolicy::default();
        let mut trace_a = Vec::new();
        let a = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &retry,
            &mut trace_a,
        )
        .unwrap();
        let mut trace_b = Vec::new();
        let b = execute_plan_under_faults(
            &network,
            &plan,
            m,
            Time::ZERO,
            &faults,
            &retry,
            &mut trace_b,
        )
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(trace_a, trace_b);
        // And the trace respects the monotone-clock streaming contract even
        // under faults.
        assert!(trace_a.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn resplice_after_crash_reuses_the_delivered_prefix() {
        let grid = grid();
        let message = MessageSize::from_mib(1);
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
        let mut engine = ScheduleEngine::new();
        let kind = HeuristicKind::EcefLaMax;
        let original = engine.schedule(&problem, kind);
        // Kill the first relay at the instant of its first delivery: the
        // prefix up to then is kept verbatim.
        let relay = original
            .events
            .iter()
            .map(|e| e.receiver)
            .find(|&r| original.events.iter().any(|e| e.sender == r))
            .expect("a grid schedule has relays");
        let crash_at = original
            .events
            .iter()
            .filter(|e| e.sender == relay)
            .map(|e| e.arrival)
            .fold(Time::INFINITY, Time::min);
        let repaired =
            resplice_after_crash(&mut engine, &problem, &original, kind, relay, crash_at);
        // The delivered prefix (commit order, not necessarily an index
        // prefix — arrivals interleave across links) is kept verbatim.
        let committed: Vec<_> = original
            .events
            .iter()
            .copied()
            .filter(|e| e.arrival <= crash_at)
            .collect();
        assert!(!committed.is_empty());
        for (a, b) in repaired.events.iter().zip(committed.iter()) {
            assert_eq!(a, b);
        }
        // Repairs never involve the corpse and never start before the crash.
        for e in &repaired.events[committed.len()..] {
            assert_ne!(e.sender, relay);
            assert_ne!(e.receiver, relay);
            assert!(e.start >= crash_at);
        }
        // Everyone except the corpse is covered.
        assert!(repaired.makespan_excluding(relay).is_finite());
    }
}
