//! Node-level communication plans.
//!
//! A [`SendPlan`] assigns every machine an ordered list of destinations it must
//! forward the broadcast message to once it holds it. The discrete-event engine
//! then executes the plan. Plans are built either from an inter-cluster
//! [`Schedule`] produced by a scheduling heuristic (the grid-aware executions of
//! Figure 6) or as a grid-unaware binomial tree over all ranks (the "Default LAM"
//! baseline of the same figure).

use gridcast_collectives::binomial_tree;
use gridcast_core::{RelaySchedule, Schedule, ScheduleEvent};
use gridcast_plogp::MessageSize;
use gridcast_topology::{ClusterId, Grid, NodeId};
use serde::{Deserialize, Serialize};

/// An ordered list of forwards per machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendPlan {
    /// The machine that initially holds the message.
    pub source: NodeId,
    /// For every machine (indexed by [`NodeId`]), the ordered destinations it
    /// forwards the message to after receiving it.
    pub forwards: Vec<Vec<NodeId>>,
}

impl SendPlan {
    /// Creates an empty plan (no forwards) for `num_nodes` machines.
    pub fn empty(source: NodeId, num_nodes: usize) -> Self {
        SendPlan {
            source,
            forwards: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of machines covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.forwards.len()
    }

    /// Total number of point-to-point messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.forwards.iter().map(|f| f.len()).sum()
    }

    /// Checks that the plan reaches every machine exactly once (the source counts
    /// as already reached). Returns the list of unreachable machines, empty when
    /// the plan is a valid broadcast.
    pub fn unreachable(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut received = vec![false; n];
        let mut order = Vec::with_capacity(n);
        received[self.source.index()] = true;
        order.push(self.source);
        let mut cursor = 0;
        while cursor < order.len() {
            let node = order[cursor];
            cursor += 1;
            for &dst in &self.forwards[node.index()] {
                if !received[dst.index()] {
                    received[dst.index()] = true;
                    order.push(dst);
                }
            }
        }
        (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|id| !received[id.index()])
            .collect()
    }

    /// Builds the node-level plan realising an inter-cluster `schedule` on
    /// `grid`:
    ///
    /// 1. every cluster coordinator forwards the message to the coordinators of
    ///    the clusters it serves, in the order of the schedule's events (this is
    ///    where the heuristics differ), and only then
    /// 2. broadcasts it inside its own cluster along a binomial tree — exactly
    ///    the paper's "the cluster can finally broadcast the message among the
    ///    cluster processes" rule.
    pub fn from_grid_schedule(grid: &Grid, schedule: &Schedule) -> Self {
        Self::from_inter_cluster_events(grid, schedule.root, &schedule.events)
    }

    /// Builds the node-level plan from raw inter-cluster events — the output
    /// of `gridcast_core::ScheduleEngine::events()` — without requiring a
    /// materialised [`Schedule`]. Useful when driving many simulations off one
    /// reusable engine.
    pub fn from_inter_cluster_events(
        grid: &Grid,
        root: ClusterId,
        events: &[ScheduleEvent],
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let source = grid.coordinator(root);
        let mut plan = SendPlan::empty(source, num_nodes);

        // Inter-cluster forwards, in schedule order (the order events were
        // committed is the order each coordinator issues its sends).
        for event in events {
            let from = grid.coordinator(event.sender);
            let to = grid.coordinator(event.receiver);
            plan.forwards[from.index()].push(to);
        }

        // Intra-cluster binomial trees, appended after the inter-cluster sends.
        for cluster in grid.clusters() {
            let size = cluster.size as usize;
            if size <= 1 {
                continue;
            }
            let base = grid.coordinator(cluster.id).0;
            let tree = binomial_tree(size);
            for local_rank in 0..size {
                let sender = NodeId(base + local_rank as u32);
                for &child in tree.children(local_rank) {
                    plan.forwards[sender.index()].push(NodeId(base + child as u32));
                }
            }
        }
        plan
    }

    /// Builds the grid-unaware baseline: a binomial tree over all machines in
    /// rank order, ignoring cluster boundaries — the behaviour of a stock
    /// `MPI_Bcast` ("Default LAM" in Figure 6). The tree is rooted at the
    /// coordinator of `root`.
    pub fn binomial_over_all_nodes(grid: &Grid, root: ClusterId) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let root_node = grid.coordinator(root);
        let tree = binomial_tree(num_nodes);
        let mut plan = SendPlan::empty(root_node, num_nodes);
        // The binomial tree is built over "virtual ranks" where rank 0 is the
        // root node; translate virtual ranks to node ids by rotation, which is
        // how MPI implementations root a broadcast at an arbitrary rank.
        let translate =
            |virtual_rank: usize| NodeId(((virtual_rank + root_node.index()) % num_nodes) as u32);
        for virtual_rank in 0..num_nodes {
            let sender = translate(virtual_rank);
            for &child in tree.children(virtual_rank) {
                plan.forwards[sender.index()].push(translate(child));
            }
        }
        plan
    }
}

/// An ordered list of forwards per machine where every send carries its own
/// payload size — the node-level realisation of the **personalised** patterns
/// (scatter and its relay-capable variant), where a relayed message is a
/// concatenation of blocks and a local scatter send is one machine's block.
///
/// The uniform-payload [`SendPlan`] stays the broadcast fast path; this type
/// feeds [`execute_sized_plan`](crate::engine::execute_sized_plan).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedSendPlan {
    /// The machine that initially holds all the data.
    pub source: NodeId,
    /// For every machine, the ordered `(destination, payload)` sends it issues
    /// once it holds its data.
    pub forwards: Vec<Vec<(NodeId, MessageSize)>>,
}

impl SizedSendPlan {
    /// Creates an empty plan (no forwards) for `num_nodes` machines.
    pub fn empty(source: NodeId, num_nodes: usize) -> Self {
        SizedSendPlan {
            source,
            forwards: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of machines covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.forwards.len()
    }

    /// Total number of point-to-point messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.forwards.iter().map(|f| f.len()).sum()
    }

    /// Machines the plan never reaches (empty for a valid scatter).
    pub fn unreachable(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut received = vec![false; n];
        let mut order = Vec::with_capacity(n);
        received[self.source.index()] = true;
        order.push(self.source);
        let mut cursor = 0;
        while cursor < order.len() {
            let node = order[cursor];
            cursor += 1;
            for &(dst, _) in &self.forwards[node.index()] {
                if !received[dst.index()] {
                    received[dst.index()] = true;
                    order.push(dst);
                }
            }
        }
        (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|id| !received[id.index()])
            .collect()
    }

    /// Builds the node-level plan realising a relay-capable inter-cluster
    /// scatter `schedule` on `grid`:
    ///
    /// 1. every coordinator forwards the **concatenated subtree payloads** of
    ///    the schedule's events it sends, in event order (this is where the
    ///    relaying happens — a relay pushes other clusters' blocks onward),
    ///    and only then
    /// 2. scatters its own cluster's blocks locally, one `per_node` send per
    ///    machine (the personalised counterpart of the broadcast's local
    ///    binomial tree — every machine must receive a *different* block, so
    ///    the coordinator is the only local sender).
    pub fn from_relay_schedule(
        grid: &Grid,
        schedule: &RelaySchedule,
        per_node: MessageSize,
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let source = grid.coordinator(schedule.root);
        let mut plan = SizedSendPlan::empty(source, num_nodes);
        for event in &schedule.events {
            let from = grid.coordinator(event.sender);
            let to = grid.coordinator(event.receiver);
            plan.forwards[from.index()].push((to, event.payload));
        }
        for cluster in grid.clusters() {
            let size = cluster.size as usize;
            if size <= 1 {
                continue;
            }
            let coordinator = grid.coordinator(cluster.id);
            for local_rank in 1..size {
                plan.forwards[coordinator.index()]
                    .push((NodeId(coordinator.0 + local_rank as u32), per_node));
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_core::{BroadcastProblem, HeuristicKind};
    use gridcast_plogp::MessageSize;
    use gridcast_topology::grid5000_table3;

    #[test]
    fn grid_schedule_plan_reaches_every_machine() {
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            let plan = SendPlan::from_grid_schedule(&grid, &schedule);
            assert_eq!(plan.num_nodes(), 88);
            assert!(plan.unreachable().is_empty(), "{kind}");
            // 87 machines must each receive exactly one message.
            assert_eq!(plan.num_messages(), 87, "{kind}");
        }
    }

    #[test]
    fn coordinators_forward_inter_cluster_before_intra_cluster() {
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let schedule = HeuristicKind::FlatTree.schedule(&problem);
        let plan = SendPlan::from_grid_schedule(&grid, &schedule);
        let root = grid.coordinator(ClusterId(0));
        let forwards = &plan.forwards[root.index()];
        // Flat tree: the root coordinator first contacts the 5 other cluster
        // coordinators, then its own cluster members.
        let coordinators: Vec<NodeId> = grid.cluster_ids().map(|c| grid.coordinator(c)).collect();
        for (i, dst) in forwards.iter().take(5).enumerate() {
            assert!(
                coordinators.contains(dst),
                "forward #{i} of the root should target a coordinator, got {dst}"
            );
        }
        assert!(forwards.len() > 5, "root also serves its own cluster");
    }

    #[test]
    fn baseline_plan_is_a_valid_broadcast_for_any_root() {
        let grid = grid5000_table3();
        for root in grid.cluster_ids() {
            let plan = SendPlan::binomial_over_all_nodes(&grid, root);
            assert!(plan.unreachable().is_empty());
            assert_eq!(plan.num_messages(), 87);
            assert_eq!(plan.source, grid.coordinator(root));
        }
    }

    #[test]
    fn unreachable_detects_incomplete_plans() {
        let plan = SendPlan::empty(NodeId(0), 4);
        let missing = plan.unreachable();
        assert_eq!(missing, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn relay_schedule_plan_reaches_every_machine_exactly_once() {
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(64);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let schedule = problem.schedule(ordering);
            let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
            assert_eq!(plan.num_nodes(), 88);
            assert!(plan.unreachable().is_empty(), "{ordering:?}");
            // 5 inter-cluster transfers plus one send per non-coordinator
            // machine: every machine receives exactly once.
            assert_eq!(plan.num_messages(), 87, "{ordering:?}");
        }
    }

    #[test]
    fn relay_plan_carries_concatenated_payloads_inter_cluster() {
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(16);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
        // Inter-cluster sends carry at least one aggregate block; local sends
        // carry exactly one machine's slice.
        let root = grid.coordinator(ClusterId(0));
        let coordinators: Vec<NodeId> = grid.cluster_ids().map(|c| grid.coordinator(c)).collect();
        for forwards in &plan.forwards {
            for &(dst, payload) in forwards {
                if coordinators.contains(&dst) && dst != root {
                    assert!(payload >= per_node);
                } else {
                    assert_eq!(payload, per_node);
                }
            }
        }
    }

    #[test]
    fn engine_events_build_the_same_plan_as_the_schedule() {
        use gridcast_core::ScheduleEngine;
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(2), MessageSize::from_mib(1));
        let mut engine = ScheduleEngine::new();
        let schedule = engine.schedule(&problem, HeuristicKind::EcefLaMax);
        let from_schedule = SendPlan::from_grid_schedule(&grid, &schedule);
        // Re-run so `events()` reflects this heuristic, then build straight
        // from the engine buffer.
        let _ = engine.makespan(&problem, HeuristicKind::EcefLaMax);
        let from_events = SendPlan::from_inter_cluster_events(&grid, problem.root, engine.events());
        assert_eq!(from_schedule, from_events);
        assert!(from_events.unreachable().is_empty());
    }
}
