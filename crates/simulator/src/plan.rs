//! Node-level communication plans.
//!
//! A [`SendPlan`] assigns every machine an ordered list of destinations it must
//! forward the broadcast message to once it holds it. The discrete-event engine
//! then executes the plan. Plans are built either from an inter-cluster
//! [`Schedule`] produced by a scheduling heuristic (the grid-aware executions of
//! Figure 6) or as a grid-unaware binomial tree over all ranks (the "Default LAM"
//! baseline of the same figure).

use gridcast_collectives::binomial_tree;
use gridcast_core::{
    AllGatherSchedule, RelayGatherSchedule, RelaySchedule, Schedule, ScheduleEvent,
};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid, NodeId};
use serde::{Deserialize, Serialize};

/// An ordered list of forwards per machine.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendPlan {
    /// The machine that initially holds the message.
    pub source: NodeId,
    /// For every machine (indexed by [`NodeId`]), the ordered destinations it
    /// forwards the message to after receiving it.
    pub forwards: Vec<Vec<NodeId>>,
}

impl SendPlan {
    /// Creates an empty plan (no forwards) for `num_nodes` machines.
    pub fn empty(source: NodeId, num_nodes: usize) -> Self {
        SendPlan {
            source,
            forwards: vec![Vec::new(); num_nodes],
        }
    }

    /// Number of machines covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.forwards.len()
    }

    /// Total number of point-to-point messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.forwards.iter().map(|f| f.len()).sum()
    }

    /// Checks that the plan reaches every machine exactly once (the source counts
    /// as already reached). Returns the list of unreachable machines, empty when
    /// the plan is a valid broadcast.
    pub fn unreachable(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut received = vec![false; n];
        let mut order = Vec::with_capacity(n);
        received[self.source.index()] = true;
        order.push(self.source);
        let mut cursor = 0;
        while cursor < order.len() {
            let node = order[cursor];
            cursor += 1;
            for &dst in &self.forwards[node.index()] {
                if !received[dst.index()] {
                    received[dst.index()] = true;
                    order.push(dst);
                }
            }
        }
        (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|id| !received[id.index()])
            .collect()
    }

    /// Builds the node-level plan realising an inter-cluster `schedule` on
    /// `grid`:
    ///
    /// 1. every cluster coordinator forwards the message to the coordinators of
    ///    the clusters it serves, in the order of the schedule's events (this is
    ///    where the heuristics differ), and only then
    /// 2. broadcasts it inside its own cluster along a binomial tree — exactly
    ///    the paper's "the cluster can finally broadcast the message among the
    ///    cluster processes" rule.
    pub fn from_grid_schedule(grid: &Grid, schedule: &Schedule) -> Self {
        Self::from_inter_cluster_events(grid, schedule.root, &schedule.events)
    }

    /// Builds the node-level plan from raw inter-cluster events — the output
    /// of `gridcast_core::ScheduleEngine::events()` — without requiring a
    /// materialised [`Schedule`]. Useful when driving many simulations off one
    /// reusable engine.
    pub fn from_inter_cluster_events(
        grid: &Grid,
        root: ClusterId,
        events: &[ScheduleEvent],
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let source = grid.coordinator(root);
        let mut plan = SendPlan::empty(source, num_nodes);

        // Inter-cluster forwards, in schedule order (the order events were
        // committed is the order each coordinator issues its sends).
        for event in events {
            let from = grid.coordinator(event.sender);
            let to = grid.coordinator(event.receiver);
            plan.forwards[from.index()].push(to);
        }

        // Intra-cluster binomial trees, appended after the inter-cluster sends.
        for cluster in grid.clusters() {
            let size = cluster.size as usize;
            if size <= 1 {
                continue;
            }
            let base = grid.coordinator(cluster.id).0;
            let tree = binomial_tree(size);
            for local_rank in 0..size {
                let sender = NodeId(base + local_rank as u32);
                for &child in tree.children(local_rank) {
                    plan.forwards[sender.index()].push(NodeId(base + child as u32));
                }
            }
        }
        plan
    }

    /// Builds the grid-unaware baseline: a binomial tree over all machines in
    /// rank order, ignoring cluster boundaries — the behaviour of a stock
    /// `MPI_Bcast` ("Default LAM" in Figure 6). The tree is rooted at the
    /// coordinator of `root`.
    pub fn binomial_over_all_nodes(grid: &Grid, root: ClusterId) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let root_node = grid.coordinator(root);
        let tree = binomial_tree(num_nodes);
        let mut plan = SendPlan::empty(root_node, num_nodes);
        // The binomial tree is built over "virtual ranks" where rank 0 is the
        // root node; translate virtual ranks to node ids by rotation, which is
        // how MPI implementations root a broadcast at an arbitrary rank.
        let translate =
            |virtual_rank: usize| NodeId(((virtual_rank + root_node.index()) % num_nodes) as u32);
        for virtual_rank in 0..num_nodes {
            let sender = translate(virtual_rank);
            for &child in tree.children(virtual_rank) {
                plan.forwards[sender.index()].push(translate(child));
            }
        }
        plan
    }
}

/// One send of a [`SizedSendPlan`]: a destination, the payload it carries,
/// and the **gates** that release it.
///
/// * `after_arrivals`: the send is issued only once its machine has received
///   at least this many messages (0 = the machine starts with its data —
///   sources, and every contributor of a gather). This is what lets one plan
///   express multi-stage nodes: a coordinator that must collect its whole
///   cluster *and* its gather subtree before forwarding, or first exchange
///   wide-area aggregates and only then redistribute locally.
/// * `not_before`: an earliest start time, used to realise an engine
///   schedule's committed timings node-level (the simulator then *verifies*
///   the schedule is executable instead of inventing its own order; an
///   infeasible schedule shows up as a later start and a larger makespan).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedSend {
    /// Destination machine.
    pub to: NodeId,
    /// Bytes this send moves.
    pub payload: MessageSize,
    /// Earliest time the send may start (zero = unconstrained).
    pub not_before: Time,
    /// Number of arrivals the sending machine must have seen first.
    pub after_arrivals: u32,
}

/// An ordered list of forwards per machine where every send carries its own
/// payload size and release gates — the node-level realisation of the
/// **personalised** patterns: relay-capable scatter (a relayed message is a
/// concatenation of blocks), gather (blocks flow child → parent, each node
/// waiting for its whole subtree), and allgather (aggregate exchange bracketed
/// by local gather and redistribution phases).
///
/// The uniform-payload [`SendPlan`] stays the broadcast fast path; this type
/// feeds [`execute_sized_plan`](crate::engine::execute_sized_plan), whose
/// semantics differ from the broadcast engine in one important way: a sized
/// send occupies **both** endpoints' interfaces for its gap (the single-port
/// model of `ScheduleEngine::schedule_transfers`), which is what makes
/// engine-predicted exchange makespans reproducible node-level.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SizedSendPlan {
    /// The machine that initially holds the pattern's data (for gather-like
    /// plans where data *converges*, the sink's coordinator).
    pub source: NodeId,
    /// For every machine, the ordered sends it issues once their gates open.
    pub forwards: Vec<Vec<SizedSend>>,
}

impl SizedSendPlan {
    /// Creates an empty plan (no forwards) for `num_nodes` machines.
    pub fn empty(source: NodeId, num_nodes: usize) -> Self {
        SizedSendPlan {
            source,
            forwards: vec![Vec::new(); num_nodes],
        }
    }

    /// Appends a single-arrival-gated send (the relay-scatter default: a
    /// machine forwards once it holds its payload). `after_arrivals` is 0 for
    /// the source, 1 otherwise.
    pub fn push_forward(&mut self, from: NodeId, to: NodeId, payload: MessageSize) {
        let gate = u32::from(from != self.source);
        self.forwards[from.index()].push(SizedSend {
            to,
            payload,
            not_before: Time::ZERO,
            after_arrivals: gate,
        });
    }

    /// Number of machines covered by the plan.
    pub fn num_nodes(&self) -> usize {
        self.forwards.len()
    }

    /// Total number of point-to-point messages in the plan.
    pub fn num_messages(&self) -> usize {
        self.forwards.iter().map(|f| f.len()).sum()
    }

    /// Machines the plan never reaches by forwarding from the source (empty
    /// for a valid scatter). Only meaningful for source-rooted plans — in a
    /// gather the data *converges* on the source instead.
    pub fn unreachable(&self) -> Vec<NodeId> {
        let n = self.num_nodes();
        let mut received = vec![false; n];
        let mut order = Vec::with_capacity(n);
        received[self.source.index()] = true;
        order.push(self.source);
        let mut cursor = 0;
        while cursor < order.len() {
            let node = order[cursor];
            cursor += 1;
            for send in &self.forwards[node.index()] {
                if !received[send.to.index()] {
                    received[send.to.index()] = true;
                    order.push(send.to);
                }
            }
        }
        (0..n)
            .map(|i| NodeId(i as u32))
            .filter(|id| !received[id.index()])
            .collect()
    }

    /// Builds the node-level plan realising a relay-capable inter-cluster
    /// scatter `schedule` on `grid`:
    ///
    /// 1. every coordinator forwards the **concatenated subtree payloads** of
    ///    the schedule's events it sends, in event order (this is where the
    ///    relaying happens — a relay pushes other clusters' blocks onward),
    ///    and only then
    /// 2. scatters its own cluster's blocks locally, one `per_node` send per
    ///    machine (the personalised counterpart of the broadcast's local
    ///    binomial tree — every machine must receive a *different* block, so
    ///    the coordinator is the only local sender).
    pub fn from_relay_schedule(
        grid: &Grid,
        schedule: &RelaySchedule,
        per_node: MessageSize,
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let source = grid.coordinator(schedule.root);
        let mut plan = SizedSendPlan::empty(source, num_nodes);
        for event in &schedule.events {
            let from = grid.coordinator(event.sender);
            let to = grid.coordinator(event.receiver);
            plan.push_forward(from, to, event.payload);
        }
        for cluster in grid.clusters() {
            let size = cluster.size as usize;
            if size <= 1 {
                continue;
            }
            let coordinator = grid.coordinator(cluster.id);
            for local_rank in 1..size {
                plan.push_forward(
                    coordinator,
                    NodeId(coordinator.0 + local_rank as u32),
                    per_node,
                );
            }
        }
        plan
    }

    /// Builds the node-level plan realising a relay-capable inter-cluster
    /// gather `schedule` on `grid` — the reverse data flow of
    /// [`SizedSendPlan::from_relay_schedule`]:
    ///
    /// 1. inside every cluster the machines run a **mirrored binomial
    ///    gather**: each rank forwards the concatenation of its binomial
    ///    subtree's blocks to its binomial parent once all of them arrived
    ///    (the critical path is exactly the chain of halving chunks that
    ///    [`Pattern::Gather`](gridcast_collectives::Pattern) prices), then
    /// 2. each non-root coordinator hands the concatenation of its **gather
    ///    subtree** to its parent cluster's coordinator, gated on its local
    ///    gather *and* every child cluster's payload, no earlier than the
    ///    schedule's hand-off time.
    ///
    /// The plan's `source` is the root's coordinator — the machine where all
    /// data converges.
    pub fn from_gather_schedule(
        grid: &Grid,
        schedule: &RelayGatherSchedule,
        per_node: MessageSize,
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let mut plan = SizedSendPlan::empty(grid.coordinator(schedule.root), num_nodes);
        // How many child clusters hand their subtree to each cluster.
        let mut cluster_children = vec![0u32; grid.num_clusters()];
        for event in &schedule.events {
            cluster_children[event.receiver.index()] += 1;
        }
        let local_gather_children = push_local_gather_phase(&mut plan, grid, per_node);
        // Inter-cluster hand-offs, gated on the full local gather plus every
        // child cluster's payload.
        for event in &schedule.events {
            let from = grid.coordinator(event.sender);
            let to = grid.coordinator(event.receiver);
            plan.forwards[from.index()].push(SizedSend {
                to,
                payload: event.payload,
                not_before: event.start,
                after_arrivals: local_gather_children[from.index()]
                    + cluster_children[event.sender.index()],
            });
        }
        plan
    }

    /// Builds the node-level plan realising an allgather `schedule` on
    /// `grid`: the mirrored binomial local gather of
    /// [`SizedSendPlan::from_gather_schedule`], then each coordinator's
    /// engine-scheduled aggregate sends (in schedule order, at the schedule's
    /// start times), and finally a binomial **local broadcast** of the full
    /// concatenation once the coordinator holds every cluster's aggregate
    /// (each rank needs every block, its own cluster's included — the ranks
    /// only hold their own).
    ///
    /// The plan's `source` is the coordinator of cluster 0 (an allgather has
    /// no distinguished root; the field only anchors [`SizedSendPlan::unreachable`],
    /// which is not meaningful for converging plans).
    pub fn from_allgather_schedule(
        grid: &Grid,
        schedule: &AllGatherSchedule,
        per_node: MessageSize,
    ) -> Self {
        let num_nodes = grid.num_nodes() as usize;
        let n = grid.num_clusters();
        let mut plan = SizedSendPlan::empty(grid.coordinator(ClusterId(0)), num_nodes);
        let total = MessageSize::from_bytes(per_node.as_bytes() * u64::from(grid.num_nodes()));
        let local_gather_children = push_local_gather_phase(&mut plan, grid, per_node);
        // Wide-area aggregate exchange: each coordinator issues its sends in
        // engine-schedule order, gated on its local gather.
        for transfer in &schedule.exchange.transfers {
            let from = grid.coordinator(transfer.from);
            plan.forwards[from.index()].push(SizedSend {
                to: grid.coordinator(transfer.to),
                payload: transfer.payload,
                not_before: transfer.start,
                after_arrivals: local_gather_children[from.index()],
            });
        }
        // Local redistribution: a binomial broadcast of the full
        // concatenation, released once the coordinator has its local gather
        // AND all n−1 remote aggregates.
        for cluster in grid.clusters() {
            let size = cluster.size as usize;
            if size <= 1 {
                continue;
            }
            let base = grid.coordinator(cluster.id).0;
            let local = LocalBinomial::new(size);
            for rank in 0..size {
                let node = base as usize + rank;
                let gate = local_gather_children[node] + if rank == 0 { (n - 1) as u32 } else { 1 };
                for &child in local.tree.children(rank) {
                    plan.forwards[node].push(SizedSend {
                        to: NodeId(base + child as u32),
                        payload: total,
                        not_before: Time::ZERO,
                        after_arrivals: gate,
                    });
                }
            }
        }
        plan
    }
}

/// Appends the **mirrored binomial local gather** of every cluster to `plan`
/// — each non-coordinator rank forwards the concatenation of its binomial
/// subtree's blocks to its binomial parent once all of them arrived — and
/// returns, per machine, how many local-gather arrivals it waits for (the
/// gate later phases build on). Shared by the gather and allgather plan
/// builders so the two node-level realisations cannot drift apart.
fn push_local_gather_phase(
    plan: &mut SizedSendPlan,
    grid: &Grid,
    per_node: MessageSize,
) -> Vec<u32> {
    let mut local_gather_children = vec![0u32; plan.num_nodes()];
    for cluster in grid.clusters() {
        let base = grid.coordinator(cluster.id).0;
        let local = LocalBinomial::new(cluster.size as usize);
        for rank in 0..cluster.size as usize {
            local_gather_children[base as usize + rank] = local.children(rank);
        }
        for rank in 1..cluster.size as usize {
            let parent = local.parent(rank).expect("non-root rank has a parent");
            plan.forwards[base as usize + rank].push(SizedSend {
                to: NodeId(base + parent as u32),
                payload: MessageSize::from_bytes(per_node.as_bytes() * local.subtree_size(rank)),
                not_before: Time::ZERO,
                after_arrivals: local.children(rank),
            });
        }
    }
    local_gather_children
}

/// Parent pointers, child counts and subtree sizes of one cluster's binomial
/// tree — the local structure shared by the gather (mirrored, leaves-to-root)
/// and broadcast (root-to-leaves) phases.
struct LocalBinomial {
    tree: gridcast_collectives::BroadcastTree,
    parent: Vec<Option<usize>>,
    subtree: Vec<u64>,
}

impl LocalBinomial {
    fn new(size: usize) -> Self {
        let tree = binomial_tree(size.max(1));
        let mut parent = vec![None; size.max(1)];
        for rank in 0..size {
            for &child in tree.children(rank) {
                parent[child] = Some(rank);
            }
        }
        let mut subtree = vec![1u64; size.max(1)];
        // Children always have larger ranks in a binomial tree, so one
        // reverse pass folds the subtree sizes bottom-up.
        for rank in (0..size).rev() {
            if let Some(p) = parent[rank] {
                subtree[p] += subtree[rank];
            }
        }
        LocalBinomial {
            tree,
            parent,
            subtree,
        }
    }

    fn children(&self, rank: usize) -> u32 {
        self.tree.children(rank).len() as u32
    }

    fn parent(&self, rank: usize) -> Option<usize> {
        self.parent[rank]
    }

    fn subtree_size(&self, rank: usize) -> u64 {
        self.subtree[rank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_core::{BroadcastProblem, HeuristicKind};
    use gridcast_plogp::MessageSize;
    use gridcast_topology::grid5000_table3;

    #[test]
    fn grid_schedule_plan_reaches_every_machine() {
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            let plan = SendPlan::from_grid_schedule(&grid, &schedule);
            assert_eq!(plan.num_nodes(), 88);
            assert!(plan.unreachable().is_empty(), "{kind}");
            // 87 machines must each receive exactly one message.
            assert_eq!(plan.num_messages(), 87, "{kind}");
        }
    }

    #[test]
    fn coordinators_forward_inter_cluster_before_intra_cluster() {
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let schedule = HeuristicKind::FlatTree.schedule(&problem);
        let plan = SendPlan::from_grid_schedule(&grid, &schedule);
        let root = grid.coordinator(ClusterId(0));
        let forwards = &plan.forwards[root.index()];
        // Flat tree: the root coordinator first contacts the 5 other cluster
        // coordinators, then its own cluster members.
        let coordinators: Vec<NodeId> = grid.cluster_ids().map(|c| grid.coordinator(c)).collect();
        for (i, dst) in forwards.iter().take(5).enumerate() {
            assert!(
                coordinators.contains(dst),
                "forward #{i} of the root should target a coordinator, got {dst}"
            );
        }
        assert!(forwards.len() > 5, "root also serves its own cluster");
    }

    #[test]
    fn baseline_plan_is_a_valid_broadcast_for_any_root() {
        let grid = grid5000_table3();
        for root in grid.cluster_ids() {
            let plan = SendPlan::binomial_over_all_nodes(&grid, root);
            assert!(plan.unreachable().is_empty());
            assert_eq!(plan.num_messages(), 87);
            assert_eq!(plan.source, grid.coordinator(root));
        }
    }

    #[test]
    fn unreachable_detects_incomplete_plans() {
        let plan = SendPlan::empty(NodeId(0), 4);
        let missing = plan.unreachable();
        assert_eq!(missing, vec![NodeId(1), NodeId(2), NodeId(3)]);
    }

    #[test]
    fn relay_schedule_plan_reaches_every_machine_exactly_once() {
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(64);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let schedule = problem.schedule(ordering);
            let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
            assert_eq!(plan.num_nodes(), 88);
            assert!(plan.unreachable().is_empty(), "{ordering:?}");
            // 5 inter-cluster transfers plus one send per non-coordinator
            // machine: every machine receives exactly once.
            assert_eq!(plan.num_messages(), 87, "{ordering:?}");
        }
    }

    #[test]
    fn relay_plan_carries_concatenated_payloads_inter_cluster() {
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(16);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
        // Inter-cluster sends carry at least one aggregate block; local sends
        // carry exactly one machine's slice.
        let root = grid.coordinator(ClusterId(0));
        let coordinators: Vec<NodeId> = grid.cluster_ids().map(|c| grid.coordinator(c)).collect();
        for forwards in &plan.forwards {
            for send in forwards {
                if coordinators.contains(&send.to) && send.to != root {
                    assert!(send.payload >= per_node);
                } else {
                    assert_eq!(send.payload, per_node);
                }
            }
        }
    }

    #[test]
    fn gather_plan_covers_local_trees_and_inter_cluster_handoffs() {
        use gridcast_core::{RelayGatherProblem, RelayOrdering};
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(16);
        let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
        assert_eq!(plan.num_nodes(), 88);
        // One local send per non-coordinator machine plus one inter-cluster
        // hand-off per non-root cluster.
        assert_eq!(plan.num_messages(), (88 - 6) + 5);
        // Every machine sends at most once (a gather converges), and every
        // inter-cluster hand-off is released no earlier than the schedule
        // says.
        for (node, forwards) in plan.forwards.iter().enumerate() {
            assert!(forwards.len() <= 1, "machine {node} sends more than once");
        }
        for event in &schedule.events {
            let from = grid.coordinator(event.sender);
            let send = &plan.forwards[from.index()][0];
            assert_eq!(send.payload, event.payload);
            assert_eq!(send.not_before, event.start);
            // Gate: the coordinator's local binomial children plus every
            // child cluster handing it a subtree (0 for singleton leaves —
            // they start holding their block).
            let local = binomial_tree(grid.cluster(event.sender).size as usize)
                .children(0)
                .len() as u32;
            let subtree_children = schedule
                .events
                .iter()
                .filter(|e| e.receiver == event.sender)
                .count() as u32;
            assert_eq!(send.after_arrivals, local + subtree_children);
        }
    }

    #[test]
    fn allgather_plan_has_three_phases_per_cluster() {
        use gridcast_core::allgather_schedule;
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(16);
        let schedule = allgather_schedule(&grid, per_node);
        let plan = SizedSendPlan::from_allgather_schedule(&grid, &schedule, per_node);
        // Local gathers (one send per non-coordinator machine), the n(n−1)
        // aggregate exchange, and the local broadcasts (one receive per
        // non-coordinator machine again).
        assert_eq!(plan.num_messages(), (88 - 6) + 6 * 5 + (88 - 6));
        // The full concatenation is what the redistribution carries.
        let total = MessageSize::from_bytes(per_node.as_bytes() * 88);
        let coordinator = grid.coordinator(ClusterId(0));
        let bcast_sends: Vec<_> = plan.forwards[coordinator.index()]
            .iter()
            .filter(|s| s.payload == total)
            .collect();
        assert!(!bcast_sends.is_empty());
        // The coordinator's redistribution waits for its local gather and all
        // 5 remote aggregates.
        for send in bcast_sends {
            assert!(send.after_arrivals >= 5);
        }
    }

    #[test]
    fn engine_events_build_the_same_plan_as_the_schedule() {
        use gridcast_core::ScheduleEngine;
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(2), MessageSize::from_mib(1));
        let mut engine = ScheduleEngine::new();
        let schedule = engine.schedule(&problem, HeuristicKind::EcefLaMax);
        let from_schedule = SendPlan::from_grid_schedule(&grid, &schedule);
        // Re-run so `events()` reflects this heuristic, then build straight
        // from the engine buffer.
        let _ = engine.makespan(&problem, HeuristicKind::EcefLaMax);
        let from_events = SendPlan::from_inter_cluster_events(&grid, problem.root, engine.events());
        assert_eq!(from_schedule, from_events);
        assert!(from_events.unreachable().is_empty());
    }
}
