//! Resolution of point-to-point parameters between individual machines.

use gridcast_plogp::{MessageSize, PLogP, Time};
use gridcast_topology::{ClusterId, Grid, IntraClusterParams, Node, NodeId};

/// A node-level view of the grid: given two machines, what are the pLogP
/// parameters of the path between them?
///
/// * machines in different clusters use the inter-cluster link of their clusters,
/// * machines in the same *modelled* cluster use the cluster's intra pLogP model,
/// * machines in the same *fixed-time* cluster (the Monte-Carlo topology mode,
///   where the paper never looks inside clusters) fall back to a nominal LAN
///   model so that node-level plans remain executable.
#[derive(Debug, Clone)]
pub struct NodeNetwork {
    nodes: Vec<Node>,
    grid: Grid,
    fallback_lan: PLogP,
    wan_concurrency: usize,
}

/// Default number of concurrent transfers an inter-cluster path sustains at full
/// per-flow rate before additional transfers serialise.
///
/// A single TCP stream across a 2006-era wide-area path is window/RTT limited
/// (that is what the measured pLogP gap captures), while the physical path has
/// several times that capacity — so a handful of concurrent site-to-site
/// transfers proceed unhindered and only larger fan-ins contend. This is the one
/// free parameter of the testbed substitution; EXPERIMENTS.md records its value.
pub const DEFAULT_WAN_CONCURRENCY: usize = 4;

impl NodeNetwork {
    /// Builds the node-level view of `grid`.
    pub fn new(grid: &Grid) -> Self {
        NodeNetwork {
            nodes: grid.enumerate_nodes(),
            grid: grid.clone(),
            fallback_lan: PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6),
            wan_concurrency: DEFAULT_WAN_CONCURRENCY,
        }
    }

    /// Overrides the number of concurrent inter-cluster transfers a cluster pair
    /// sustains before contention serialises them (must be at least 1).
    pub fn with_wan_concurrency(mut self, channels: usize) -> Self {
        assert!(channels >= 1, "a path has at least one channel");
        self.wan_concurrency = channels;
        self
    }

    /// Number of concurrent transfers an inter-cluster path sustains.
    pub fn wan_concurrency(&self) -> usize {
        self.wan_concurrency
    }

    /// Number of machines.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The machines, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The underlying grid.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// Overwrites one directed inter-cluster link of this network's grid copy
    /// with the link `grid` holds — the warm what-if runner's way of keeping a
    /// long-lived network in sync with a patched scratch grid instead of
    /// re-enumerating every node per scenario. Cluster layout must match; the
    /// node table is untouched (links never change membership).
    pub fn sync_link_from(&mut self, grid: &Grid, from: ClusterId, to: ClusterId) {
        self.grid.set_link(from, to, grid.link(from, to).clone());
    }

    /// The pLogP parameters governing a message from `from` to `to`.
    pub fn link(&self, from: NodeId, to: NodeId) -> &PLogP {
        let a = &self.nodes[from.index()];
        let b = &self.nodes[to.index()];
        if a.cluster == b.cluster {
            match &self.grid.cluster(a.cluster).intra {
                IntraClusterParams::Modelled { plogp } => plogp,
                IntraClusterParams::Fixed { .. } => &self.fallback_lan,
            }
        } else {
            self.grid.link(a.cluster, b.cluster)
        }
    }

    /// Gap of a message of size `m` on the path `from → to`.
    pub fn gap(&self, from: NodeId, to: NodeId, m: MessageSize) -> Time {
        self.link(from, to).gap(m)
    }

    /// Latency of the path `from → to`.
    pub fn latency(&self, from: NodeId, to: NodeId) -> Time {
        self.link(from, to).latency()
    }

    /// Full transfer time `g(m) + L` of the path `from → to`.
    pub fn transfer(&self, from: NodeId, to: NodeId, m: MessageSize) -> Time {
        self.link(from, to).point_to_point(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn grid5000_nodes_resolve_intra_and_inter_links() {
        let grid = grid5000_table3();
        let net = NodeNetwork::new(&grid);
        assert_eq!(net.num_nodes(), 88);
        let orsay_a0 = grid.coordinator(ClusterId(0));
        let orsay_a1 = NodeId(orsay_a0.0 + 1);
        let toulouse0 = grid.coordinator(ClusterId(5));
        // Intra-cluster latency ~47.56 µs; inter-cluster ~5.2 ms.
        assert!(net.latency(orsay_a0, orsay_a1) < Time::from_micros(100.0));
        assert!(net.latency(orsay_a0, toulouse0) > Time::from_millis(5.0));
        let m = MessageSize::from_mib(1);
        assert!(net.transfer(orsay_a0, toulouse0, m) > net.transfer(orsay_a0, orsay_a1, m));
    }

    #[test]
    fn fixed_time_clusters_use_the_fallback_lan_model() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(3, &mut ChaCha8Rng::seed_from_u64(5));
        let net = NodeNetwork::new(&grid);
        let c0_first = grid.coordinator(ClusterId(0));
        let c0_second = NodeId(c0_first.0 + 1);
        // Intra links of fixed-time clusters are the nominal LAN, far cheaper
        // than the Table 2 wide-area gaps (≥ 100 ms).
        let m = MessageSize::from_mib(1);
        assert!(net.transfer(c0_first, c0_second, m) < Time::from_millis(50.0));
        let c1_first = grid.coordinator(ClusterId(1));
        assert!(net.transfer(c0_first, c1_first, m) > Time::from_millis(100.0));
    }

    #[test]
    fn node_enumeration_matches_grid() {
        let grid = grid5000_table3();
        let net = NodeNetwork::new(&grid);
        assert_eq!(net.grid().num_clusters(), 6);
        assert_eq!(net.nodes()[0].cluster, ClusterId(0));
        assert_eq!(net.nodes()[87].cluster, ClusterId(5));
    }
}
