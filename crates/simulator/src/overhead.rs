//! Measuring the cost of computing a schedule.
//!
//! Section 7 of the paper points out that elaborate heuristics "may induce a
//! scheduling cost that can affect the performance of the MPI_Bcast operation":
//! the schedule is computed at the start of the collective call, so its wall
//! clock cost delays the first message. This module measures that cost for a
//! heuristic on a given problem instance so the simulator can add it to the
//! execution start time.

use gridcast_core::{BroadcastProblem, HeuristicKind};
use gridcast_plogp::Time;
use std::time::Instant;

/// Measures the wall-clock time `kind` needs to schedule `problem`, averaged
/// over `repetitions` runs (at least one).
pub fn measure_scheduling_overhead(
    kind: HeuristicKind,
    problem: &BroadcastProblem,
    repetitions: u32,
) -> Time {
    let repetitions = repetitions.max(1);
    let start = Instant::now();
    for _ in 0..repetitions {
        // The schedule itself is discarded; only the cost matters here.
        let schedule = kind.schedule(problem);
        std::hint::black_box(&schedule);
    }
    let elapsed = start.elapsed().as_secs_f64() / f64::from(repetitions);
    Time::from_secs(elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{grid5000_table3, ClusterId};

    #[test]
    fn overhead_is_positive_and_small_for_six_clusters() {
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        for kind in HeuristicKind::all() {
            let overhead = measure_scheduling_overhead(kind, &problem, 5);
            assert!(overhead > Time::ZERO, "{kind}");
            // Scheduling 6 clusters must take far less than a wide-area gap.
            assert!(
                overhead < Time::from_millis(100.0),
                "{kind} took {overhead} to schedule 6 clusters"
            );
        }
    }

    #[test]
    fn flat_tree_overhead_does_not_exceed_lookahead_heuristics_by_much() {
        // The flat tree requires no optimisation at all; its scheduling cost is
        // the floor every other heuristic is compared against in Section 7.
        let grid = grid5000_table3();
        let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        let flat = measure_scheduling_overhead(HeuristicKind::FlatTree, &problem, 20);
        assert!(flat < Time::from_millis(10.0));
    }
}
