//! Concurrent what-if evaluation: thousands of perturbed scenarios against
//! one shared, read-only grid.
//!
//! The paper's value proposition is *predictive* — pick the best grid-aware
//! schedule before running it — which makes the reproduction's currency the
//! number of what-if evaluations per second. A [`WhatIfRunner`] owns a
//! reference to one immutable [`Grid`] and fans a batch of [`Scenario`]s out
//! over a scoped worker pool; every worker carries its own
//! [`ScheduleEngine`] (engine buffers are mutable scratch; the shared inputs
//! are `Sync`-clean read paths), evaluates its scenarios independently, and
//! writes each [`WhatIfReport`] into the slot of its scenario index.
//!
//! Because every scenario is a pure function of `(grid, scenario)` and the
//! aggregation is **ordered by scenario index**, the result is bit-identical
//! for any worker-thread count — the same contract as
//! [`gridcast_core::schedule_all_sharded`], extended from heuristics to whole
//! scenario sweeps. The CI what-if bench holds the runner to it.
//!
//! A scenario's evaluation is the full predict-then-verify loop:
//!
//! 1. perturb the grid (scaled link capacities, a degraded site uplink, an
//!    alternate root, a cluster dropped from relay duty) — a cheap pure copy
//!    via [`Grid::map_links`],
//! 2. predict the makespan of every candidate heuristic with the engine's
//!    allocation-free batched entry point,
//! 3. pick the best (smallest makespan, ties to the earlier heuristic in the
//!    runner's list — deterministic), and
//! 4. *execute* the winning schedule node-level on the unified discrete-event
//!    core (trace dropped through [`NullSink`]) so the report carries a
//!    simulated completion, not just the model's claim. A scenario carrying a
//!    [`FaultPlan`] executes under
//!    [`execute_plan_under_faults`] instead — with the runner's
//!    [`RetryPolicy`] — and the report additionally carries the retry count
//!    and the undelivered-edge count
//!    (an [`Outcome::Incomplete`] run reports an
//!    infinite simulated completion, loudly). Fault draws are a pure
//!    function of the scenario's seed, so the bit-identical-for-any-thread-
//!    count contract extends to faulty sweeps unchanged; [`fault_sweep`]
//!    builds the loss-rate × crash-set grid of such scenarios.

use crate::engine::execute_plan_with_sink;
use crate::faults::{execute_plan_under_faults, FaultPlan, NodeCrash, RetryPolicy};
use crate::network::NodeNetwork;
use crate::outcome::{Outcome, SimulationOutcome};
use crate::plan::SendPlan;
use crate::trace::NullSink;
use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};

/// Gap scale applied by [`Perturbation::DropRelay`] to a cluster's outgoing
/// links: large enough that no heuristic ever relays through the cluster
/// (every direct alternative is cheaper by orders of magnitude), finite so
/// the engine's no-NaN and no-∞-arithmetic invariants hold throughout.
pub const DROP_RELAY_FACTOR: f64 = 1e6;

/// One way a scenario deviates from the baseline grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Multiply every inter-cluster link's gap by `factor` (`> 1` = a slower
    /// grid, `< 1` = a faster one). Latencies are unchanged.
    ScaleAllLinks {
        /// Gap multiplier, positive and finite.
        factor: f64,
    },
    /// Multiply the **outgoing** links of one cluster by `factor` — a
    /// degraded site uplink (the cluster still receives at full rate).
    DegradeUplink {
        /// The cluster whose uplink degrades.
        cluster: ClusterId,
        /// Gap multiplier, positive and finite.
        factor: f64,
    },
    /// Root the broadcast at a different cluster.
    AlternateRoot {
        /// The replacement root.
        root: ClusterId,
    },
    /// Remove a cluster from relay duty: its outgoing links become
    /// [`DROP_RELAY_FACTOR`] times slower, so no gap-aware schedule forwards
    /// through it while it remains reachable at full rate. (FEF scores edges
    /// by latency alone and stays blind to the penalty by design — its
    /// what-if report then carries the inflated makespan, which is exactly
    /// the comparison the sweep exists to surface.)
    DropRelay {
        /// The cluster excluded from relaying.
        cluster: ClusterId,
    },
}

/// A what-if scenario: a list of perturbations applied in order to the
/// runner's baseline grid and root, plus an optional fault plan for the
/// execution leg. The empty list is the baseline itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// The perturbations, applied left to right.
    pub perturbations: Vec<Perturbation>,
    /// Faults injected while *executing* the winning schedule (the
    /// prediction leg stays fault-free — the engine prices the model, the
    /// injector prices reality).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// The unperturbed baseline.
    pub fn baseline() -> Self {
        Scenario::default()
    }

    /// A single-perturbation scenario.
    pub fn one(perturbation: Perturbation) -> Self {
        Scenario {
            perturbations: vec![perturbation],
            ..Scenario::default()
        }
    }

    /// Attaches a fault plan to the execution leg of this scenario.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Applies the scenario to `grid`/`root`, returning the perturbed pair.
    pub fn apply(&self, grid: &Grid, root: ClusterId) -> (Grid, ClusterId) {
        // `map_links` already yields a fresh grid, so the baseline copy is
        // only made when no perturbation touches the links at all.
        let mut perturbed: Option<Grid> = None;
        let mut root = root;
        // Scale the outgoing gaps of `cluster` (every link when `None`).
        let scaled = |base: &Grid, cluster: Option<ClusterId>, factor: f64| {
            base.map_links(|from, _, link| {
                if cluster.is_none_or(|c| from == c) {
                    link.with_scaled_gap(factor)
                } else {
                    link.clone()
                }
            })
        };
        for p in &self.perturbations {
            let base = perturbed.as_ref().unwrap_or(grid);
            match *p {
                Perturbation::ScaleAllLinks { factor } => {
                    perturbed = Some(scaled(base, None, factor));
                }
                Perturbation::DegradeUplink { cluster, factor } => {
                    perturbed = Some(scaled(base, Some(cluster), factor));
                }
                Perturbation::AlternateRoot { root: r } => root = r,
                Perturbation::DropRelay { cluster } => {
                    perturbed = Some(scaled(base, Some(cluster), DROP_RELAY_FACTOR));
                }
            }
        }
        (perturbed.unwrap_or_else(|| grid.clone()), root)
    }
}

/// The evaluation of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// Index of the scenario in the batch handed to [`WhatIfRunner::run`]
    /// (reports come back in this order, whatever the thread count).
    pub scenario: usize,
    /// Predicted makespan of every candidate heuristic, in the runner's
    /// `kinds` order.
    pub makespans: Vec<Time>,
    /// The winning heuristic (smallest predicted makespan; ties break to the
    /// earlier entry of the runner's `kinds`).
    pub best: HeuristicKind,
    /// The winner's predicted makespan.
    pub predicted: Time,
    /// Completion of the winner's schedule executed node-level on the
    /// unified discrete-event core. Infinite when a fault scenario could not
    /// deliver everywhere (the loud `Incomplete` signal).
    pub simulated: Time,
    /// Events the simulation processed (one per delivered message).
    pub events: usize,
    /// Retransmissions the ack/retry protocol issued (0 for fault-free
    /// scenarios).
    pub retries: usize,
    /// Plan edges never delivered (0 for fault-free scenarios and for every
    /// complete faulty run).
    pub undelivered: usize,
}

/// A scoped worker pool running what-if scenarios against one shared,
/// read-only grid. See the [module docs](self) for the evaluation pipeline
/// and the determinism contract.
#[derive(Debug, Clone)]
pub struct WhatIfRunner<'a> {
    grid: &'a Grid,
    message: MessageSize,
    root: ClusterId,
    kinds: Vec<HeuristicKind>,
    threads: usize,
    retry: RetryPolicy,
}

impl<'a> WhatIfRunner<'a> {
    /// A runner over `grid`, broadcasting `message` from `root`, evaluating
    /// every built-in heuristic, with one worker per available core.
    pub fn new(grid: &'a Grid, message: MessageSize, root: ClusterId) -> Self {
        WhatIfRunner {
            grid,
            message,
            root,
            kinds: HeuristicKind::all().to_vec(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the ack/retry protocol used by fault scenarios (scenarios
    /// without a [`FaultPlan`] never retry).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the worker count (at least 1). The results are bit-identical
    /// for any value — this knob trades wall-clock for cores, nothing else.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "the pool needs at least one worker");
        self.threads = threads;
        self
    }

    /// Overrides the candidate heuristics (at least one; order defines the
    /// tie-break and the [`WhatIfReport::makespans`] layout).
    pub fn with_kinds(mut self, kinds: &[HeuristicKind]) -> Self {
        assert!(!kinds.is_empty(), "the runner needs at least one heuristic");
        self.kinds = kinds.to_vec();
        self
    }

    /// The candidate heuristics, in report order.
    pub fn kinds(&self) -> &[HeuristicKind] {
        &self.kinds
    }

    /// Evaluates every scenario, fanning the batch out over the worker pool.
    /// Reports come back ordered by scenario index and bit-identical for any
    /// thread count.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<WhatIfReport> {
        let mut out: Vec<Option<WhatIfReport>> = (0..scenarios.len()).map(|_| None).collect();
        if scenarios.is_empty() {
            return Vec::new();
        }
        let chunk = scenarios.len().div_ceil(self.threads.min(scenarios.len()));
        std::thread::scope(|scope| {
            for (chunk_index, (scenario_chunk, out_chunk)) in scenarios
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
            {
                let base = chunk_index * chunk;
                scope.spawn(move || {
                    let mut engine = ScheduleEngine::new();
                    let mut makespans = Vec::new();
                    for (i, (scenario, slot)) in
                        scenario_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                    {
                        *slot =
                            Some(self.evaluate(&mut engine, &mut makespans, base + i, scenario));
                    }
                });
            }
        });
        out.into_iter()
            .map(|r| r.expect("every scenario was evaluated by its shard"))
            .collect()
    }

    /// Evaluates one scenario with a caller-owned engine (the worker loop;
    /// also the convenient sequential entry point for tests and figures).
    pub fn evaluate(
        &self,
        engine: &mut ScheduleEngine,
        makespans: &mut Vec<Time>,
        index: usize,
        scenario: &Scenario,
    ) -> WhatIfReport {
        let (grid, root) = scenario.apply(self.grid, self.root);
        let problem = BroadcastProblem::from_grid(&grid, root, self.message);
        engine.makespans_into(&problem, &self.kinds, makespans);
        let (best_slot, predicted) = makespans
            .iter()
            .copied()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.cmp(b).then(i.cmp(j)))
            .expect("at least one heuristic");
        let best = self.kinds[best_slot];
        let schedule = engine.schedule(&problem, best);
        let (outcome, retries, undelivered) = match &scenario.faults {
            None => (self.simulate(&grid, &schedule), 0, 0),
            Some(faults) => {
                let network = NodeNetwork::new(&grid);
                let plan = SendPlan::from_grid_schedule(&grid, &schedule);
                let result = execute_plan_under_faults(
                    &network,
                    &plan,
                    self.message,
                    Time::ZERO,
                    faults,
                    &self.retry,
                    &mut NullSink,
                )
                .expect("the monotone-clock invariant holds under faults");
                let retries = result.stats().retries;
                let undelivered = match &result {
                    Outcome::Complete(_) => 0,
                    Outcome::Incomplete { undelivered, .. } => undelivered.len(),
                };
                let sim = match result {
                    Outcome::Complete(sim) | Outcome::Incomplete { partial: sim, .. } => sim,
                };
                (sim.outcome, retries, undelivered)
            }
        };
        WhatIfReport {
            scenario: index,
            makespans: makespans.clone(),
            best,
            predicted,
            simulated: outcome.completion,
            events: outcome.events_processed,
            retries,
            undelivered,
        }
    }

    fn simulate(&self, grid: &Grid, schedule: &gridcast_core::Schedule) -> SimulationOutcome {
        let network = NodeNetwork::new(grid);
        let plan = SendPlan::from_grid_schedule(grid, schedule);
        execute_plan_with_sink(&network, &plan, self.message, Time::ZERO, &mut NullSink)
    }
}

/// Builds the fault-sweep what-if dimension: the cross product of loss rates
/// and crash sets over the unperturbed baseline grid, every cell carrying a
/// [`FaultPlan`] whose seed is derived deterministically from `seed` and the
/// cell index. Feed the result to [`WhatIfRunner::run`] (typically with a
/// larger retry budget via [`WhatIfRunner::with_retry`]) and compare each
/// cell's `simulated` against the fault-free baseline for the makespan
/// inflation, `undelivered` for the completion-or-`Incomplete` invariant.
pub fn fault_sweep(seed: u64, loss_rates: &[f64], crash_sets: &[Vec<NodeCrash>]) -> Vec<Scenario> {
    let no_crashes: [Vec<NodeCrash>; 1] = [Vec::new()];
    let sets: &[Vec<NodeCrash>] = if crash_sets.is_empty() {
        &no_crashes
    } else {
        crash_sets
    };
    let mut scenarios = Vec::with_capacity(loss_rates.len() * sets.len());
    for (i, &loss) in loss_rates.iter().enumerate() {
        for (j, set) in sets.iter().enumerate() {
            let cell = (i * sets.len() + j) as u64;
            let mut faults = FaultPlan::new(seed ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if loss > 0.0 {
                faults = faults.with_loss(loss);
            }
            for &crash in set {
                faults = faults.with_crash(crash);
            }
            scenarios.push(Scenario::baseline().with_faults(faults));
        }
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scenario_mix(grid: &Grid, count: usize) -> Vec<Scenario> {
        let n = grid.num_clusters();
        (0..count)
            .map(|i| match i % 5 {
                0 => Scenario::baseline(),
                1 => Scenario::one(Perturbation::ScaleAllLinks {
                    factor: 0.5 + 0.25 * (i % 8) as f64,
                }),
                2 => Scenario::one(Perturbation::DegradeUplink {
                    cluster: ClusterId(i % n),
                    factor: 2.0 + (i % 4) as f64,
                }),
                3 => Scenario::one(Perturbation::AlternateRoot {
                    root: ClusterId(i % n),
                }),
                _ => Scenario::one(Perturbation::DropRelay {
                    cluster: ClusterId(1 + i % (n - 1)),
                }),
            })
            .collect()
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(12, &mut ChaCha8Rng::seed_from_u64(7));
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let scenarios = scenario_mix(&grid, 41);
        let sequential = runner.clone().with_threads(1).run(&scenarios);
        let parallel = runner.with_threads(4).run(&scenarios);
        assert_eq!(sequential.len(), scenarios.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.best, b.best);
            assert_eq!(a.events, b.events);
            let bits =
                |ts: &[Time]| -> Vec<u64> { ts.iter().map(|t| t.as_secs().to_bits()).collect() };
            assert_eq!(bits(&a.makespans), bits(&b.makespans));
            assert_eq!(
                a.predicted.as_secs().to_bits(),
                b.predicted.as_secs().to_bits()
            );
            assert_eq!(
                a.simulated.as_secs().to_bits(),
                b.simulated.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn baseline_report_is_consistent() {
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let reports = runner.with_threads(2).run(&[Scenario::baseline()]);
        let report = &reports[0];
        assert_eq!(report.scenario, 0);
        assert_eq!(report.makespans.len(), runner_kinds_len());
        let min = report.makespans.iter().copied().min().unwrap();
        assert_eq!(report.predicted, min);
        assert!(report.simulated.is_finite());
        assert_eq!(report.events, 87);
    }

    fn runner_kinds_len() -> usize {
        HeuristicKind::all().len()
    }

    /// A scenario mix with fault plans interleaved: perturbed grids, lossy
    /// executions, crashes — the storm the determinism contract must survive.
    fn faulty_scenario_mix(grid: &Grid, count: usize) -> Vec<Scenario> {
        let n = grid.num_clusters();
        scenario_mix(grid, count)
            .into_iter()
            .enumerate()
            .map(|(i, s)| match i % 3 {
                0 => s,
                1 => s.with_faults(FaultPlan::new(i as u64).with_loss(0.15)),
                _ => s.with_faults(
                    FaultPlan::new(i as u64 ^ 0xFEED)
                        .with_loss(0.05)
                        .with_duplication(0.1)
                        .with_crash(NodeCrash {
                            node: gridcast_topology::NodeId((1 + i % (4 * n - 1)) as u32),
                            at: Time::from_millis(5.0 * (1 + i % 7) as f64),
                        }),
                ),
            })
            .collect()
    }

    #[test]
    fn fault_reports_are_bit_identical_across_thread_counts() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(9, &mut ChaCha8Rng::seed_from_u64(13));
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let scenarios = faulty_scenario_mix(&grid, 33);
        let sequential = runner.clone().with_threads(1).run(&scenarios);
        let parallel = runner.with_threads(5).run(&scenarios);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.retries, b.retries);
            assert_eq!(a.undelivered, b.undelivered);
            assert_eq!(a.events, b.events);
            assert_eq!(
                a.simulated.as_secs().to_bits(),
                b.simulated.as_secs().to_bits()
            );
        }
        // The mix genuinely exercised the protocol: some scenario retried.
        assert!(sequential.iter().any(|r| r.retries > 0));
    }

    #[test]
    fn fault_sweep_cells_complete_or_report_incomplete_loudly() {
        let grid = grid5000_table3();
        let crash_sets = vec![
            Vec::new(),
            vec![NodeCrash {
                node: gridcast_topology::NodeId(9),
                at: Time::from_millis(10.0),
            }],
        ];
        let scenarios = fault_sweep(0xBAD5EED, &[0.0, 0.05, 0.1, 0.2], &crash_sets);
        assert_eq!(scenarios.len(), 8);
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_threads(2)
            .with_retry(RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            });
        for report in runner.run(&scenarios) {
            // The acceptance invariant: under loss p <= 0.2 with retries,
            // every cell either completes with a finite (inflated) makespan
            // or says *why* it could not — never a silent hang.
            if report.simulated.is_finite() {
                assert_eq!(report.undelivered, 0);
                assert!(report.simulated >= report.predicted * 0.99);
            } else {
                assert!(report.undelivered > 0, "incomplete runs name their edges");
            }
        }
    }

    #[test]
    fn degraded_uplink_slows_the_flat_tree_prediction() {
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_kinds(&[HeuristicKind::FlatTree])
            .with_threads(1);
        let reports = runner.run(&[
            Scenario::baseline(),
            Scenario::one(Perturbation::DegradeUplink {
                cluster: ClusterId(0),
                factor: 8.0,
            }),
        ]);
        // The flat tree sends everything over the degraded root uplink: the
        // prediction must get strictly worse.
        assert!(reports[1].predicted > reports[0].predicted);
        assert!(reports[1].simulated > reports[0].simulated);
    }

    #[test]
    fn dropped_relay_never_forwards() {
        let grid = grid5000_table3();
        let dropped = ClusterId(2);
        let (perturbed, root) =
            Scenario::one(Perturbation::DropRelay { cluster: dropped }).apply(&grid, ClusterId(0));
        assert_eq!(root, ClusterId(0));
        let problem = BroadcastProblem::from_grid(&perturbed, root, MessageSize::from_mib(1));
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let schedule = engine.schedule(&problem, kind);
            // FEF scores by latency alone and cannot see the gap penalty;
            // every gap-aware heuristic must route around the dropped relay.
            if kind != HeuristicKind::Fef {
                assert!(
                    schedule.events.iter().all(|e| e.sender != dropped),
                    "{kind} relayed through the dropped cluster"
                );
            }
            assert!(schedule.makespan().is_finite());
        }
    }

    #[test]
    fn alternate_root_moves_the_source() {
        let grid = grid5000_table3();
        let scenario = Scenario::one(Perturbation::AlternateRoot { root: ClusterId(4) });
        let (perturbed, root) = scenario.apply(&grid, ClusterId(0));
        assert_eq!(root, ClusterId(4));
        assert_eq!(perturbed, grid);
    }

    #[test]
    fn scale_all_links_scales_gaps_but_not_latency() {
        let grid = grid5000_table3();
        let (scaled, _) =
            Scenario::one(Perturbation::ScaleAllLinks { factor: 2.0 }).apply(&grid, ClusterId(0));
        let m = MessageSize::from_mib(1);
        let a = ClusterId(0);
        let b = ClusterId(3);
        assert_eq!(scaled.gap(a, b, m), grid.gap(a, b, m) * 2.0);
        assert_eq!(scaled.latency(a, b), grid.latency(a, b));
    }
}
