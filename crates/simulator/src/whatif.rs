//! Concurrent what-if evaluation: thousands of perturbed scenarios against
//! one shared, read-only grid.
//!
//! The paper's value proposition is *predictive* — pick the best grid-aware
//! schedule before running it — which makes the reproduction's currency the
//! number of what-if evaluations per second. A [`WhatIfRunner`] owns a
//! reference to one immutable [`Grid`] and fans a batch of [`Scenario`]s out
//! over a scoped worker pool; every worker carries its own
//! [`ScheduleEngine`] (engine buffers are mutable scratch; the shared inputs
//! are `Sync`-clean read paths), evaluates its scenarios independently, and
//! writes each [`WhatIfReport`] into the slot of its scenario index.
//!
//! Because every scenario is a pure function of `(grid, scenario)` and the
//! aggregation is **ordered by scenario index**, the result is bit-identical
//! for any worker-thread count — the same contract as
//! [`gridcast_core::schedule_all_sharded`], extended from heuristics to whole
//! scenario sweeps. The CI what-if bench holds the runner to it.
//!
//! A scenario's evaluation is the full predict-then-verify loop:
//!
//! 1. perturb the grid (scaled link capacities, a degraded site uplink, an
//!    alternate root, a cluster dropped from relay duty) — a cheap pure copy
//!    via [`Grid::map_links`],
//! 2. predict the makespan of every candidate heuristic with the engine's
//!    allocation-free batched entry point,
//! 3. pick the best (smallest makespan, ties to the earlier heuristic in the
//!    runner's list — deterministic), and
//! 4. *execute* the winning schedule node-level on the unified discrete-event
//!    core (trace dropped through [`NullSink`]) so the report carries a
//!    simulated completion, not just the model's claim. A scenario carrying a
//!    [`FaultPlan`] executes under
//!    [`execute_plan_under_faults`] instead — with the runner's
//!    [`RetryPolicy`] — and the report additionally carries the retry count
//!    and the undelivered-edge count
//!    (an [`Outcome::Incomplete`] run reports an
//!    infinite simulated completion, loudly). Fault draws are a pure
//!    function of the scenario's seed, so the bit-identical-for-any-thread-
//!    count contract extends to faulty sweeps unchanged; [`fault_sweep`]
//!    builds the loss-rate × crash-set grid of such scenarios.

use crate::engine::execute_plan_with_sink;
use crate::error::SimError;
use crate::faults::{execute_plan_under_faults, CapacityWindow, FaultPlan, NodeCrash, RetryPolicy};
use crate::network::NodeNetwork;
use crate::outcome::{Outcome, SimulationOutcome};
use crate::plan::SendPlan;
use crate::trace::NullSink;
use gridcast_core::{BroadcastProblem, CommitLog, HeuristicKind, ScheduleEngine};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};
use std::borrow::Cow;

// The perturbation vocabulary lives in the core crate since the engine's
// commit-log replay reasons about perturbations directly; the simulator
// re-exports it unchanged so existing callers keep compiling.
pub use gridcast_core::{Perturbation, ReplayDelta, DROP_RELAY_FACTOR};

/// A what-if scenario: a list of perturbations applied in order to the
/// runner's baseline grid and root, plus an optional fault plan for the
/// execution leg. The empty list is the baseline itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Scenario {
    /// The perturbations, applied left to right.
    pub perturbations: Vec<Perturbation>,
    /// Faults injected while *executing* the winning schedule (the
    /// prediction leg stays fault-free — the engine prices the model, the
    /// injector prices reality).
    pub faults: Option<FaultPlan>,
}

impl Scenario {
    /// The unperturbed baseline.
    pub fn baseline() -> Self {
        Scenario::default()
    }

    /// A single-perturbation scenario.
    pub fn one(perturbation: Perturbation) -> Self {
        Scenario {
            perturbations: vec![perturbation],
            ..Scenario::default()
        }
    }

    /// Attaches a fault plan to the execution leg of this scenario.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Applies the scenario to `grid`/`root`, returning the perturbed pair.
    /// [`Perturbation::TimeVaryingCapacity`] leaves the static model alone —
    /// it surfaces on the execution leg as a fault-injector capacity window.
    pub fn apply(&self, grid: &Grid, root: ClusterId) -> (Grid, ClusterId) {
        // `Perturbation::apply` already yields a fresh grid, so the baseline
        // copy is only made when no perturbation touches the links at all.
        let mut perturbed: Option<Grid> = None;
        let mut root = root;
        for p in &self.perturbations {
            let base = perturbed.as_ref().unwrap_or(grid);
            if let Some(g) = p.apply(base, &mut root) {
                perturbed = Some(g);
            }
        }
        (perturbed.unwrap_or_else(|| grid.clone()), root)
    }
}

/// The evaluation of one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct WhatIfReport {
    /// Index of the scenario in the batch handed to [`WhatIfRunner::run`]
    /// (reports come back in this order, whatever the thread count).
    pub scenario: usize,
    /// Predicted makespan of every candidate heuristic, in the runner's
    /// `kinds` order.
    pub makespans: Vec<Time>,
    /// The winning heuristic (smallest predicted makespan; ties break to the
    /// earlier entry of the runner's `kinds`).
    pub best: HeuristicKind,
    /// The winner's predicted makespan.
    pub predicted: Time,
    /// Completion of the winner's schedule executed node-level on the
    /// unified discrete-event core. Infinite when a fault scenario could not
    /// deliver everywhere (the loud `Incomplete` signal).
    pub simulated: Time,
    /// Events the simulation processed (one per delivered message).
    pub events: usize,
    /// Retransmissions the ack/retry protocol issued (0 for fault-free
    /// scenarios).
    pub retries: usize,
    /// Plan edges never delivered (0 for fault-free scenarios and for every
    /// complete faulty run).
    pub undelivered: usize,
}

/// A scoped worker pool running what-if scenarios against one shared,
/// read-only grid. See the [module docs](self) for the evaluation pipeline
/// and the determinism contract.
#[derive(Debug, Clone)]
pub struct WhatIfRunner<'a> {
    grid: &'a Grid,
    message: MessageSize,
    root: ClusterId,
    kinds: Vec<HeuristicKind>,
    threads: usize,
    retry: RetryPolicy,
    warm: bool,
}

/// Warm-start replay counters summed over every worker engine of one sweep —
/// the telemetry leg of `BENCH_whatif.json`. The counters mirror
/// [`gridcast_core::EngineTelemetry`] and stay all-zero when the core's
/// `telemetry` feature is compiled out or the runner is cold.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStartTelemetry {
    /// Commits replayed verbatim from a baseline commit log.
    pub replayed_commits: u64,
    /// Commits re-verified against the perturbed problem and kept.
    pub repaired_commits: u64,
    /// Commits produced by full selection rounds (divergent suffixes and
    /// cold fallbacks).
    pub recomputed_commits: u64,
}

impl WarmStartTelemetry {
    /// Element-wise sum of two counter sets.
    pub fn merge(self, other: WarmStartTelemetry) -> WarmStartTelemetry {
        WarmStartTelemetry {
            replayed_commits: self.replayed_commits + other.replayed_commits,
            repaired_commits: self.repaired_commits + other.repaired_commits,
            recomputed_commits: self.recomputed_commits + other.recomputed_commits,
        }
    }
}

/// Per-worker warm-start state: the pristine baseline problem, one commit
/// log per candidate heuristic, and the scratch grid / problem / node
/// network the worker patches in place for each scenario and restores from
/// the baseline afterwards — `O(touched links)` per scenario instead of a
/// fresh `O(n²)` world.
struct WarmState {
    baseline: BroadcastProblem,
    problem: BroadcastProblem,
    logs: Vec<CommitLog>,
    scratch: Grid,
    network: NodeNetwork,
    patched: Vec<(ClusterId, ClusterId)>,
}

/// The winning slot of a candidate-makespan vector: smallest makespan, ties
/// to the earlier slot. An empty candidate set has no winner — that is a
/// structured [`SimError::NoCandidates`], not a `min().unwrap()` panic.
fn best_candidate(makespans: &[Time]) -> Result<(usize, Time), SimError> {
    makespans
        .iter()
        .copied()
        .enumerate()
        .min_by(|(i, a), (j, b)| a.cmp(b).then(i.cmp(j)))
        .ok_or(SimError::NoCandidates)
}

/// Whether the warm evaluation path handles this scenario. Grid-wide scaling
/// dirties every sender row *and* patches `O(n²)` links (the bookkeeping
/// costs more than the replay saves), and an alternate root makes the
/// baseline log incompatible by construction — both take the cold path.
fn warm_eligible(scenario: &Scenario) -> bool {
    scenario.perturbations.iter().all(|p| {
        !matches!(
            p,
            Perturbation::ScaleAllLinks { .. } | Perturbation::AlternateRoot { .. }
        )
    })
}

impl<'a> WhatIfRunner<'a> {
    /// A runner over `grid`, broadcasting `message` from `root`, evaluating
    /// every built-in heuristic, with one worker per available core.
    pub fn new(grid: &'a Grid, message: MessageSize, root: ClusterId) -> Self {
        WhatIfRunner {
            grid,
            message,
            root,
            kinds: HeuristicKind::all().to_vec(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            retry: RetryPolicy::default(),
            warm: false,
        }
    }

    /// Toggles warm-start evaluation: each worker schedules the baseline
    /// once with commit logging, then evaluates every scenario by replaying
    /// the baseline logs under the scenario's [`ReplayDelta`] instead of
    /// scheduling from scratch. The engine's replay contract makes the
    /// reports **bit-identical** to the cold runner's, for every policy and
    /// thread count — this knob trades nothing but wall-clock.
    pub fn with_warm_start(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }

    /// Overrides the ack/retry protocol used by fault scenarios (scenarios
    /// without a [`FaultPlan`] never retry).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Overrides the worker count (at least 1). The results are bit-identical
    /// for any value — this knob trades wall-clock for cores, nothing else.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads >= 1, "the pool needs at least one worker");
        self.threads = threads;
        self
    }

    /// Overrides the candidate heuristics (order defines the tie-break and
    /// the [`WhatIfReport::makespans`] layout). An empty list is accepted
    /// here but cannot be evaluated: the fallible entry points return
    /// [`SimError::NoCandidates`] and the infallible ones panic with it.
    pub fn with_kinds(mut self, kinds: &[HeuristicKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// The candidate heuristics, in report order.
    pub fn kinds(&self) -> &[HeuristicKind] {
        &self.kinds
    }

    /// Evaluates every scenario, fanning the batch out over the worker pool.
    /// Reports come back ordered by scenario index and bit-identical for any
    /// thread count — and, via the replay contract, for warm and cold
    /// runners alike.
    pub fn run(&self, scenarios: &[Scenario]) -> Vec<WhatIfReport> {
        self.run_with_telemetry(scenarios).0
    }

    /// Fallible twin of [`WhatIfRunner::run`]: a mis-configured sweep (no
    /// candidate heuristics) comes back as a structured [`SimError`] instead
    /// of a panic — the entry point for long-running callers such as the
    /// serving daemon, which must reject a bad request and keep serving.
    pub fn try_run(&self, scenarios: &[Scenario]) -> Result<Vec<WhatIfReport>, SimError> {
        Ok(self.try_run_with_telemetry(scenarios)?.0)
    }

    /// Like [`WhatIfRunner::run`], additionally returning the summed
    /// warm-start telemetry of every worker engine (all zeros when the
    /// runner is cold or the core's `telemetry` feature is off).
    pub fn run_with_telemetry(
        &self,
        scenarios: &[Scenario],
    ) -> (Vec<WhatIfReport>, WarmStartTelemetry) {
        self.try_run_with_telemetry(scenarios)
            .unwrap_or_else(|e| panic!("what-if sweep failed: {e}"))
    }

    /// Fallible twin of [`WhatIfRunner::run_with_telemetry`]. On error the
    /// remaining scenarios of each shard are skipped and the first error in
    /// scenario order is returned.
    pub fn try_run_with_telemetry(
        &self,
        scenarios: &[Scenario],
    ) -> Result<(Vec<WhatIfReport>, WarmStartTelemetry), SimError> {
        let mut out: Vec<Option<Result<WhatIfReport, SimError>>> =
            (0..scenarios.len()).map(|_| None).collect();
        if scenarios.is_empty() {
            return Ok((Vec::new(), WarmStartTelemetry::default()));
        }
        let chunk = scenarios.len().div_ceil(self.threads.min(scenarios.len()));
        let mut counters = vec![WarmStartTelemetry::default(); scenarios.len().div_ceil(chunk)];
        std::thread::scope(|scope| {
            for ((chunk_index, (scenario_chunk, out_chunk)), counter) in scenarios
                .chunks(chunk)
                .zip(out.chunks_mut(chunk))
                .enumerate()
                .zip(counters.iter_mut())
            {
                let base = chunk_index * chunk;
                scope.spawn(move || {
                    let mut engine = ScheduleEngine::new();
                    let mut makespans = Vec::new();
                    let mut warm = if self.warm {
                        Some(self.warm_state(&mut engine))
                    } else {
                        None
                    };
                    // The baseline logging run is setup, not sweep work.
                    engine.take_telemetry();
                    for (i, (scenario, slot)) in
                        scenario_chunk.iter().zip(out_chunk.iter_mut()).enumerate()
                    {
                        let report = match warm.as_mut() {
                            Some(w) if warm_eligible(scenario) => self.try_evaluate_warm(
                                &mut engine,
                                w,
                                &mut makespans,
                                base + i,
                                scenario,
                            ),
                            _ => self.try_evaluate(&mut engine, &mut makespans, base + i, scenario),
                        };
                        let failed = report.is_err();
                        *slot = Some(report);
                        if failed {
                            // Skip the rest of the shard: the caller gets the
                            // first error in scenario order, not a panic.
                            break;
                        }
                    }
                    let t = engine.take_telemetry();
                    *counter = WarmStartTelemetry {
                        replayed_commits: t.replayed_commits,
                        repaired_commits: t.repaired_commits,
                        recomputed_commits: t.recomputed_commits,
                    };
                });
            }
        });
        let telemetry = counters
            .into_iter()
            .fold(WarmStartTelemetry::default(), WarmStartTelemetry::merge);
        let mut reports = Vec::with_capacity(out.len());
        for slot in out {
            match slot {
                Some(Ok(report)) => reports.push(report),
                Some(Err(e)) => return Err(e),
                // Only reachable behind an erroring slot of the same shard,
                // and the error above returns first.
                None => return Err(SimError::NoCandidates),
            }
        }
        Ok((reports, telemetry))
    }

    /// Evaluates one scenario with a caller-owned engine (the worker loop;
    /// also the convenient sequential entry point for tests and figures).
    /// Panics on a mis-configured runner — [`WhatIfRunner::try_evaluate`] is
    /// the fallible twin.
    pub fn evaluate(
        &self,
        engine: &mut ScheduleEngine,
        makespans: &mut Vec<Time>,
        index: usize,
        scenario: &Scenario,
    ) -> WhatIfReport {
        self.try_evaluate(engine, makespans, index, scenario)
            .unwrap_or_else(|e| panic!("what-if evaluation failed: {e}"))
    }

    /// Fallible twin of [`WhatIfRunner::evaluate`].
    pub fn try_evaluate(
        &self,
        engine: &mut ScheduleEngine,
        makespans: &mut Vec<Time>,
        index: usize,
        scenario: &Scenario,
    ) -> Result<WhatIfReport, SimError> {
        let (grid, root) = scenario.apply(self.grid, self.root);
        let problem = BroadcastProblem::from_grid(&grid, root, self.message);
        engine.makespans_into(&problem, &self.kinds, makespans);
        let (best_slot, predicted) = best_candidate(makespans)?;
        let best = self.kinds[best_slot];
        let schedule = engine.schedule(&problem, best);
        let (outcome, retries, undelivered) = match self.effective_faults(scenario) {
            None => (self.simulate(&grid, &schedule), 0, 0),
            Some(faults) => {
                let network = NodeNetwork::new(&grid);
                let plan = SendPlan::from_grid_schedule(&grid, &schedule);
                self.execute_faulty(&network, &plan, &faults)
            }
        };
        Ok(WhatIfReport {
            scenario: index,
            makespans: makespans.clone(),
            best,
            predicted,
            simulated: outcome.completion,
            events: outcome.events_processed,
            retries,
            undelivered,
        })
    }

    /// Builds this worker's warm-start state: the baseline problem, one
    /// commit log per candidate heuristic, and scratch copies of the grid,
    /// problem and node network to patch in place.
    fn warm_state(&self, engine: &mut ScheduleEngine) -> WarmState {
        let baseline = BroadcastProblem::from_grid(self.grid, self.root, self.message);
        let (_, logs) = engine.makespans_logged(&baseline, &self.kinds);
        WarmState {
            problem: baseline.clone(),
            baseline,
            logs,
            scratch: self.grid.clone(),
            network: NodeNetwork::new(self.grid),
            patched: Vec::new(),
        }
    }

    /// The warm evaluation of one scenario: patch the scratch world, replay
    /// every baseline log under the scenario's delta, re-run only the
    /// divergent suffix of the winner, execute on the long-lived network.
    /// Bit-identical to [`WhatIfRunner::evaluate`] on the same scenario.
    fn try_evaluate_warm(
        &self,
        engine: &mut ScheduleEngine,
        warm: &mut WarmState,
        makespans: &mut Vec<Time>,
        index: usize,
        scenario: &Scenario,
    ) -> Result<WhatIfReport, SimError> {
        // Undo the previous scenario's patches from the baseline, then patch
        // this scenario's perturbation chain in — both `O(touched links)`.
        for &(f, t) in &warm.patched {
            warm.scratch.set_link(f, t, self.grid.link(f, t).clone());
            warm.problem.copy_link_from(&warm.baseline, f, t);
            warm.network.sync_link_from(self.grid, f, t);
        }
        warm.patched.clear();
        for p in &scenario.perturbations {
            p.patch(&mut warm.scratch, &mut warm.patched);
        }
        for &(f, t) in &warm.patched {
            warm.problem.repatch_link_from_grid(&warm.scratch, f, t);
            warm.network.sync_link_from(&warm.scratch, f, t);
        }

        let delta =
            ReplayDelta::from_perturbations(warm.problem.num_clusters(), &scenario.perturbations);
        engine.warm_makespans_into(&warm.problem, &warm.logs, &delta, makespans);
        let (best_slot, predicted) = best_candidate(makespans)?;
        let best = self.kinds[best_slot];
        engine.warm_run(&warm.problem, &warm.logs[best_slot], &delta);
        let plan =
            SendPlan::from_inter_cluster_events(&warm.scratch, warm.problem.root, engine.events());
        let (outcome, retries, undelivered) = match self.effective_faults(scenario) {
            None => (
                execute_plan_with_sink(
                    &warm.network,
                    &plan,
                    self.message,
                    Time::ZERO,
                    &mut NullSink,
                ),
                0,
                0,
            ),
            Some(faults) => self.execute_faulty(&warm.network, &plan, &faults),
        };
        Ok(WhatIfReport {
            scenario: index,
            makespans: makespans.clone(),
            best,
            predicted,
            simulated: outcome.completion,
            events: outcome.events_processed,
            retries,
            undelivered,
        })
    }

    /// The fault plan the execution leg actually runs under: the scenario's
    /// own plan, extended with one capacity window per
    /// [`Perturbation::TimeVaryingCapacity`] in the chain. Shared by the
    /// cold and warm paths so their executions stay bit-identical.
    fn effective_faults<'s>(&self, scenario: &'s Scenario) -> Option<Cow<'s, FaultPlan>> {
        let windows = scenario.perturbations.iter().filter_map(|p| match *p {
            Perturbation::TimeVaryingCapacity {
                from,
                to,
                factor,
                from_time,
                until,
            } => Some(CapacityWindow {
                from,
                to,
                factor,
                from_time,
                until,
            }),
            _ => None,
        });
        let mut windows = windows.peekable();
        match (&scenario.faults, windows.peek().is_some()) {
            (None, false) => None,
            (Some(faults), false) => Some(Cow::Borrowed(faults)),
            (faults, true) => {
                let mut plan = faults.clone().unwrap_or_else(|| FaultPlan::new(0));
                for w in windows {
                    plan = plan.with_capacity_window(w);
                }
                Some(Cow::Owned(plan))
            }
        }
    }

    fn execute_faulty(
        &self,
        network: &NodeNetwork,
        plan: &SendPlan,
        faults: &FaultPlan,
    ) -> (SimulationOutcome, usize, usize) {
        let result = execute_plan_under_faults(
            network,
            plan,
            self.message,
            Time::ZERO,
            faults,
            &self.retry,
            &mut NullSink,
        )
        .expect("the monotone-clock invariant holds under faults");
        let retries = result.stats().retries;
        let undelivered = match &result {
            Outcome::Complete(_) => 0,
            Outcome::Incomplete { undelivered, .. } => undelivered.len(),
        };
        let sim = match result {
            Outcome::Complete(sim) | Outcome::Incomplete { partial: sim, .. } => sim,
        };
        (sim.outcome, retries, undelivered)
    }

    fn simulate(&self, grid: &Grid, schedule: &gridcast_core::Schedule) -> SimulationOutcome {
        let network = NodeNetwork::new(grid);
        let plan = SendPlan::from_grid_schedule(grid, schedule);
        execute_plan_with_sink(&network, &plan, self.message, Time::ZERO, &mut NullSink)
    }
}

/// Builds the fault-sweep what-if dimension: the cross product of loss rates
/// and crash sets over the unperturbed baseline grid, every cell carrying a
/// [`FaultPlan`] whose seed is derived deterministically from `seed` and the
/// cell index. Feed the result to [`WhatIfRunner::run`] (typically with a
/// larger retry budget via [`WhatIfRunner::with_retry`]) and compare each
/// cell's `simulated` against the fault-free baseline for the makespan
/// inflation, `undelivered` for the completion-or-`Incomplete` invariant.
pub fn fault_sweep(seed: u64, loss_rates: &[f64], crash_sets: &[Vec<NodeCrash>]) -> Vec<Scenario> {
    let no_crashes: [Vec<NodeCrash>; 1] = [Vec::new()];
    let sets: &[Vec<NodeCrash>] = if crash_sets.is_empty() {
        &no_crashes
    } else {
        crash_sets
    };
    let mut scenarios = Vec::with_capacity(loss_rates.len() * sets.len());
    for (i, &loss) in loss_rates.iter().enumerate() {
        for (j, set) in sets.iter().enumerate() {
            let cell = (i * sets.len() + j) as u64;
            let mut faults = FaultPlan::new(seed ^ cell.wrapping_mul(0x9e37_79b9_7f4a_7c15));
            if loss > 0.0 {
                faults = faults.with_loss(loss);
            }
            for &crash in set {
                faults = faults.with_crash(crash);
            }
            scenarios.push(Scenario::baseline().with_faults(faults));
        }
    }
    scenarios
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn scenario_mix(grid: &Grid, count: usize) -> Vec<Scenario> {
        let n = grid.num_clusters();
        (0..count)
            .map(|i| match i % 5 {
                0 => Scenario::baseline(),
                1 => Scenario::one(Perturbation::ScaleAllLinks {
                    factor: 0.5 + 0.25 * (i % 8) as f64,
                }),
                2 => Scenario::one(Perturbation::DegradeUplink {
                    cluster: ClusterId(i % n),
                    factor: 2.0 + (i % 4) as f64,
                }),
                3 => Scenario::one(Perturbation::AlternateRoot {
                    root: ClusterId(i % n),
                }),
                _ => Scenario::one(Perturbation::DropRelay {
                    cluster: ClusterId(1 + i % (n - 1)),
                }),
            })
            .collect()
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(12, &mut ChaCha8Rng::seed_from_u64(7));
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let scenarios = scenario_mix(&grid, 41);
        let sequential = runner.clone().with_threads(1).run(&scenarios);
        let parallel = runner.with_threads(4).run(&scenarios);
        assert_eq!(sequential.len(), scenarios.len());
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.scenario, b.scenario);
            assert_eq!(a.best, b.best);
            assert_eq!(a.events, b.events);
            let bits =
                |ts: &[Time]| -> Vec<u64> { ts.iter().map(|t| t.as_secs().to_bits()).collect() };
            assert_eq!(bits(&a.makespans), bits(&b.makespans));
            assert_eq!(
                a.predicted.as_secs().to_bits(),
                b.predicted.as_secs().to_bits()
            );
            assert_eq!(
                a.simulated.as_secs().to_bits(),
                b.simulated.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn baseline_report_is_consistent() {
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let reports = runner.with_threads(2).run(&[Scenario::baseline()]);
        let report = &reports[0];
        assert_eq!(report.scenario, 0);
        assert_eq!(report.makespans.len(), runner_kinds_len());
        // Fold from INFINITY instead of `min().unwrap()`: an empty makespan
        // set must never be able to panic this path.
        let min = report
            .makespans
            .iter()
            .copied()
            .fold(Time::INFINITY, std::cmp::min);
        assert_eq!(report.predicted, min);
        assert!(report.simulated.is_finite());
        assert_eq!(report.events, 87);
    }

    fn runner_kinds_len() -> usize {
        HeuristicKind::all().len()
    }

    #[test]
    fn empty_candidate_set_is_a_structured_error_not_a_panic() {
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_kinds(&[])
            .with_threads(2);
        // Cold, warm, and the sequential entry point all surface the error.
        for r in [
            runner.try_run(&[Scenario::baseline(), Scenario::baseline()]),
            runner
                .clone()
                .with_warm_start(true)
                .try_run(&[Scenario::baseline()]),
        ] {
            assert!(matches!(r, Err(SimError::NoCandidates)), "got {r:?}");
        }
        let mut engine = ScheduleEngine::new();
        let mut makespans = Vec::new();
        let r = runner.try_evaluate(&mut engine, &mut makespans, 0, &Scenario::baseline());
        assert!(matches!(r, Err(SimError::NoCandidates)));
    }

    #[test]
    #[should_panic(expected = "no candidate heuristics")]
    fn infallible_run_panics_loudly_on_empty_candidates() {
        let grid = grid5000_table3();
        WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_kinds(&[])
            .run(&[Scenario::baseline()]);
    }

    #[test]
    fn all_heuristics_incomplete_scenario_reports_instead_of_panicking() {
        // Total loss with a single delivery attempt: every heuristic's
        // schedule comes back Incomplete, every simulated completion is
        // infinite — the report must say so loudly, not panic anywhere
        // downstream (this is the empty-finite-makespan shape that used to
        // trip `min().unwrap()` consumers).
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_threads(2)
            .with_retry(RetryPolicy {
                max_attempts: 1,
                ..RetryPolicy::default()
            });
        let scenarios =
            vec![Scenario::baseline().with_faults(FaultPlan::new(0xDEAD).with_loss(1.0))];
        let reports = runner
            .try_run(&scenarios)
            .expect("a loud report, not an error");
        let report = &reports[0];
        assert!(!report.simulated.is_finite());
        assert!(report.undelivered > 0, "incomplete runs name their edges");
        // The prediction leg is fault-free and stays finite.
        assert!(report.predicted.is_finite());
    }

    /// A scenario mix with fault plans interleaved: perturbed grids, lossy
    /// executions, crashes — the storm the determinism contract must survive.
    fn faulty_scenario_mix(grid: &Grid, count: usize) -> Vec<Scenario> {
        let n = grid.num_clusters();
        scenario_mix(grid, count)
            .into_iter()
            .enumerate()
            .map(|(i, s)| match i % 3 {
                0 => s,
                1 => s.with_faults(FaultPlan::new(i as u64).with_loss(0.15)),
                _ => s.with_faults(
                    FaultPlan::new(i as u64 ^ 0xFEED)
                        .with_loss(0.05)
                        .with_duplication(0.1)
                        .with_crash(NodeCrash {
                            node: gridcast_topology::NodeId((1 + i % (4 * n - 1)) as u32),
                            at: Time::from_millis(5.0 * (1 + i % 7) as f64),
                        }),
                ),
            })
            .collect()
    }

    #[test]
    fn fault_reports_are_bit_identical_across_thread_counts() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(9, &mut ChaCha8Rng::seed_from_u64(13));
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let scenarios = faulty_scenario_mix(&grid, 33);
        let sequential = runner.clone().with_threads(1).run(&scenarios);
        let parallel = runner.with_threads(5).run(&scenarios);
        for (a, b) in sequential.iter().zip(&parallel) {
            assert_eq!(a.retries, b.retries);
            assert_eq!(a.undelivered, b.undelivered);
            assert_eq!(a.events, b.events);
            assert_eq!(
                a.simulated.as_secs().to_bits(),
                b.simulated.as_secs().to_bits()
            );
        }
        // The mix genuinely exercised the protocol: some scenario retried.
        assert!(sequential.iter().any(|r| r.retries > 0));
    }

    #[test]
    fn fault_sweep_cells_complete_or_report_incomplete_loudly() {
        let grid = grid5000_table3();
        let crash_sets = vec![
            Vec::new(),
            vec![NodeCrash {
                node: gridcast_topology::NodeId(9),
                at: Time::from_millis(10.0),
            }],
        ];
        let scenarios = fault_sweep(0xBAD5EED, &[0.0, 0.05, 0.1, 0.2], &crash_sets);
        assert_eq!(scenarios.len(), 8);
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_threads(2)
            .with_retry(RetryPolicy {
                max_attempts: 8,
                ..RetryPolicy::default()
            });
        for report in runner.run(&scenarios) {
            // The acceptance invariant: under loss p <= 0.2 with retries,
            // every cell either completes with a finite (inflated) makespan
            // or says *why* it could not — never a silent hang.
            if report.simulated.is_finite() {
                assert_eq!(report.undelivered, 0);
                assert!(report.simulated >= report.predicted * 0.99);
            } else {
                assert!(report.undelivered > 0, "incomplete runs name their edges");
            }
        }
    }

    #[test]
    fn degraded_uplink_slows_the_flat_tree_prediction() {
        let grid = grid5000_table3();
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_kinds(&[HeuristicKind::FlatTree])
            .with_threads(1);
        let reports = runner.run(&[
            Scenario::baseline(),
            Scenario::one(Perturbation::DegradeUplink {
                cluster: ClusterId(0),
                factor: 8.0,
            }),
        ]);
        // The flat tree sends everything over the degraded root uplink: the
        // prediction must get strictly worse.
        assert!(reports[1].predicted > reports[0].predicted);
        assert!(reports[1].simulated > reports[0].simulated);
    }

    #[test]
    fn dropped_relay_never_forwards() {
        let grid = grid5000_table3();
        let dropped = ClusterId(2);
        let (perturbed, root) =
            Scenario::one(Perturbation::DropRelay { cluster: dropped }).apply(&grid, ClusterId(0));
        assert_eq!(root, ClusterId(0));
        let problem = BroadcastProblem::from_grid(&perturbed, root, MessageSize::from_mib(1));
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let schedule = engine.schedule(&problem, kind);
            // FEF scores by latency alone and cannot see the gap penalty;
            // every gap-aware heuristic must route around the dropped relay.
            if kind != HeuristicKind::Fef {
                assert!(
                    schedule.events.iter().all(|e| e.sender != dropped),
                    "{kind} relayed through the dropped cluster"
                );
            }
            assert!(schedule.makespan().is_finite());
        }
    }

    #[test]
    fn alternate_root_moves_the_source() {
        let grid = grid5000_table3();
        let scenario = Scenario::one(Perturbation::AlternateRoot { root: ClusterId(4) });
        let (perturbed, root) = scenario.apply(&grid, ClusterId(0));
        assert_eq!(root, ClusterId(4));
        assert_eq!(perturbed, grid);
    }

    /// Every perturbation kind, warm-eligible and not, so the warm runner's
    /// per-scenario dispatch (replay vs cold fallback) is exercised end to
    /// end.
    fn warm_scenario_mix(grid: &Grid, count: usize) -> Vec<Scenario> {
        let n = grid.num_clusters();
        (0..count)
            .map(|i| match i % 8 {
                0 => Scenario::baseline(),
                1 => Scenario::one(Perturbation::DegradeLink {
                    from: ClusterId(i % n),
                    to: ClusterId((i % n + 1) % n),
                    factor: 1.5 + (i % 5) as f64,
                }),
                2 => Scenario::one(Perturbation::DegradeUplink {
                    cluster: ClusterId(i % n),
                    factor: 2.0 + (i % 4) as f64,
                }),
                3 => Scenario::one(Perturbation::DegradeSite {
                    first: ClusterId(i % n),
                    span: 1 + i % 3,
                    factor: 3.0,
                }),
                4 => Scenario::one(Perturbation::TimeVaryingCapacity {
                    from: ClusterId(i % n),
                    to: ClusterId((i % n + 2) % n),
                    factor: 5.0,
                    from_time: Time::ZERO,
                    until: Time::from_millis(400.0),
                }),
                5 => Scenario::one(Perturbation::DropRelay {
                    cluster: ClusterId(1 + i % (n - 1)),
                }),
                6 => Scenario::one(Perturbation::ScaleAllLinks { factor: 2.0 }),
                _ => Scenario::one(Perturbation::AlternateRoot {
                    root: ClusterId(i % n),
                }),
            })
            .collect()
    }

    fn assert_reports_bit_identical(a: &[WhatIfReport], b: &[WhatIfReport]) {
        assert_eq!(a.len(), b.len());
        let bits = |ts: &[Time]| -> Vec<u64> { ts.iter().map(|t| t.as_secs().to_bits()).collect() };
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.scenario, y.scenario);
            assert_eq!(x.best, y.best, "winner diverges at scenario {}", x.scenario);
            assert_eq!(
                bits(&x.makespans),
                bits(&y.makespans),
                "scenario {}",
                x.scenario
            );
            assert_eq!(
                x.predicted.as_secs().to_bits(),
                y.predicted.as_secs().to_bits()
            );
            assert_eq!(
                x.simulated.as_secs().to_bits(),
                y.simulated.as_secs().to_bits(),
                "simulation diverges at scenario {}",
                x.scenario
            );
            assert_eq!(x.events, y.events);
            assert_eq!(x.retries, y.retries);
            assert_eq!(x.undelivered, y.undelivered);
        }
    }

    #[test]
    fn warm_runner_matches_cold_runner_bit_for_bit() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(14, &mut ChaCha8Rng::seed_from_u64(29));
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0));
        let scenarios = warm_scenario_mix(&grid, 48);
        let cold = runner.clone().with_threads(2).run(&scenarios);
        let warm = runner
            .clone()
            .with_warm_start(true)
            .with_threads(2)
            .run(&scenarios);
        let warm_single = runner.with_warm_start(true).with_threads(1).run(&scenarios);
        assert_reports_bit_identical(&cold, &warm);
        assert_reports_bit_identical(&cold, &warm_single);
    }

    #[test]
    fn warm_runner_matches_cold_under_faults() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(10, &mut ChaCha8Rng::seed_from_u64(31));
        let scenarios: Vec<Scenario> = warm_scenario_mix(&grid, 24)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                if i % 3 == 1 {
                    s.with_faults(FaultPlan::new(i as u64).with_loss(0.1))
                } else {
                    s
                }
            })
            .collect();
        let runner =
            WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0)).with_threads(3);
        let cold = runner.clone().run(&scenarios);
        let warm = runner.with_warm_start(true).run(&scenarios);
        assert_reports_bit_identical(&cold, &warm);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn warm_sweep_reports_replay_telemetry() {
        let grid = GridGenerator::table2()
            .cluster_size(4)
            .generate(12, &mut ChaCha8Rng::seed_from_u64(3));
        let scenarios = warm_scenario_mix(&grid, 16);
        let runner = WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0))
            .with_threads(1)
            .with_warm_start(true);
        let (reports, telemetry) = runner.run_with_telemetry(&scenarios);
        assert_eq!(reports.len(), scenarios.len());
        assert!(telemetry.replayed_commits > 0, "some prefixes must replay");
    }

    #[test]
    fn capacity_window_slows_execution_but_not_prediction() {
        let grid = grid5000_table3();
        let n = grid.num_clusters();
        // A congestion window over every root uplink from t = 0: the first
        // transfers of any winning schedule start inside it.
        let windowed = Scenario {
            perturbations: (1..n)
                .map(|j| Perturbation::TimeVaryingCapacity {
                    from: ClusterId(0),
                    to: ClusterId(j),
                    factor: 50.0,
                    from_time: Time::ZERO,
                    until: Time::from_millis(10_000.0),
                })
                .collect(),
            faults: None,
        };
        let runner =
            WhatIfRunner::new(&grid, MessageSize::from_mib(1), ClusterId(0)).with_threads(1);
        let reports = runner.run(&[Scenario::baseline(), windowed]);
        // The static model the prediction leg prices is untouched...
        assert_eq!(
            reports[0].predicted.as_secs().to_bits(),
            reports[1].predicted.as_secs().to_bits()
        );
        // ...but the executed collective pays the congestion.
        assert!(reports[1].simulated > reports[0].simulated);
    }

    #[test]
    fn scale_all_links_scales_gaps_but_not_latency() {
        let grid = grid5000_table3();
        let (scaled, _) =
            Scenario::one(Perturbation::ScaleAllLinks { factor: 2.0 }).apply(&grid, ClusterId(0));
        let m = MessageSize::from_mib(1);
        let a = ClusterId(0);
        let b = ClusterId(3);
        assert_eq!(scaled.gap(a, b, m), grid.gap(a, b, m) * 2.0);
        assert_eq!(scaled.latency(a, b), grid.latency(a, b));
    }
}
