//! The unified discrete-event execution core.
//!
//! Earlier revisions carried two hand-rolled executors — a broadcast path
//! (`execute_plan`) that resolved each machine's forwards analytically at
//! arrival time, and a staged path (`execute_sized_plan`) that queued explicit
//! attempt events for gated, payload-sized sends — each duplicating the
//! interface-occupancy and wide-area-channel bookkeeping. They are now one
//! machine: a monotonic event queue (a [`BinaryHeap`] over `(Time, seq)` with
//! deterministic FIFO tie-breaking) plus per-machine interface and per-pair
//! wide-area channel resources, onto which **plain sends, sized sends, release
//! gates and local gather/scatter stages are all lowered as the same two event
//! kinds**:
//!
//! * `Attempt` — a machine tries to start its next pending send;
//!   if any required resource (its interface, the destination's interface in
//!   the single-port model, a wide-area channel, a release time) is not yet
//!   available, the attempt re-queues at the earliest time they all are.
//!   Constraints only move forward, so the retry converges.
//! * `Arrival` — a payload lands; gates open, reception times
//!   update, and the receiving machine's next send is considered.
//!
//! The two public executors differ only in how a plan is *lowered* (an
//! `EventProgram`):
//!
//! * [`execute_plan`] lowers a [`SendPlan`]: every send carries the broadcast
//!   message, is gated on the machine's first arrival, and occupies the
//!   **sender's** interface only (a receiving NIC can accept while sending —
//!   the full-duplex broadcast model the Figure 5/6 reproduction was
//!   validated under);
//! * [`execute_sized_plan`] lowers a [`SizedSendPlan`]: per-send payloads,
//!   `not_before`/`after_arrivals` release gates, and **both-endpoint**
//!   interface occupancy (the single-port model of
//!   `ScheduleEngine::schedule_transfers`, which makes engine-predicted
//!   exchange makespans reproducible node-level).
//!
//! The queue's clock is **monotone by construction and by an always-on
//! check**: no event may be scheduled before the current simulated time. A
//! violation (the INF-arithmetic class of bug where a corrupted time would
//! silently reorder the simulation) is a structured
//! [`SimError::ClockRegression`] from the fallible entry points
//! ([`try_execute_plan_with_sink`], [`try_execute_sized_plan_with_sink`]) and
//! a panic from the legacy infallible ones — never silent corruption, in any
//! build profile. Every [`TraceEvent`] therefore reaches the [`TraceSink`] in
//! non-decreasing time order — which is what lets traces stream instead of
//! accumulating — and the fallible entry points additionally surface the
//! sink's own I/O failures as [`SimError::Trace`].

use crate::error::SimError;
use crate::network::NodeNetwork;
use crate::outcome::SimulationOutcome;
use crate::plan::{SendPlan, SizedSend, SizedSendPlan};
use crate::trace::{TraceEvent, TraceKind, TraceSink};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event waiting in the simulation queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A payload arriving at a machine.
    Arrival { from: NodeId, to: NodeId },
    /// A machine attempting to start its next pending send.
    Attempt { node: NodeId },
}

/// An event with a deterministic `(time, seq)` total order. The kind is
/// opaque to the ordering, so one queue serves both the fault-free programs
/// (`EventKind`) and the fault executor's richer vocabulary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event<K> {
    pub(crate) time: Time,
    /// Monotonic sequence number breaking ties deterministically (FIFO order
    /// for simultaneous events).
    pub(crate) seq: u64,
    pub(crate) kind: K,
}

impl<K> PartialEq for Event<K> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<K> Eq for Event<K> {}

impl<K> Ord for Event<K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl<K> PartialOrd for Event<K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The monotonic event queue: a min-heap over `(time, seq)` plus the current
/// simulated time.
///
/// Pushing an event earlier than the current clock would silently reorder the
/// simulation — exactly the failure mode of the INF−INF arithmetic bugs the
/// engine's NaN audit hunts — so `push` checks **in every build profile**
/// that simulated time never flows backwards (and that the time is not NaN),
/// returning a structured [`SimError::ClockRegression`] instead of
/// corrupting the run.
pub(crate) struct EventQueue<K> {
    heap: BinaryHeap<Reverse<Event<K>>>,
    now: Time,
    seq: u64,
}

impl<K> EventQueue<K> {
    pub(crate) fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            seq: 0,
        }
    }

    /// Schedules `kind` at `time`, which must not precede the current
    /// simulated time.
    #[inline]
    pub(crate) fn push(&mut self, time: Time, kind: K) -> Result<(), SimError> {
        if time.as_secs().is_nan() || time < self.now {
            return Err(SimError::ClockRegression {
                scheduled: time,
                now: self.now,
            });
        }
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Event { time, seq, kind }));
        Ok(())
    }

    /// Pops the next event and advances the clock to it.
    #[inline]
    pub(crate) fn pop(&mut self) -> Option<Event<K>> {
        let event = self.heap.pop()?.0;
        debug_assert!(event.time >= self.now, "heap order is time order");
        self.now = event.time;
        Some(event)
    }
}

/// Which network interfaces a committed send occupies for its gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Occupancy {
    /// Only the sender's interface — the full-duplex broadcast model, where a
    /// machine keeps forwarding while later copies still arrive.
    SenderOnly,
    /// Both endpoints' interfaces — the single-port model of the engine's
    /// transfer scheduler, where a gather's receives genuinely serialise on
    /// the parent's interface.
    BothEndpoints,
}

/// What the outcome's per-machine reception time means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reception {
    /// The first arrival (broadcast: a machine holds the message once).
    /// Machines never reached report `Time::INFINITY`.
    First,
    /// The last arrival (personalised patterns: a gather coordinator is done
    /// when its whole subtree arrived). Machines that receive nothing report
    /// `start_offset`; a starved plan (a gate that never opens) reports
    /// `Time::INFINITY` loudly.
    Last,
}

/// A plan lowered onto the event core: per machine, an ordered list of
/// [`SizedSend`]s (payload + release gates), plus the execution mode.
/// Monomorphised per caller, so the uniform-payload broadcast path pays
/// nothing for the generality.
trait EventProgram {
    fn num_nodes(&self) -> usize;
    fn source(&self) -> NodeId;
    fn num_sends(&self, node: usize) -> usize;
    fn send(&self, node: usize, k: usize) -> SizedSend;
    fn occupancy(&self) -> Occupancy;
    fn reception(&self) -> Reception;
}

/// The lowering of a uniform-payload [`SendPlan`]: every send carries the
/// broadcast message and waits for the machine's first arrival (the source
/// starts holding it).
struct BroadcastProgram<'a> {
    plan: &'a SendPlan,
    message: MessageSize,
}

impl EventProgram for BroadcastProgram<'_> {
    #[inline]
    fn num_nodes(&self) -> usize {
        self.plan.num_nodes()
    }

    #[inline]
    fn source(&self) -> NodeId {
        self.plan.source
    }

    #[inline]
    fn num_sends(&self, node: usize) -> usize {
        self.plan.forwards[node].len()
    }

    #[inline]
    fn send(&self, node: usize, k: usize) -> SizedSend {
        SizedSend {
            to: self.plan.forwards[node][k],
            payload: self.message,
            not_before: Time::ZERO,
            after_arrivals: u32::from(node != self.plan.source.index()),
        }
    }

    #[inline]
    fn occupancy(&self) -> Occupancy {
        Occupancy::SenderOnly
    }

    #[inline]
    fn reception(&self) -> Reception {
        Reception::First
    }
}

/// The (identity) lowering of a [`SizedSendPlan`].
impl EventProgram for &SizedSendPlan {
    #[inline]
    fn num_nodes(&self) -> usize {
        SizedSendPlan::num_nodes(self)
    }

    #[inline]
    fn source(&self) -> NodeId {
        self.source
    }

    #[inline]
    fn num_sends(&self, node: usize) -> usize {
        self.forwards[node].len()
    }

    #[inline]
    fn send(&self, node: usize, k: usize) -> SizedSend {
        self.forwards[node][k]
    }

    #[inline]
    fn occupancy(&self) -> Occupancy {
        Occupancy::BothEndpoints
    }

    #[inline]
    fn reception(&self) -> Reception {
        Reception::Last
    }
}

/// Shared wide-area path occupancy per unordered cluster pair: each pair
/// offers `wan_concurrency` channels at full per-flow rate; transfers beyond
/// that serialise on the earliest-free channel. One definition serves every
/// lowered plan, so the broadcast and personalised paths can never simulate
/// different contention models for the same grid.
pub(crate) struct WanChannels {
    /// Flat `[pair][channel]` free times (stride `concurrency`), indexed by
    /// the unordered pair `{lo, hi}`.
    free: Vec<Time>,
    concurrency: usize,
    num_clusters: usize,
}

impl WanChannels {
    pub(crate) fn new(network: &NodeNetwork) -> Self {
        let num_clusters = network.grid().num_clusters();
        let concurrency = network.wan_concurrency();
        WanChannels {
            free: vec![Time::ZERO; num_clusters * num_clusters * concurrency],
            concurrency,
            num_clusters,
        }
    }

    #[inline]
    fn pair_range(&self, a: usize, b: usize) -> std::ops::Range<usize> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let base = (lo * self.num_clusters + hi) * self.concurrency;
        base..base + self.concurrency
    }

    /// The earliest-free channel of the unordered pair `{a, b}`: its free
    /// time and its slot (first minimal slot, deterministically).
    #[inline]
    pub(crate) fn earliest(&self, a: usize, b: usize) -> (Time, usize) {
        let range = self.pair_range(a, b);
        let base = range.start;
        let mut best = Time::INFINITY;
        let mut slot = 0;
        for (i, &t) in self.free[range].iter().enumerate() {
            if t < best {
                best = t;
                slot = i;
            }
        }
        (best, base + slot)
    }

    #[inline]
    pub(crate) fn occupy(&mut self, slot: usize, until: Time) {
        self.free[slot] = until;
    }
}

/// Executes a [`SendPlan`] over a [`NodeNetwork`] for a message of size `m`,
/// starting at time `start_offset` (used to account for scheduling overhead).
///
/// Semantics (the broadcast lowering of the unified event core):
///
/// * the source holds the message at `start_offset`,
/// * when a machine holds the message it issues the forwards listed in its
///   plan entry, in order; each send occupies its network interface for the
///   gap `g(m)` of the corresponding link, and the destination receives the
///   full message `g(m) + L` after the send started,
/// * transfers between two *different* clusters additionally occupy a channel
///   of the shared wide-area path between those clusters for the gap:
///   concurrent inter-site transfers over the same cluster pair beyond the
///   path's concurrency budget serialise (the site uplink is a single
///   bottleneck), which is what makes grid-unaware broadcast trees slow on
///   real grids even though each individual sender is idle. Channels are
///   acquired when a send actually starts (contention is resolved in global
///   time order, ties by issue order), not pre-reserved,
/// * events are processed in global time order, so forwarding cascades
///   propagate correctly,
/// * duplicate deliveries keep the first arrival; later copies are ignored.
///
/// Optionally records a full [`TraceEvent`] log via `trace`; prefer
/// [`execute_plan_with_sink`] to stream, count or drop the trace instead.
pub fn execute_plan(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    let mut trace = trace;
    execute_plan_with_sink(network, plan, m, start_offset, &mut trace)
}

/// [`execute_plan`] with a caller-chosen [`TraceSink`] observing the event
/// stream in non-decreasing time order.
///
/// Panics on a clock-regression violation (impossible for well-formed plans;
/// use [`try_execute_plan_with_sink`] to get a structured [`SimError`]
/// instead, including the sink's own I/O failures).
pub fn execute_plan_with_sink<S: TraceSink>(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    sink: &mut S,
) -> SimulationOutcome {
    execute_events(
        network,
        &BroadcastProgram { plan, message: m },
        start_offset,
        sink,
    )
    .unwrap_or_else(|e| panic!("simulation invariant violated: {e}"))
}

/// The fallible sibling of [`execute_plan_with_sink`]: a clock-regression
/// violation (the always-on monotonicity invariant) returns
/// [`SimError::ClockRegression`], and a trace sink whose writer failed
/// mid-stream returns [`SimError::Trace`] after the drain instead of
/// discarding the I/O error.
pub fn try_execute_plan_with_sink<S: TraceSink>(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    sink: &mut S,
) -> Result<SimulationOutcome, SimError> {
    let outcome = execute_events(
        network,
        &BroadcastProgram { plan, message: m },
        start_offset,
        sink,
    )?;
    if let Some(e) = sink.take_error() {
        return Err(SimError::Trace(e));
    }
    Ok(outcome)
}

/// Executes a [`SizedSendPlan`] — the node-level
/// realisation of the personalised patterns, where every send carries its own
/// payload and release gates.
///
/// Semantics (the conformance-grade lowering of the unified event core):
///
/// * a machine issues its forwards **in order**; each waits for its
///   [`after_arrivals`](crate::plan::SizedSend::after_arrivals) gate (number
///   of messages received so far) and its
///   [`not_before`](crate::plan::SizedSend::not_before) release time,
/// * a send occupies **both** endpoints' network interfaces for the gap
///   `g(payload)` of the link — the single-port model of
///   `ScheduleEngine::schedule_transfers`, which is what makes the engine's
///   gather/allgather makespans reproducible here (a gather's receives
///   genuinely serialise on the parent's interface),
/// * transfers between two different clusters additionally occupy the shared
///   wide-area path between those clusters (concurrency budget as in
///   [`execute_plan`]),
/// * contention is resolved in global time order (ties by issue order): an
///   attempt whose resources are busy re-queues at the earliest time they all
///   free up.
///
/// The outcome's per-machine reception time is the **last** arrival (a gather
/// coordinator is done when its whole subtree arrived, not at its first
/// message); machines that receive nothing — the leaves of a gather — report
/// `start_offset`, the moment they already hold their own data. A machine
/// with unissued forwards at drain time is starved (its gate never opened)
/// and the outcome propagates `Time::INFINITY` loudly instead of reporting
/// success.
pub fn execute_sized_plan(
    network: &NodeNetwork,
    plan: &SizedSendPlan,
    start_offset: Time,
    trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    let mut trace = trace;
    execute_sized_plan_with_sink(network, plan, start_offset, &mut trace)
}

/// [`execute_sized_plan`] with a caller-chosen [`TraceSink`] observing the
/// event stream in non-decreasing time order.
///
/// Panics on a clock-regression violation (impossible for well-formed plans;
/// use [`try_execute_sized_plan_with_sink`] for the structured error path).
pub fn execute_sized_plan_with_sink<S: TraceSink>(
    network: &NodeNetwork,
    plan: &SizedSendPlan,
    start_offset: Time,
    sink: &mut S,
) -> SimulationOutcome {
    execute_events(network, &plan, start_offset, sink)
        .unwrap_or_else(|e| panic!("simulation invariant violated: {e}"))
}

/// The fallible sibling of [`execute_sized_plan_with_sink`]: clock
/// regressions and trace-sink write failures come back as [`SimError`]
/// instead of a panic / a silently discarded I/O error.
pub fn try_execute_sized_plan_with_sink<S: TraceSink>(
    network: &NodeNetwork,
    plan: &SizedSendPlan,
    start_offset: Time,
    sink: &mut S,
) -> Result<SimulationOutcome, SimError> {
    let outcome = execute_events(network, &plan, start_offset, sink)?;
    if let Some(e) = sink.take_error() {
        return Err(SimError::Trace(e));
    }
    Ok(outcome)
}

/// The one discrete-event loop behind both executors.
fn execute_events<P: EventProgram, S: TraceSink>(
    network: &NodeNetwork,
    program: &P,
    start_offset: Time,
    sink: &mut S,
) -> Result<SimulationOutcome, SimError> {
    let n = network.num_nodes();
    assert_eq!(
        program.num_nodes(),
        n,
        "plan covers {} machines but the network has {n}",
        program.num_nodes()
    );
    let occupancy = program.occupancy();
    let reception = program.reception();
    let source = program.source();

    let mut wan = WanChannels::new(network);
    // Interface free times; `start_offset` models the pre-simulation phase
    // (e.g. scheduling overhead) during which no machine may transmit.
    let mut nic_free = vec![start_offset; n];
    let mut arrivals = vec![0u32; n];
    let mut cursor = vec![0usize; n];
    let mut attempt_pending = vec![false; n];
    // Reception bookkeeping for both semantics; the unused half costs two
    // vectors, which keeps the loop free of per-mode branches.
    let mut first_arrival = vec![Time::INFINITY; n];
    let mut last_arrival = vec![start_offset; n];
    let mut received_any = vec![false; n];
    let mut queue = EventQueue::new();
    let mut messages = 0usize;
    let mut events_processed = 0usize;

    // Schedules the next gated-and-ready forward of `node`, if any. The
    // attempt is queued at the earliest time the sender itself could start;
    // destination-interface and wide-area constraints are resolved when the
    // attempt fires.
    let advance = |node: usize,
                   now: Time,
                   cursor: &[usize],
                   arrivals: &[u32],
                   attempt_pending: &mut [bool],
                   nic_free: &[Time],
                   queue: &mut EventQueue<EventKind>|
     -> Result<(), SimError> {
        if attempt_pending[node] || cursor[node] >= program.num_sends(node) {
            return Ok(());
        }
        let send = program.send(node, cursor[node]);
        if arrivals[node] < send.after_arrivals {
            return Ok(());
        }
        let at = now.max(nic_free[node]).max(send.not_before);
        attempt_pending[node] = true;
        queue.push(
            at,
            EventKind::Attempt {
                node: NodeId(node as u32),
            },
        )
    };

    for node in 0..n {
        advance(
            node,
            start_offset,
            &cursor,
            &arrivals,
            &mut attempt_pending,
            &nic_free,
            &mut queue,
        )?;
    }

    while let Some(event) = queue.pop() {
        match event.kind {
            EventKind::Attempt { node } => {
                let idx = node.index();
                let send = program.send(idx, cursor[idx]);
                let src_cluster = network.nodes()[idx].cluster.index();
                let dst_cluster = network.nodes()[send.to.index()].cluster.index();
                let gap = network.gap(node, send.to, send.payload);
                // The earliest feasible start given everything committed so
                // far; constraints only move forward, so re-queueing at this
                // time converges.
                let mut earliest = event.time.max(nic_free[idx]).max(send.not_before);
                if occupancy == Occupancy::BothEndpoints {
                    earliest = earliest.max(nic_free[send.to.index()]);
                }
                let channel_slot = if src_cluster != dst_cluster {
                    let (free, slot) = wan.earliest(src_cluster, dst_cluster);
                    earliest = earliest.max(free);
                    Some(slot)
                } else {
                    None
                };
                if earliest > event.time {
                    queue.push(earliest, event.kind)?;
                    continue;
                }
                let start = event.time;
                let release = start + gap;
                nic_free[idx] = release;
                if occupancy == Occupancy::BothEndpoints {
                    nic_free[send.to.index()] = release;
                }
                if let Some(slot) = channel_slot {
                    wan.occupy(slot, release);
                }
                let arrival = release + network.latency(node, send.to);
                if sink.enabled() {
                    sink.record(TraceEvent {
                        kind: TraceKind::SendStart,
                        time: start,
                        from: node,
                        to: send.to,
                    });
                }
                queue.push(
                    arrival,
                    EventKind::Arrival {
                        from: node,
                        to: send.to,
                    },
                )?;
                messages += 1;
                cursor[idx] += 1;
                attempt_pending[idx] = false;
                advance(
                    idx,
                    start,
                    &cursor,
                    &arrivals,
                    &mut attempt_pending,
                    &nic_free,
                    &mut queue,
                )?;
            }
            EventKind::Arrival { from, to } => {
                events_processed += 1;
                if sink.enabled() {
                    sink.record(TraceEvent {
                        kind: TraceKind::Arrival,
                        time: event.time,
                        from,
                        to,
                    });
                }
                let idx = to.index();
                arrivals[idx] += 1;
                received_any[idx] = true;
                first_arrival[idx] = first_arrival[idx].min(event.time);
                last_arrival[idx] = last_arrival[idx].max(event.time);
                advance(
                    idx,
                    event.time,
                    &cursor,
                    &arrivals,
                    &mut attempt_pending,
                    &nic_free,
                    &mut queue,
                )?;
            }
        }
    }

    let receive_times: Vec<Time> = match reception {
        Reception::First => (0..n)
            .map(|i| {
                if i == source.index() {
                    // The source holds the message from the start; duplicate
                    // deliveries to it are ignored like any duplicate.
                    start_offset
                } else {
                    first_arrival[i]
                }
            })
            .collect(),
        Reception::Last => {
            // A machine with unissued forwards at drain time is starved — its
            // gate never opened. Propagate loudly instead of reporting
            // success.
            let starved = (0..n).any(|i| cursor[i] < program.num_sends(i));
            (0..n)
                .map(|i| {
                    if starved && (cursor[i] < program.num_sends(i) || !received_any[i]) {
                        Time::INFINITY
                    } else {
                        last_arrival[i]
                    }
                })
                .collect()
        }
    };
    // Machines never reached keep an infinite receive time; the completion
    // below then propagates the problem loudly instead of silently reporting
    // success.
    let completion = receive_times.iter().copied().max().unwrap_or(Time::ZERO);
    Ok(SimulationOutcome {
        completion,
        receive_times,
        messages,
        events_processed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountingSink, NullSink, StreamingSink};
    use gridcast_topology::{grid5000_table3, ClusterId, Grid};

    fn grid() -> Grid {
        grid5000_table3()
    }

    #[test]
    fn empty_plan_only_covers_the_source() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::empty(NodeId(0), network.num_nodes());
        let outcome = execute_plan(&network, &plan, MessageSize::from_mib(1), Time::ZERO, None);
        assert_eq!(outcome.receive_time(NodeId(0)), Time::ZERO);
        assert!(!outcome.completion.is_finite());
        assert_eq!(outcome.messages, 0);
    }

    #[test]
    fn single_forward_costs_one_transfer() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        // Send to every node from node 0 would be a flat tree; here just one.
        plan.forwards[0].push(NodeId(1));
        // Complete the plan so completion stays finite: everyone else is also
        // served directly by node 0 (flat) — but for this test we only check the
        // first arrival, so keep the rest unreached and look at node 1 only.
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let expected = network.transfer(NodeId(0), NodeId(1), m);
        assert_eq!(outcome.receive_time(NodeId(1)), expected);
    }

    #[test]
    fn sender_interface_serialises_gap() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(2));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let gap = network.gap(NodeId(0), NodeId(1), m);
        let t1 = outcome.receive_time(NodeId(1));
        let t2 = outcome.receive_time(NodeId(2));
        // Second send starts one gap later.
        assert!(t2.approx_eq(t1 + gap, Time::from_micros(1.0)));
    }

    #[test]
    fn start_offset_shifts_everything() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let base = execute_plan(&network, &plan, m, Time::ZERO, None);
        let offset = execute_plan(&network, &plan, m, Time::from_millis(5.0), None);
        assert!(offset.receive_time(NodeId(1)).approx_eq(
            base.receive_time(NodeId(1)) + Time::from_millis(5.0),
            Time::from_micros(1.0)
        ));
    }

    #[test]
    fn full_binomial_plan_reaches_everyone_and_traces() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(0));
        let mut trace = Vec::new();
        let outcome = execute_plan(
            &network,
            &plan,
            MessageSize::from_mib(1),
            Time::ZERO,
            Some(&mut trace),
        );
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert_eq!(outcome.events_processed, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        // Trace holds one send and one arrival per message.
        assert_eq!(trace.len(), 2 * 87);
        assert!(trace.iter().any(|e| e.kind == TraceKind::SendStart));
        // The unified core's streaming contract: the trace is globally
        // ordered by time.
        assert!(trace.windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn null_and_counting_sinks_agree_with_the_retained_trace() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(3));
        let m = MessageSize::from_mib(1);
        let mut retained = Vec::new();
        let traced = execute_plan(&network, &plan, m, Time::ZERO, Some(&mut retained));
        let mut null = NullSink;
        let silent = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut null);
        assert_eq!(traced, silent);
        let mut counting = CountingSink::default();
        let counted = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut counting);
        assert_eq!(traced, counted);
        assert_eq!(counting.sends, 87);
        assert_eq!(counting.arrivals, 87);
        assert_eq!(counting.last_time, retained.last().unwrap().time);
    }

    #[test]
    fn streaming_sink_observes_the_same_events_as_the_retained_vec() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(0));
        let m = MessageSize::from_mib(1);
        let mut retained = Vec::new();
        let a = execute_plan(&network, &plan, m, Time::ZERO, Some(&mut retained));
        let mut streaming = StreamingSink::new(Vec::new());
        let b = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut streaming);
        assert_eq!(a, b);
        let text = String::from_utf8(streaming.finish().unwrap()).unwrap();
        let lines: Vec<String> = text.lines().map(str::to_owned).collect();
        let expected: Vec<String> = retained.iter().map(|e| e.to_string()).collect();
        assert_eq!(lines, expected);
    }

    #[test]
    fn sized_plan_execution_prices_each_send_for_its_payload() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut small = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        small.push_forward(NodeId(0), NodeId(1), MessageSize::from_kib(64));
        let mut large = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        large.push_forward(NodeId(0), NodeId(1), MessageSize::from_mib(4));
        let fast = execute_sized_plan(&network, &small, Time::ZERO, None);
        let slow = execute_sized_plan(&network, &large, Time::ZERO, None);
        assert!(fast.receive_time(NodeId(1)) < slow.receive_time(NodeId(1)));
        assert_eq!(
            fast.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), MessageSize::from_kib(64))
        );
    }

    #[test]
    fn staged_sends_respect_gates_and_release_times() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let m = MessageSize::from_kib(64);
        // Node 0 sends to node 1 no earlier than 100 ms; node 1 forwards to
        // node 2 only after that arrival.
        let mut plan = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(SizedSend {
            to: NodeId(1),
            payload: m,
            not_before: Time::from_millis(100.0),
            after_arrivals: 0,
        });
        plan.forwards[1].push(SizedSend {
            to: NodeId(2),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 1,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        let hop = network.transfer(NodeId(0), NodeId(1), m);
        assert!(outcome
            .receive_time(NodeId(1))
            .approx_eq(Time::from_millis(100.0) + hop, Time::from_micros(1.0)));
        assert!(outcome.receive_time(NodeId(2)) > outcome.receive_time(NodeId(1)));
        assert_eq!(outcome.messages, 2);
    }

    #[test]
    fn staged_sends_occupy_both_endpoint_interfaces() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let m = MessageSize::from_mib(1);
        // Nodes 1 and 2 both send to node 0 at t = 0 (a 2-child gather): the
        // receives must serialise on node 0's interface, so the last arrival
        // is two gaps plus one latency, not max of two parallel transfers.
        let mut plan = SizedSendPlan::empty(NodeId(1), network.num_nodes());
        plan.forwards[1].push(SizedSend {
            to: NodeId(0),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 0,
        });
        plan.forwards[2].push(SizedSend {
            to: NodeId(0),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 0,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        let gap = network.gap(NodeId(1), NodeId(0), m);
        let lat = network.latency(NodeId(1), NodeId(0));
        assert!(outcome
            .receive_time(NodeId(0))
            .approx_eq(gap + gap + lat, Time::from_micros(1.0)));
    }

    #[test]
    fn starved_gates_propagate_loudly() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        // Node 3 waits for an arrival that never comes.
        plan.forwards[3].push(SizedSend {
            to: NodeId(4),
            payload: MessageSize::from_kib(1),
            not_before: Time::ZERO,
            after_arrivals: 1,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        assert!(!outcome.completion.is_finite());
    }

    #[test]
    fn relay_scatter_executes_node_level_end_to_end() {
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(64);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
        let mut trace = Vec::new();
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, Some(&mut trace));
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        assert_eq!(trace.len(), 2 * 87);
    }

    #[test]
    fn gather_executes_node_level_and_reproduces_the_engine_makespan() {
        use gridcast_core::{RelayGatherProblem, RelayOrdering};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(64);
        let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
        for ordering in [RelayOrdering::Direct, RelayOrdering::EarliestCompletion] {
            let schedule = problem.schedule(ordering);
            let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
            let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
            assert!(outcome.completion.is_finite(), "{ordering:?}");
            // GRID'5000 latencies are symmetric per pair, so the reflected
            // receive windows stay feasible and the replay is exact.
            assert!(
                outcome
                    .completion
                    .approx_eq(schedule.makespan(), Time::from_micros(10.0)),
                "{ordering:?}: simulated {} vs engine {}",
                outcome.completion,
                schedule.makespan()
            );
            // All data converges on the root's coordinator.
            let root = grid.coordinator(ClusterId(0));
            assert_eq!(outcome.receive_time(root), outcome.completion);
        }
    }

    #[test]
    fn allgather_executes_node_level_and_reproduces_the_engine_makespan() {
        use gridcast_core::allgather_schedule;
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(16);
        let schedule = allgather_schedule(&grid, per_node);
        let plan = SizedSendPlan::from_allgather_schedule(&grid, &schedule, per_node);
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        assert!(outcome.completion.is_finite());
        assert!(
            outcome
                .completion
                .approx_eq(schedule.makespan(), Time::from_micros(10.0)),
            "simulated {} vs engine {}",
            outcome.completion,
            schedule.makespan()
        );
        // Every machine received something (at minimum the redistribution or
        // a local gather block), and every machine holding data forwarded on
        // time: no starvation.
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
    }

    /// A writer whose every write fails — the regression rig for the
    /// sink-error path.
    struct FailingWriter;

    impl std::io::Write for FailingWriter {
        fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::other("disk full"))
        }

        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn sink_write_failures_surface_through_the_fallible_executor() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(0));
        let m = MessageSize::from_mib(1);
        let mut sink = StreamingSink::new(FailingWriter);
        let err = try_execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut sink)
            .expect_err("a failing writer must surface as SimError::Trace");
        match err {
            crate::error::SimError::Trace(e) => assert!(e.to_string().contains("disk full")),
            other => panic!("expected SimError::Trace, got {other}"),
        }
        // The executor *took* the error, so it is reported exactly once:
        // `finish` no longer re-reports it.
        assert_eq!(sink.written(), 0);
        assert!(sink.finish().is_ok());
    }

    #[test]
    fn fallible_executors_match_the_infallible_ones() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(2));
        let m = MessageSize::from_mib(1);
        let mut null = NullSink;
        let plain = execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut null);
        let tried = try_execute_plan_with_sink(&network, &plan, m, Time::ZERO, &mut null).unwrap();
        assert_eq!(plain, tried);

        let mut sized = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        sized.push_forward(NodeId(0), NodeId(1), MessageSize::from_kib(64));
        let plain = execute_sized_plan_with_sink(&network, &sized, Time::ZERO, &mut null);
        let tried =
            try_execute_sized_plan_with_sink(&network, &sized, Time::ZERO, &mut null).unwrap();
        assert_eq!(plain, tried);
    }

    #[test]
    fn the_clock_invariant_is_checked_in_every_build_profile() {
        let mut queue: EventQueue<u32> = EventQueue::new();
        queue.push(Time::from_millis(5.0), 0).unwrap();
        assert!(queue.pop().is_some());
        // Scheduling into the past is a structured error, not a debug-only
        // assertion.
        let err = queue.push(Time::from_millis(1.0), 1).unwrap_err();
        match err {
            crate::error::SimError::ClockRegression { scheduled, now } => {
                assert_eq!(scheduled, Time::from_millis(1.0));
                assert_eq!(now, Time::from_millis(5.0));
            }
            other => panic!("expected ClockRegression, got {other}"),
        }
        // NaN times (the INF−INF arithmetic class) are rejected too.
        let nan = Time::INFINITY - Time::INFINITY;
        assert!(queue.push(nan, 2).is_err());
    }

    #[test]
    fn duplicate_deliveries_keep_the_first_arrival() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        assert_eq!(
            outcome.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), m)
        );
        assert_eq!(outcome.messages, 2);
    }
}
