//! The discrete-event execution engine.

use crate::network::NodeNetwork;
use crate::outcome::SimulationOutcome;
use crate::plan::SendPlan;
use crate::trace::{TraceEvent, TraceKind};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event waiting in the simulation queue: a message arriving at a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    time: Time,
    /// Monotonic sequence number breaking ties deterministically (FIFO order for
    /// simultaneous arrivals).
    seq: u64,
    from: NodeId,
    to: NodeId,
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Shared wide-area path occupancy per unordered cluster pair: each pair
/// offers `wan_concurrency` channels at full per-flow rate; transfers beyond
/// that serialise on the earliest-free channel. One definition serves both
/// executors so the broadcast and personalised paths can never simulate
/// different contention models for the same grid.
struct WanChannels {
    free: Vec<Vec<Time>>,
    num_clusters: usize,
}

impl WanChannels {
    fn new(network: &NodeNetwork) -> Self {
        let num_clusters = network.grid().num_clusters();
        WanChannels {
            free: vec![vec![Time::ZERO; network.wan_concurrency()]; num_clusters * num_clusters],
            num_clusters,
        }
    }

    /// The channel free-times of the unordered pair `{a, b}`.
    fn pair_mut(&mut self, a: usize, b: usize) -> &mut Vec<Time> {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        &mut self.free[lo * self.num_clusters + hi]
    }
}

/// Executes a [`SendPlan`] over a [`NodeNetwork`] for a message of size `m`,
/// starting at time `start_offset` (used to account for scheduling overhead).
///
/// Semantics:
///
/// * the source holds the message at `start_offset`,
/// * when a machine holds the message it issues the forwards listed in its plan
///   entry, in order; each send occupies its network interface for the gap
///   `g(m)` of the corresponding link, and the destination receives the full
///   message `g(m) + L` after the send started,
/// * transfers between two *different* clusters additionally occupy the shared
///   wide-area path between those clusters for the gap: concurrent inter-site
///   transfers over the same cluster pair serialise (the site uplink is a single
///   bottleneck), which is what makes grid-unaware broadcast trees slow on real
///   grids even though each individual sender is idle,
/// * arrivals are processed in global time order (ties broken by issue order),
///   so forwarding cascades propagate correctly.
///
/// Optionally records a full [`TraceEvent`] log via `trace`.
pub fn execute_plan(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    execute_generic(
        network,
        plan.source,
        plan.num_nodes(),
        |node| plan.forwards[node].iter().map(move |&dst| (dst, m)),
        start_offset,
        trace,
    )
}

/// The shared discrete-event core behind [`execute_plan`] and
/// [`execute_sized_plan`]: `forwards_of(node)` yields the ordered
/// `(destination, payload)` sends a machine issues once it holds its data.
/// Monomorphised per caller, so the uniform-payload broadcast path pays
/// nothing for the generality.
fn execute_generic<I>(
    network: &NodeNetwork,
    source: NodeId,
    plan_nodes: usize,
    forwards_of: impl Fn(usize) -> I + Copy,
    start_offset: Time,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome
where
    I: Iterator<Item = (NodeId, MessageSize)>,
{
    let n = network.num_nodes();
    assert_eq!(
        plan_nodes, n,
        "plan covers {plan_nodes} machines but the network has {n}"
    );

    let mut receive_times = vec![Time::INFINITY; n];
    let mut queue: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut messages = 0usize;
    let mut events_processed = 0usize;

    let mut link_free = WanChannels::new(network);

    // A helper issuing all forwards of a machine once it holds its data; each
    // send's gap is priced for that send's payload.
    let issue_forwards = |node: NodeId,
                          ready_at: Time,
                          queue: &mut BinaryHeap<Reverse<Arrival>>,
                          link_free: &mut WanChannels,
                          seq: &mut u64,
                          messages: &mut usize,
                          trace: &mut Option<&mut Vec<TraceEvent>>| {
        let mut nic_free = ready_at;
        for (dst, payload) in forwards_of(node.index()) {
            let gap = network.gap(node, dst, payload);
            let latency = network.latency(node, dst);
            let src_cluster = network.nodes()[node.index()].cluster.index();
            let dst_cluster = network.nodes()[dst.index()].cluster.index();
            let send_start = if src_cluster != dst_cluster {
                let link = link_free.pair_mut(src_cluster, dst_cluster);
                // Take the earliest-free channel of the shared path.
                let channel = link
                    .iter_mut()
                    .min_by_key(|t| **t)
                    .expect("at least one channel per path");
                let start = nic_free.max(*channel);
                *channel = start + gap;
                start
            } else {
                nic_free
            };
            nic_free = send_start + gap;
            let arrival = send_start + gap + latency;
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    kind: TraceKind::SendStart,
                    time: send_start,
                    from: node,
                    to: dst,
                });
            }
            queue.push(Reverse(Arrival {
                time: arrival,
                seq: *seq,
                from: node,
                to: dst,
            }));
            *seq += 1;
            *messages += 1;
        }
    };

    receive_times[source.index()] = start_offset;
    issue_forwards(
        source,
        start_offset,
        &mut queue,
        &mut link_free,
        &mut seq,
        &mut messages,
        &mut trace,
    );

    while let Some(Reverse(arrival)) = queue.pop() {
        events_processed += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent {
                kind: TraceKind::Arrival,
                time: arrival.time,
                from: arrival.from,
                to: arrival.to,
            });
        }
        let idx = arrival.to.index();
        if receive_times[idx].is_finite() {
            // Duplicate delivery (a plan may in principle send twice); the first
            // arrival wins and later copies are ignored.
            continue;
        }
        receive_times[idx] = arrival.time;
        issue_forwards(
            arrival.to,
            arrival.time,
            &mut queue,
            &mut link_free,
            &mut seq,
            &mut messages,
            &mut trace,
        );
    }

    // Machines never reached keep an infinite receive time; the completion below
    // then propagates the problem loudly instead of silently reporting success.
    let completion = receive_times.iter().copied().max().unwrap_or(Time::ZERO);
    SimulationOutcome {
        completion,
        receive_times,
        messages,
        events_processed,
    }
}

/// An event of the staged executor behind [`execute_sized_plan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StagedKind {
    /// A payload arriving at a machine.
    Arrival { from: NodeId, to: NodeId },
    /// A machine attempting to start its next pending send.
    Attempt { node: NodeId },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct StagedEvent {
    time: Time,
    seq: u64,
    kind: StagedKind,
}

impl Ord for StagedEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for StagedEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Executes a [`SizedSendPlan`](crate::plan::SizedSendPlan) — the node-level
/// realisation of the personalised patterns, where every send carries its own
/// payload and release gates.
///
/// Semantics (the conformance-grade model for personalised exchanges; the
/// uniform-payload [`execute_plan`] stays untouched as the broadcast fast
/// path):
///
/// * a machine issues its forwards **in order**; each waits for its
///   [`after_arrivals`](crate::plan::SizedSend::after_arrivals) gate (number
///   of messages received so far) and its
///   [`not_before`](crate::plan::SizedSend::not_before) release time,
/// * a send occupies **both** endpoints' network interfaces for the gap
///   `g(payload)` of the link — the single-port model of
///   `ScheduleEngine::schedule_transfers`, which is what makes the engine's
///   gather/allgather makespans reproducible here (a gather's receives
///   genuinely serialise on the parent's interface),
/// * transfers between two different clusters additionally occupy the shared
///   wide-area path between those clusters (concurrency budget as in
///   [`execute_plan`]),
/// * contention is resolved in global time order (ties by issue order): an
///   attempt whose interfaces are busy re-queues at the earliest time they
///   free up.
///
/// The outcome's per-machine reception time is the **last** arrival (a gather
/// coordinator is done when its whole subtree arrived, not at its first
/// message); machines that receive nothing — the leaves of a gather — report
/// `start_offset`, the moment they already hold their own data.
pub fn execute_sized_plan(
    network: &NodeNetwork,
    plan: &crate::plan::SizedSendPlan,
    start_offset: Time,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    use crate::plan::SizedSend;
    let n = network.num_nodes();
    assert_eq!(
        plan.num_nodes(),
        n,
        "plan covers {} machines but the network has {n}",
        plan.num_nodes()
    );

    let mut link_free = WanChannels::new(network);
    let mut nic_free = vec![start_offset; n];
    let mut arrivals = vec![0u32; n];
    let mut cursor = vec![0usize; n];
    let mut attempt_pending = vec![false; n];
    let mut last_arrival = vec![start_offset; n];
    let mut received_any = vec![false; n];
    let mut queue: BinaryHeap<Reverse<StagedEvent>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut messages = 0usize;
    let mut events_processed = 0usize;

    // Schedules the next gated-and-ready forward of `node`, if any.
    let advance = |node: usize,
                   now: Time,
                   cursor: &[usize],
                   arrivals: &[u32],
                   attempt_pending: &mut [bool],
                   nic_free: &[Time],
                   queue: &mut BinaryHeap<Reverse<StagedEvent>>,
                   seq: &mut u64| {
        if attempt_pending[node] || cursor[node] >= plan.forwards[node].len() {
            return;
        }
        let send: &SizedSend = &plan.forwards[node][cursor[node]];
        if arrivals[node] < send.after_arrivals {
            return;
        }
        let at = now.max(nic_free[node]).max(send.not_before);
        attempt_pending[node] = true;
        queue.push(Reverse(StagedEvent {
            time: at,
            seq: *seq,
            kind: StagedKind::Attempt {
                node: NodeId(node as u32),
            },
        }));
        *seq += 1;
    };

    for node in 0..n {
        advance(
            node,
            start_offset,
            &cursor,
            &arrivals,
            &mut attempt_pending,
            &nic_free,
            &mut queue,
            &mut seq,
        );
    }

    while let Some(Reverse(event)) = queue.pop() {
        match event.kind {
            StagedKind::Attempt { node } => {
                let idx = node.index();
                let send = plan.forwards[idx][cursor[idx]];
                let src_cluster = network.nodes()[idx].cluster.index();
                let dst_cluster = network.nodes()[send.to.index()].cluster.index();
                let gap = network.gap(node, send.to, send.payload);
                // The earliest feasible start given everything committed so
                // far; constraints only move forward, so re-queueing at this
                // time converges.
                let mut earliest = event
                    .time
                    .max(nic_free[idx])
                    .max(nic_free[send.to.index()])
                    .max(send.not_before);
                let channel_slot = if src_cluster != dst_cluster {
                    let link = link_free.pair_mut(src_cluster, dst_cluster);
                    let (slot, &free) = link
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, t)| **t)
                        .expect("at least one channel per path");
                    earliest = earliest.max(free);
                    Some(slot)
                } else {
                    None
                };
                if earliest > event.time {
                    queue.push(Reverse(StagedEvent {
                        time: earliest,
                        seq,
                        kind: event.kind,
                    }));
                    seq += 1;
                    continue;
                }
                let start = event.time;
                let release = start + gap;
                nic_free[idx] = release;
                nic_free[send.to.index()] = release;
                if let Some(slot) = channel_slot {
                    link_free.pair_mut(src_cluster, dst_cluster)[slot] = release;
                }
                let arrival = release + network.latency(node, send.to);
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent {
                        kind: TraceKind::SendStart,
                        time: start,
                        from: node,
                        to: send.to,
                    });
                }
                queue.push(Reverse(StagedEvent {
                    time: arrival,
                    seq,
                    kind: StagedKind::Arrival {
                        from: node,
                        to: send.to,
                    },
                }));
                seq += 1;
                messages += 1;
                cursor[idx] += 1;
                attempt_pending[idx] = false;
                advance(
                    idx,
                    start,
                    &cursor,
                    &arrivals,
                    &mut attempt_pending,
                    &nic_free,
                    &mut queue,
                    &mut seq,
                );
            }
            StagedKind::Arrival { from, to } => {
                events_processed += 1;
                if let Some(t) = trace.as_deref_mut() {
                    t.push(TraceEvent {
                        kind: TraceKind::Arrival,
                        time: event.time,
                        from,
                        to,
                    });
                }
                let idx = to.index();
                arrivals[idx] += 1;
                received_any[idx] = true;
                last_arrival[idx] = last_arrival[idx].max(event.time);
                advance(
                    idx,
                    event.time,
                    &cursor,
                    &arrivals,
                    &mut attempt_pending,
                    &nic_free,
                    &mut queue,
                    &mut seq,
                );
            }
        }
    }

    // A machine with unissued forwards at drain time is starved — its gate
    // never opened. Propagate loudly instead of reporting success.
    let starved = (0..n).any(|i| cursor[i] < plan.forwards[i].len());
    let receive_times: Vec<Time> = (0..n)
        .map(|i| {
            if starved && (cursor[i] < plan.forwards[i].len() || !received_any[i]) {
                Time::INFINITY
            } else {
                last_arrival[i]
            }
        })
        .collect();
    let completion = receive_times.iter().copied().max().unwrap_or(Time::ZERO);
    SimulationOutcome {
        completion,
        receive_times,
        messages,
        events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, ClusterId, Grid};

    fn grid() -> Grid {
        grid5000_table3()
    }

    #[test]
    fn empty_plan_only_covers_the_source() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::empty(NodeId(0), network.num_nodes());
        let outcome = execute_plan(&network, &plan, MessageSize::from_mib(1), Time::ZERO, None);
        assert_eq!(outcome.receive_time(NodeId(0)), Time::ZERO);
        assert!(!outcome.completion.is_finite());
        assert_eq!(outcome.messages, 0);
    }

    #[test]
    fn single_forward_costs_one_transfer() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        // Send to every node from node 0 would be a flat tree; here just one.
        plan.forwards[0].push(NodeId(1));
        // Complete the plan so completion stays finite: everyone else is also
        // served directly by node 0 (flat) — but for this test we only check the
        // first arrival, so keep the rest unreached and look at node 1 only.
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let expected = network.transfer(NodeId(0), NodeId(1), m);
        assert_eq!(outcome.receive_time(NodeId(1)), expected);
    }

    #[test]
    fn sender_interface_serialises_gap() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(2));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let gap = network.gap(NodeId(0), NodeId(1), m);
        let t1 = outcome.receive_time(NodeId(1));
        let t2 = outcome.receive_time(NodeId(2));
        // Second send starts one gap later.
        assert!(t2.approx_eq(t1 + gap, Time::from_micros(1.0)));
    }

    #[test]
    fn start_offset_shifts_everything() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let base = execute_plan(&network, &plan, m, Time::ZERO, None);
        let offset = execute_plan(&network, &plan, m, Time::from_millis(5.0), None);
        assert!(offset.receive_time(NodeId(1)).approx_eq(
            base.receive_time(NodeId(1)) + Time::from_millis(5.0),
            Time::from_micros(1.0)
        ));
    }

    #[test]
    fn full_binomial_plan_reaches_everyone_and_traces() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(0));
        let mut trace = Vec::new();
        let outcome = execute_plan(
            &network,
            &plan,
            MessageSize::from_mib(1),
            Time::ZERO,
            Some(&mut trace),
        );
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert_eq!(outcome.events_processed, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        // Trace holds one send and one arrival per message.
        assert_eq!(trace.len(), 2 * 87);
        assert!(trace.iter().any(|e| e.kind == TraceKind::SendStart));
    }

    #[test]
    fn sized_plan_execution_prices_each_send_for_its_payload() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        use crate::plan::SizedSendPlan;
        let mut small = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        small.push_forward(NodeId(0), NodeId(1), MessageSize::from_kib(64));
        let mut large = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        large.push_forward(NodeId(0), NodeId(1), MessageSize::from_mib(4));
        let fast = execute_sized_plan(&network, &small, Time::ZERO, None);
        let slow = execute_sized_plan(&network, &large, Time::ZERO, None);
        assert!(fast.receive_time(NodeId(1)) < slow.receive_time(NodeId(1)));
        assert_eq!(
            fast.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), MessageSize::from_kib(64))
        );
    }

    #[test]
    fn staged_sends_respect_gates_and_release_times() {
        use crate::plan::{SizedSend, SizedSendPlan};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let m = MessageSize::from_kib(64);
        // Node 0 sends to node 1 no earlier than 100 ms; node 1 forwards to
        // node 2 only after that arrival.
        let mut plan = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(SizedSend {
            to: NodeId(1),
            payload: m,
            not_before: Time::from_millis(100.0),
            after_arrivals: 0,
        });
        plan.forwards[1].push(SizedSend {
            to: NodeId(2),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 1,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        let hop = network.transfer(NodeId(0), NodeId(1), m);
        assert!(outcome
            .receive_time(NodeId(1))
            .approx_eq(Time::from_millis(100.0) + hop, Time::from_micros(1.0)));
        assert!(outcome.receive_time(NodeId(2)) > outcome.receive_time(NodeId(1)));
        assert_eq!(outcome.messages, 2);
    }

    #[test]
    fn staged_sends_occupy_both_endpoint_interfaces() {
        use crate::plan::SizedSendPlan;
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let m = MessageSize::from_mib(1);
        // Nodes 1 and 2 both send to node 0 at t = 0 (a 2-child gather): the
        // receives must serialise on node 0's interface, so the last arrival
        // is two gaps plus one latency, not max of two parallel transfers.
        let mut plan = SizedSendPlan::empty(NodeId(1), network.num_nodes());
        plan.forwards[1].push(crate::plan::SizedSend {
            to: NodeId(0),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 0,
        });
        plan.forwards[2].push(crate::plan::SizedSend {
            to: NodeId(0),
            payload: m,
            not_before: Time::ZERO,
            after_arrivals: 0,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        let gap = network.gap(NodeId(1), NodeId(0), m);
        let lat = network.latency(NodeId(1), NodeId(0));
        assert!(outcome
            .receive_time(NodeId(0))
            .approx_eq(gap + gap + lat, Time::from_micros(1.0)));
    }

    #[test]
    fn starved_gates_propagate_loudly() {
        use crate::plan::{SizedSend, SizedSendPlan};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        // Node 3 waits for an arrival that never comes.
        plan.forwards[3].push(SizedSend {
            to: NodeId(4),
            payload: MessageSize::from_kib(1),
            not_before: Time::ZERO,
            after_arrivals: 1,
        });
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        assert!(!outcome.completion.is_finite());
    }

    #[test]
    fn relay_scatter_executes_node_level_end_to_end() {
        use crate::plan::SizedSendPlan;
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(64);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
        let mut trace = Vec::new();
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, Some(&mut trace));
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        assert_eq!(trace.len(), 2 * 87);
    }

    #[test]
    fn gather_executes_node_level_and_reproduces_the_engine_makespan() {
        use crate::plan::SizedSendPlan;
        use gridcast_core::{RelayGatherProblem, RelayOrdering};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(64);
        let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
        for ordering in [RelayOrdering::Direct, RelayOrdering::EarliestCompletion] {
            let schedule = problem.schedule(ordering);
            let plan = SizedSendPlan::from_gather_schedule(&grid, &schedule, per_node);
            let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
            assert!(outcome.completion.is_finite(), "{ordering:?}");
            // GRID'5000 latencies are symmetric per pair, so the reflected
            // receive windows stay feasible and the replay is exact.
            assert!(
                outcome
                    .completion
                    .approx_eq(schedule.makespan(), Time::from_micros(10.0)),
                "{ordering:?}: simulated {} vs engine {}",
                outcome.completion,
                schedule.makespan()
            );
            // All data converges on the root's coordinator.
            let root = grid.coordinator(ClusterId(0));
            assert_eq!(outcome.receive_time(root), outcome.completion);
        }
    }

    #[test]
    fn allgather_executes_node_level_and_reproduces_the_engine_makespan() {
        use crate::plan::SizedSendPlan;
        use gridcast_core::allgather_schedule;
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(16);
        let schedule = allgather_schedule(&grid, per_node);
        let plan = SizedSendPlan::from_allgather_schedule(&grid, &schedule, per_node);
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, None);
        assert!(outcome.completion.is_finite());
        assert!(
            outcome
                .completion
                .approx_eq(schedule.makespan(), Time::from_micros(10.0)),
            "simulated {} vs engine {}",
            outcome.completion,
            schedule.makespan()
        );
        // Every machine received something (at minimum the redistribution or
        // a local gather block), and every machine holding data forwarded on
        // time: no starvation.
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn duplicate_deliveries_keep_the_first_arrival() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        assert_eq!(
            outcome.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), m)
        );
        assert_eq!(outcome.messages, 2);
    }
}
