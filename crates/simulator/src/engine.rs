//! The discrete-event execution engine.

use crate::network::NodeNetwork;
use crate::outcome::SimulationOutcome;
use crate::plan::SendPlan;
use crate::trace::{TraceEvent, TraceKind};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::NodeId;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An event waiting in the simulation queue: a message arriving at a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Arrival {
    time: Time,
    /// Monotonic sequence number breaking ties deterministically (FIFO order for
    /// simultaneous arrivals).
    seq: u64,
    from: NodeId,
    to: NodeId,
}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Executes a [`SendPlan`] over a [`NodeNetwork`] for a message of size `m`,
/// starting at time `start_offset` (used to account for scheduling overhead).
///
/// Semantics:
///
/// * the source holds the message at `start_offset`,
/// * when a machine holds the message it issues the forwards listed in its plan
///   entry, in order; each send occupies its network interface for the gap
///   `g(m)` of the corresponding link, and the destination receives the full
///   message `g(m) + L` after the send started,
/// * transfers between two *different* clusters additionally occupy the shared
///   wide-area path between those clusters for the gap: concurrent inter-site
///   transfers over the same cluster pair serialise (the site uplink is a single
///   bottleneck), which is what makes grid-unaware broadcast trees slow on real
///   grids even though each individual sender is idle,
/// * arrivals are processed in global time order (ties broken by issue order),
///   so forwarding cascades propagate correctly.
///
/// Optionally records a full [`TraceEvent`] log via `trace`.
pub fn execute_plan(
    network: &NodeNetwork,
    plan: &SendPlan,
    m: MessageSize,
    start_offset: Time,
    trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    execute_generic(
        network,
        plan.source,
        plan.num_nodes(),
        |node| plan.forwards[node].iter().map(move |&dst| (dst, m)),
        start_offset,
        trace,
    )
}

/// The shared discrete-event core behind [`execute_plan`] and
/// [`execute_sized_plan`]: `forwards_of(node)` yields the ordered
/// `(destination, payload)` sends a machine issues once it holds its data.
/// Monomorphised per caller, so the uniform-payload broadcast path pays
/// nothing for the generality.
fn execute_generic<I>(
    network: &NodeNetwork,
    source: NodeId,
    plan_nodes: usize,
    forwards_of: impl Fn(usize) -> I + Copy,
    start_offset: Time,
    mut trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome
where
    I: Iterator<Item = (NodeId, MessageSize)>,
{
    let n = network.num_nodes();
    assert_eq!(
        plan_nodes, n,
        "plan covers {plan_nodes} machines but the network has {n}"
    );

    let mut receive_times = vec![Time::INFINITY; n];
    let mut queue: BinaryHeap<Reverse<Arrival>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut messages = 0usize;
    let mut events_processed = 0usize;

    // Shared wide-area path occupancy per unordered cluster pair: each pair
    // offers `wan_concurrency` channels at full per-flow rate; transfers beyond
    // that serialise on the earliest-free channel.
    let num_clusters = network.grid().num_clusters();
    let channels = network.wan_concurrency();
    let mut link_free: Vec<Vec<Time>> =
        vec![vec![Time::ZERO; channels]; num_clusters * num_clusters];
    let pair_index = |a: usize, b: usize| {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        lo * num_clusters + hi
    };

    // A helper issuing all forwards of a machine once it holds its data; each
    // send's gap is priced for that send's payload.
    let issue_forwards = |node: NodeId,
                          ready_at: Time,
                          queue: &mut BinaryHeap<Reverse<Arrival>>,
                          link_free: &mut Vec<Vec<Time>>,
                          seq: &mut u64,
                          messages: &mut usize,
                          trace: &mut Option<&mut Vec<TraceEvent>>| {
        let mut nic_free = ready_at;
        for (dst, payload) in forwards_of(node.index()) {
            let gap = network.gap(node, dst, payload);
            let latency = network.latency(node, dst);
            let src_cluster = network.nodes()[node.index()].cluster.index();
            let dst_cluster = network.nodes()[dst.index()].cluster.index();
            let send_start = if src_cluster != dst_cluster {
                let link = &mut link_free[pair_index(src_cluster, dst_cluster)];
                // Take the earliest-free channel of the shared path.
                let channel = link
                    .iter_mut()
                    .min_by_key(|t| **t)
                    .expect("at least one channel per path");
                let start = nic_free.max(*channel);
                *channel = start + gap;
                start
            } else {
                nic_free
            };
            nic_free = send_start + gap;
            let arrival = send_start + gap + latency;
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceEvent {
                    kind: TraceKind::SendStart,
                    time: send_start,
                    from: node,
                    to: dst,
                });
            }
            queue.push(Reverse(Arrival {
                time: arrival,
                seq: *seq,
                from: node,
                to: dst,
            }));
            *seq += 1;
            *messages += 1;
        }
    };

    receive_times[source.index()] = start_offset;
    issue_forwards(
        source,
        start_offset,
        &mut queue,
        &mut link_free,
        &mut seq,
        &mut messages,
        &mut trace,
    );

    while let Some(Reverse(arrival)) = queue.pop() {
        events_processed += 1;
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceEvent {
                kind: TraceKind::Arrival,
                time: arrival.time,
                from: arrival.from,
                to: arrival.to,
            });
        }
        let idx = arrival.to.index();
        if receive_times[idx].is_finite() {
            // Duplicate delivery (a plan may in principle send twice); the first
            // arrival wins and later copies are ignored.
            continue;
        }
        receive_times[idx] = arrival.time;
        issue_forwards(
            arrival.to,
            arrival.time,
            &mut queue,
            &mut link_free,
            &mut seq,
            &mut messages,
            &mut trace,
        );
    }

    // Machines never reached keep an infinite receive time; the completion below
    // then propagates the problem loudly instead of silently reporting success.
    let completion = receive_times.iter().copied().max().unwrap_or(Time::ZERO);
    SimulationOutcome {
        completion,
        receive_times,
        messages,
        events_processed,
    }
}

/// Executes a [`SizedSendPlan`](crate::plan::SizedSendPlan) — the node-level
/// realisation of the personalised patterns, where every send carries its own
/// payload — with the same semantics as [`execute_plan`]: per-send interface
/// occupancy of `g(payload)`, shared wide-area paths serialising beyond the
/// concurrency budget, and arrivals processed in global time order.
///
/// The uniform-payload [`execute_plan`] stays untouched as the broadcast fast
/// path; this sibling prices every gap for the bytes that specific send moves
/// (a relayed concatenation, an aggregate block, or one machine's slice).
pub fn execute_sized_plan(
    network: &NodeNetwork,
    plan: &crate::plan::SizedSendPlan,
    start_offset: Time,
    trace: Option<&mut Vec<TraceEvent>>,
) -> SimulationOutcome {
    execute_generic(
        network,
        plan.source,
        plan.num_nodes(),
        |node| plan.forwards[node].iter().copied(),
        start_offset,
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, ClusterId, Grid};

    fn grid() -> Grid {
        grid5000_table3()
    }

    #[test]
    fn empty_plan_only_covers_the_source() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::empty(NodeId(0), network.num_nodes());
        let outcome = execute_plan(&network, &plan, MessageSize::from_mib(1), Time::ZERO, None);
        assert_eq!(outcome.receive_time(NodeId(0)), Time::ZERO);
        assert!(!outcome.completion.is_finite());
        assert_eq!(outcome.messages, 0);
    }

    #[test]
    fn single_forward_costs_one_transfer() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        // Send to every node from node 0 would be a flat tree; here just one.
        plan.forwards[0].push(NodeId(1));
        // Complete the plan so completion stays finite: everyone else is also
        // served directly by node 0 (flat) — but for this test we only check the
        // first arrival, so keep the rest unreached and look at node 1 only.
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let expected = network.transfer(NodeId(0), NodeId(1), m);
        assert_eq!(outcome.receive_time(NodeId(1)), expected);
    }

    #[test]
    fn sender_interface_serialises_gap() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(2));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        let gap = network.gap(NodeId(0), NodeId(1), m);
        let t1 = outcome.receive_time(NodeId(1));
        let t2 = outcome.receive_time(NodeId(2));
        // Second send starts one gap later.
        assert!(t2.approx_eq(t1 + gap, Time::from_micros(1.0)));
    }

    #[test]
    fn start_offset_shifts_everything() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let base = execute_plan(&network, &plan, m, Time::ZERO, None);
        let offset = execute_plan(&network, &plan, m, Time::from_millis(5.0), None);
        assert!(offset.receive_time(NodeId(1)).approx_eq(
            base.receive_time(NodeId(1)) + Time::from_millis(5.0),
            Time::from_micros(1.0)
        ));
    }

    #[test]
    fn full_binomial_plan_reaches_everyone_and_traces() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let plan = SendPlan::binomial_over_all_nodes(&grid, ClusterId(0));
        let mut trace = Vec::new();
        let outcome = execute_plan(
            &network,
            &plan,
            MessageSize::from_mib(1),
            Time::ZERO,
            Some(&mut trace),
        );
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert_eq!(outcome.events_processed, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        // Trace holds one send and one arrival per message.
        assert_eq!(trace.len(), 2 * 87);
        assert!(trace.iter().any(|e| e.kind == TraceKind::SendStart));
    }

    #[test]
    fn sized_plan_execution_prices_each_send_for_its_payload() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        use crate::plan::SizedSendPlan;
        let mut small = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        small.forwards[0].push((NodeId(1), MessageSize::from_kib(64)));
        let mut large = SizedSendPlan::empty(NodeId(0), network.num_nodes());
        large.forwards[0].push((NodeId(1), MessageSize::from_mib(4)));
        let fast = execute_sized_plan(&network, &small, Time::ZERO, None);
        let slow = execute_sized_plan(&network, &large, Time::ZERO, None);
        assert!(fast.receive_time(NodeId(1)) < slow.receive_time(NodeId(1)));
        assert_eq!(
            fast.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), MessageSize::from_kib(64))
        );
    }

    #[test]
    fn relay_scatter_executes_node_level_end_to_end() {
        use crate::plan::SizedSendPlan;
        use gridcast_core::{RelayOrdering, RelayScatterProblem};
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let per_node = MessageSize::from_kib(64);
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let schedule = problem.schedule(RelayOrdering::EarliestCompletion);
        let plan = SizedSendPlan::from_relay_schedule(&grid, &schedule, per_node);
        let mut trace = Vec::new();
        let outcome = execute_sized_plan(&network, &plan, Time::ZERO, Some(&mut trace));
        assert!(outcome.completion.is_finite());
        assert_eq!(outcome.messages, 87);
        assert!(outcome.receive_times.iter().all(|t| t.is_finite()));
        assert_eq!(trace.len(), 2 * 87);
    }

    #[test]
    fn duplicate_deliveries_keep_the_first_arrival() {
        let grid = grid();
        let network = NodeNetwork::new(&grid);
        let mut plan = SendPlan::empty(NodeId(0), network.num_nodes());
        plan.forwards[0].push(NodeId(1));
        plan.forwards[0].push(NodeId(1));
        let m = MessageSize::from_mib(1);
        let outcome = execute_plan(&network, &plan, m, Time::ZERO, None);
        assert_eq!(
            outcome.receive_time(NodeId(1)),
            network.transfer(NodeId(0), NodeId(1), m)
        );
        assert_eq!(outcome.messages, 2);
    }
}
