//! Structured simulator errors.
//!
//! The discrete-event core used to guard its clock with a *debug* assertion:
//! release builds would silently reorder the simulation if INF−INF style
//! arithmetic ever produced a corrupted time. The invariant is now checked on
//! every push, in every build profile, and the fallible entry points
//! ([`try_execute_plan_with_sink`](crate::engine::try_execute_plan_with_sink),
//! [`try_execute_sized_plan_with_sink`](crate::engine::try_execute_sized_plan_with_sink),
//! [`execute_plan_under_faults`](crate::faults::execute_plan_under_faults))
//! surface a violation as a structured [`SimError`] instead of corrupting the
//! run. The same error path carries [`TraceSink`](crate::TraceSink) writer
//! failures, so a streamed trace that went to a broken pipe is loud too.

use gridcast_plogp::Time;
use std::fmt;

/// An error surfaced by the fallible simulator entry points.
#[derive(Debug)]
pub enum SimError {
    /// An event was scheduled before the current simulated time (or at a NaN
    /// time). The clock never runs backwards; this is the INF-arithmetic
    /// class of bug the engine's NaN audit hunts, reported instead of
    /// silently reordering the simulation.
    ClockRegression {
        /// The offending event time.
        scheduled: Time,
        /// The simulated clock when the push happened.
        now: Time,
    },
    /// The trace sink's writer failed; the first I/O error is carried here
    /// (see [`TraceSink::take_error`](crate::TraceSink::take_error)).
    Trace(std::io::Error),
    /// A what-if evaluation had an empty candidate set to pick a winner from
    /// (no heuristics configured), so "the best makespan" does not exist.
    /// Surfaced by the fallible runner entry points
    /// ([`WhatIfRunner::try_run`](crate::WhatIfRunner::try_run) and friends)
    /// instead of the `min().unwrap()` panic this class of bug used to be.
    NoCandidates,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ClockRegression { scheduled, now } => write!(
                f,
                "event scheduled at {scheduled} before the current simulated time {now} — \
                 the clock never runs backwards"
            ),
            SimError::Trace(e) => write!(f, "trace sink write failed: {e}"),
            SimError::NoCandidates => write!(
                f,
                "no candidate heuristics to choose a winner from — the evaluation \
                 needs at least one"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::ClockRegression { .. } | SimError::NoCandidates => None,
            SimError::Trace(e) => Some(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_times() {
        let e = SimError::ClockRegression {
            scheduled: Time::from_millis(1.0),
            now: Time::from_millis(2.0),
        };
        let text = e.to_string();
        assert!(text.contains("1.000ms"));
        assert!(text.contains("2.000ms"));
    }

    #[test]
    fn no_candidates_is_self_explanatory() {
        let e = SimError::NoCandidates;
        assert!(e.to_string().contains("no candidate heuristics"));
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn trace_errors_chain_their_source() {
        let e = SimError::Trace(std::io::Error::other("pipe closed"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("pipe closed"));
    }
}
