//! The GRID'5000 testbed snapshot of Table 3.
//!
//! The practical evaluation of Section 7 uses 88 machines of the French GRID'5000
//! platform, split by Lowekamp's algorithm (tolerance ρ = 30 %) into six logical
//! clusters:
//!
//! | cluster | machines | site | intra-cluster latency |
//! |---------|----------|------|-----------------------|
//! | 0 | 31 | Orsay    | 47.56 µs |
//! | 1 | 29 | Orsay    | 47.92 µs |
//! | 2 | 6  | IDPOT    | 35.52 µs |
//! | 3 | 1  | IDPOT    | — (singleton) |
//! | 4 | 1  | IDPOT    | — (singleton) |
//! | 5 | 20 | Toulouse | 27.53 µs |
//!
//! Table 3 reports only latencies. The paper's authors additionally measured gap
//! functions with the pLogP tool but do not print them; this module therefore
//! substitutes affine gap functions with bandwidths chosen per link class
//! (wide-area RENATER links of the 2006 era vs. switched gigabit inside a site).
//! The substitution is recorded in DESIGN.md; it preserves the property that the
//! evaluation depends on — wide-area transfers cost one to two orders of
//! magnitude more than intra-site ones and large clusters take a non-negligible
//! time to finish their internal broadcast.

use crate::{Cluster, ClusterId, Grid, SquareMatrix};
use gridcast_plogp::{PLogP, Time};
use serde::{Deserialize, Serialize};

/// Number of logical clusters in the Table 3 snapshot.
pub const NUM_CLUSTERS: usize = 6;

/// Latency matrix of Table 3, in microseconds. Diagonal entries are the
/// intra-cluster latencies (0 for the singleton clusters 3 and 4, printed as "-"
/// in the paper).
pub const TABLE3_LATENCY_US: [[f64; NUM_CLUSTERS]; NUM_CLUSTERS] = [
    [47.56, 62.10, 12181.52, 12187.24, 12197.49, 5210.99],
    [62.10, 47.92, 12181.52, 12198.03, 12195.22, 5211.47],
    [12181.52, 12181.52, 35.52, 60.08, 60.08, 5388.49],
    [12187.24, 12198.03, 60.08, 0.0, 242.47, 5393.98],
    [12197.49, 12195.22, 60.08, 242.47, 0.0, 5394.10],
    [5210.99, 5211.47, 5388.49, 5393.98, 5394.10, 27.53],
];

/// Cluster names as used in the paper.
pub const CLUSTER_NAMES: [&str; NUM_CLUSTERS] = [
    "Orsay-A",
    "Orsay-B",
    "IDPOT",
    "IDPOT-solo-1",
    "IDPOT-solo-2",
    "Toulouse",
];

/// Cluster sizes (machines) as used in the paper. Total: 88.
pub const CLUSTER_SIZES: [u32; NUM_CLUSTERS] = [31, 29, 6, 1, 1, 20];

/// Effective bandwidth (bytes/second) assumed for intra-site links (switched
/// gigabit Ethernet of the era, ~110 MB/s sustained).
pub const LAN_BANDWIDTH: f64 = 110e6;

/// Effective bandwidth assumed for the Orsay ↔ IDPOT wide-area path (the slowest
/// path of Table 3, ~12 ms latency). A single 2006-era TCP stream over a ~12 ms
/// RTT path is window-limited to a couple of MB/s, which is also what makes the
/// flat tree several times slower than the grid-aware schedules in Figure 6.
pub const WAN_SLOW_BANDWIDTH: f64 = 1.8e6;

/// Effective bandwidth assumed for the other wide-area paths (~5 ms latency).
pub const WAN_FAST_BANDWIDTH: f64 = 4.0e6;

/// Fixed per-message gap cost applied to every link (software stack traversal).
pub const FIXED_GAP_US: f64 = 30.0;

/// A declarative description of the Table 3 snapshot, mostly useful for reports
/// and for regenerating the table itself.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid5000Spec {
    /// Cluster names.
    pub names: Vec<String>,
    /// Cluster sizes (number of machines).
    pub sizes: Vec<u32>,
    /// Latency matrix in microseconds (diagonal = intra-cluster latency).
    pub latency_us: SquareMatrix<f64>,
}

impl Grid5000Spec {
    /// The spec straight from Table 3.
    pub fn table3() -> Self {
        let flat: Vec<f64> = TABLE3_LATENCY_US.iter().flatten().copied().collect();
        Grid5000Spec {
            names: CLUSTER_NAMES.iter().map(|s| s.to_string()).collect(),
            sizes: CLUSTER_SIZES.to_vec(),
            latency_us: SquareMatrix::from_rows(NUM_CLUSTERS, flat),
        }
    }

    /// Total number of machines (88 in the paper).
    pub fn total_machines(&self) -> u32 {
        self.sizes.iter().sum()
    }
}

/// Chooses the effective bandwidth of a link from its latency, mirroring the
/// communication-level classes of Table 1.
fn bandwidth_for_latency(latency: Time) -> f64 {
    if latency >= Time::from_millis(10.0) {
        WAN_SLOW_BANDWIDTH
    } else if latency >= Time::from_millis(1.0) {
        WAN_FAST_BANDWIDTH
    } else {
        LAN_BANDWIDTH
    }
}

fn link_model(latency_us: f64) -> PLogP {
    let latency = Time::from_micros(latency_us);
    PLogP::affine(
        latency,
        Time::from_micros(FIXED_GAP_US),
        bandwidth_for_latency(latency),
    )
}

/// Builds the full 88-machine, 6-cluster grid of Table 3.
///
/// Every cluster is in *modelled* mode: its intra-cluster broadcast time is
/// predicted by the collective models from its own pLogP parameters (diagonal of
/// Table 3 plus the LAN bandwidth assumption), exactly as the modified MagPIe
/// library of the paper predicts it from measured parameters.
pub fn grid5000_table3() -> Grid {
    let spec = Grid5000Spec::table3();
    let mut builder = Grid::builder();
    for i in 0..NUM_CLUSTERS {
        let intra_latency_us = spec.latency_us[(i, i)];
        let cluster = if spec.sizes[i] <= 1 {
            // Singleton clusters have no intra-cluster communication; give them a
            // zero-cost placeholder model.
            Cluster::with_fixed_time(ClusterId(i), spec.names[i].clone(), 1, Time::ZERO)
        } else {
            Cluster::with_plogp(
                ClusterId(i),
                spec.names[i].clone(),
                spec.sizes[i],
                link_model(intra_latency_us),
            )
        };
        builder = builder.cluster(cluster);
    }
    for i in 0..NUM_CLUSTERS {
        for j in (i + 1)..NUM_CLUSTERS {
            builder = builder.link_symmetric(
                ClusterId(i),
                ClusterId(j),
                link_model(spec.latency_us[(i, j)]),
            );
        }
    }
    builder.build().expect("Table 3 grid is fully specified")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::{classify_latency, CommunicationLevel};
    use gridcast_plogp::MessageSize;

    #[test]
    fn spec_matches_the_paper() {
        let spec = Grid5000Spec::table3();
        assert_eq!(spec.total_machines(), 88);
        assert_eq!(spec.sizes, vec![31, 29, 6, 1, 1, 20]);
        assert!(spec.latency_us.is_symmetric());
        // Spot-check a few values against Table 3.
        assert_eq!(spec.latency_us[(0, 5)], 5210.99);
        assert_eq!(spec.latency_us[(3, 4)], 242.47);
        assert_eq!(spec.latency_us[(2, 2)], 35.52);
    }

    #[test]
    fn grid_reproduces_table3_latencies() {
        let grid = grid5000_table3();
        assert_eq!(grid.num_clusters(), 6);
        assert_eq!(grid.num_nodes(), 88);
        let l = grid.latency(ClusterId(0), ClusterId(2));
        assert!((l.as_micros() - 12181.52).abs() < 1e-6);
        let l = grid.latency(ClusterId(5), ClusterId(1));
        assert!((l.as_micros() - 5211.47).abs() < 1e-6);
    }

    #[test]
    fn wan_links_are_much_slower_than_lan_links() {
        let grid = grid5000_table3();
        let m = MessageSize::from_mib(1);
        let wan = grid.transfer_time(ClusterId(0), ClusterId(2), m);
        let lan = grid.transfer_time(ClusterId(0), ClusterId(1), m);
        assert!(
            wan > lan * 10.0,
            "wide-area transfer ({wan}) should dwarf the intra-site one ({lan})"
        );
    }

    #[test]
    fn latency_classes_match_table1_levels() {
        let grid = grid5000_table3();
        assert_eq!(
            classify_latency(grid.latency(ClusterId(0), ClusterId(3))),
            CommunicationLevel::WideArea
        );
        assert_eq!(
            classify_latency(grid.latency(ClusterId(2), ClusterId(4))),
            CommunicationLevel::LocalHost
        );
    }

    #[test]
    fn singleton_clusters_have_zero_intra_time() {
        let grid = grid5000_table3();
        let m = MessageSize::from_mib(4);
        assert_eq!(
            grid.cluster(ClusterId(3)).naive_broadcast_time(m),
            Time::ZERO
        );
        assert_eq!(
            grid.cluster(ClusterId(4)).naive_broadcast_time(m),
            Time::ZERO
        );
        assert!(grid.cluster(ClusterId(0)).naive_broadcast_time(m) > Time::ZERO);
    }
}
