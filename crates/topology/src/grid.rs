//! The [`Grid`]: a set of clusters plus inter-cluster link parameters.

use crate::{Cluster, ClusterId, IntraClusterParams, Node, NodeId, SquareMatrix};
use gridcast_plogp::{Fnv1a, MessageSize, PLogP, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised while constructing a grid.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// The grid needs at least one cluster.
    NoClusters,
    /// An inter-cluster link references a cluster outside the grid.
    UnknownCluster {
        /// The offending identifier.
        cluster: ClusterId,
    },
    /// A link between two distinct clusters was never configured.
    MissingLink {
        /// Source cluster.
        from: ClusterId,
        /// Destination cluster.
        to: ClusterId,
    },
    /// A cluster was declared with zero machines.
    EmptyCluster {
        /// The offending identifier.
        cluster: ClusterId,
    },
    /// A structural invariant every constructor guarantees was violated — only
    /// reachable through deserialized grids, whose fields are decoded
    /// independently (see [`Grid::check_consistency`]).
    Inconsistent {
        /// The violated invariant, human-readable.
        detail: &'static str,
    },
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::NoClusters => write!(f, "a grid needs at least one cluster"),
            GridError::UnknownCluster { cluster } => {
                write!(f, "link references unknown cluster {cluster}")
            }
            GridError::MissingLink { from, to } => {
                write!(f, "no link parameters configured between {from} and {to}")
            }
            GridError::EmptyCluster { cluster } => {
                write!(f, "cluster {cluster} has no machines")
            }
            GridError::Inconsistent { detail } => {
                write!(f, "inconsistent grid: {detail}")
            }
        }
    }
}

impl std::error::Error for GridError {}

/// A computational grid: clusters plus a full matrix of inter-cluster pLogP
/// parameters.
///
/// Inter-cluster parameters are stored directed (`from → to`); symmetric grids
/// simply store the same parameters in both directions (the builder's
/// [`GridBuilder::link_symmetric`] does this for you). The diagonal is unused by
/// the scheduling heuristics but is kept populated with the cluster's own
/// intra-cluster parameters when available so that traces can report it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Grid {
    clusters: Vec<Cluster>,
    inter: SquareMatrix<PLogP>,
}

impl Grid {
    /// Starts building a grid.
    pub fn builder() -> GridBuilder {
        GridBuilder::default()
    }

    /// Number of clusters.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total number of machines across all clusters.
    pub fn num_nodes(&self) -> u32 {
        self.clusters.iter().map(|c| c.size).sum()
    }

    /// The clusters, indexed by [`ClusterId`].
    #[inline]
    pub fn clusters(&self) -> &[Cluster] {
        &self.clusters
    }

    /// A single cluster.
    #[inline]
    pub fn cluster(&self, id: ClusterId) -> &Cluster {
        &self.clusters[id.index()]
    }

    /// The pLogP parameters of the directed link `from → to`.
    #[inline]
    pub fn link(&self, from: ClusterId, to: ClusterId) -> &PLogP {
        &self.inter[(from.index(), to.index())]
    }

    /// Inter-cluster latency `L_{from,to}`.
    #[inline]
    pub fn latency(&self, from: ClusterId, to: ClusterId) -> Time {
        self.link(from, to).latency()
    }

    /// Inter-cluster gap `g_{from,to}(m)`.
    #[inline]
    pub fn gap(&self, from: ClusterId, to: ClusterId, m: MessageSize) -> Time {
        self.link(from, to).gap(m)
    }

    /// The point-to-point cost `L_{from,to} + g_{from,to}(m)` used by every
    /// heuristic of the paper.
    #[inline]
    pub fn transfer_time(&self, from: ClusterId, to: ClusterId, m: MessageSize) -> Time {
        self.link(from, to).point_to_point(m)
    }

    /// Enumerates all machines of the grid, cluster by cluster, assigning dense
    /// [`NodeId`]s. The first node of each cluster (local rank 0) is the cluster
    /// coordinator that participates in inter-cluster communication.
    pub fn enumerate_nodes(&self) -> Vec<Node> {
        let mut nodes = Vec::with_capacity(self.num_nodes() as usize);
        let mut next = 0u32;
        for cluster in &self.clusters {
            for local_rank in 0..cluster.size {
                nodes.push(Node {
                    id: NodeId(next),
                    name: format!("{}-{}", cluster.name, local_rank),
                    cluster: cluster.id,
                    local_rank,
                });
                next += 1;
            }
        }
        nodes
    }

    /// The node id of the coordinator of `cluster` under [`Grid::enumerate_nodes`]
    /// numbering.
    pub fn coordinator(&self, cluster: ClusterId) -> NodeId {
        let before: u32 = self.clusters[..cluster.index()]
            .iter()
            .map(|c| c.size)
            .sum();
        NodeId(before)
    }

    /// All cluster identifiers.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.clusters.len()).map(ClusterId)
    }

    /// The grid with every directed inter-cluster link reversed: the link
    /// `i → j` of the transposed grid carries the parameters of `j → i` here.
    /// Clusters (sizes, intra models) are unchanged, and the diagonal is
    /// untouched.
    ///
    /// This is the substrate of the **time-reversed duals**: a gather towards
    /// `root` on this grid prices its edges exactly like a scatter from `root`
    /// on the transposed grid (a block travelling `c → root` pays the
    /// `c → root` link, which is the transposed grid's `root → c` entry), so
    /// the scatter machinery runs unchanged on the transposed instance and the
    /// resulting schedule is reversed. On symmetric grids `transposed()`
    /// equals `self`.
    pub fn transposed(&self) -> Grid {
        let n = self.num_clusters();
        let mut inter = self.inter.clone();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = self.inter[(i, j)].clone();
                let b = self.inter[(j, i)].clone();
                inter[(i, j)] = b;
                inter[(j, i)] = a;
            }
        }
        Grid {
            clusters: self.clusters.clone(),
            inter,
        }
    }

    /// The grid with every directed **inter-cluster** link replaced by
    /// `f(from, to, link)`. Clusters (sizes, intra models) and the diagonal
    /// are unchanged.
    ///
    /// This is the substrate of the what-if perturbations: scaled link
    /// capacities, a degraded site uplink, a cluster removed from relay duty
    /// — each is a pure function of the original link matrix, evaluated
    /// against a shared read-only grid without mutating it.
    pub fn map_links(&self, mut f: impl FnMut(ClusterId, ClusterId, &PLogP) -> PLogP) -> Grid {
        let n = self.num_clusters();
        let mut inter = self.inter.clone();
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    inter[(i, j)] = f(ClusterId(i), ClusterId(j), &self.inter[(i, j)]);
                }
            }
        }
        Grid {
            clusters: self.clusters.clone(),
            inter,
        }
    }

    /// A 64-bit content digest of the grid's **full parameter set**: cluster
    /// count, every cluster's name/size/intra model, and every directed link's
    /// pLogP parameters, hashed by IEEE-754 bit pattern.
    ///
    /// Two grids digest equal iff their parameters are bit-identical — the
    /// same shape with one link changed by one ULP digests differently. This
    /// is the grid half of the schedule cache key (the serving layer combines
    /// it with root and payload identity); being a 64-bit hash it is an index,
    /// not a proof, so cache lookups pair it with a full equality check.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        let n = self.clusters.len();
        h.write_u64(n as u64);
        for c in &self.clusters {
            h.write_str(&c.name).write_u64(u64::from(c.size));
            match &c.intra {
                IntraClusterParams::Fixed { broadcast_time } => {
                    h.write_u64(0).write_f64(broadcast_time.as_secs());
                }
                IntraClusterParams::Modelled { plogp } => {
                    h.write_u64(1);
                    plogp.digest_into(&mut h);
                }
            }
        }
        // The whole matrix, diagonal included (it mirrors the intra model).
        for i in 0..n {
            for j in 0..n {
                self.inter[(i, j)].digest_into(&mut h);
            }
        }
        h.finish()
    }

    /// Replaces one directed inter-cluster link in place.
    ///
    /// This is the incremental counterpart of [`Grid::map_links`]: a warm
    /// what-if scratch grid patches the handful of links a perturbation
    /// touches (and later restores them from the baseline) instead of
    /// rebuilding the whole `n²` matrix per scenario. Self-links cannot be
    /// replaced — the diagonal carries no inter-cluster model.
    pub fn set_link(&mut self, from: ClusterId, to: ClusterId, link: PLogP) {
        assert_ne!(from, to, "the diagonal carries no inter-cluster link");
        self.inter[(from.index(), to.index())] = link;
    }

    /// Validates the structural invariants every constructor guarantees but a
    /// `Deserialize`d grid may silently violate, because derived
    /// deserialization decodes fields independently: the link matrix must
    /// actually hold `n × n` entries for its claimed dimension, that dimension
    /// must match the cluster count, cluster ids must be the dense `0..n`
    /// sequence, and the usual build-time checks (at least one cluster, no
    /// empty cluster) must hold. Accepting a grid from the wire without this
    /// check turns a malformed document into an out-of-bounds panic deep in
    /// the scheduler.
    pub fn check_consistency(&self) -> Result<(), GridError> {
        if self.clusters.is_empty() {
            return Err(GridError::NoClusters);
        }
        if !self.inter.is_consistent() {
            return Err(GridError::Inconsistent {
                detail: "link matrix storage does not hold n × n entries for its claimed dimension",
            });
        }
        if self.inter.dim() != self.clusters.len() {
            return Err(GridError::Inconsistent {
                detail: "link matrix dimension does not match the cluster count",
            });
        }
        if self
            .clusters
            .iter()
            .enumerate()
            .any(|(i, c)| c.id.index() != i)
        {
            return Err(GridError::Inconsistent {
                detail: "cluster ids are not the dense 0..n sequence",
            });
        }
        if let Some(empty) = self.clusters.iter().find(|c| c.size == 0) {
            return Err(GridError::EmptyCluster { cluster: empty.id });
        }
        Ok(())
    }
}

/// Builder for [`Grid`].
#[derive(Debug, Default)]
pub struct GridBuilder {
    clusters: Vec<Cluster>,
    links: Vec<(ClusterId, ClusterId, PLogP)>,
}

impl GridBuilder {
    /// Adds a cluster. Cluster identifiers must be dense and added in order; the
    /// builder assigns the next index and overrides `cluster.id` accordingly.
    pub fn cluster(mut self, mut cluster: Cluster) -> Self {
        cluster.id = ClusterId(self.clusters.len());
        self.clusters.push(cluster);
        self
    }

    /// Configures the directed link `from → to`.
    pub fn link_directed(mut self, from: ClusterId, to: ClusterId, plogp: PLogP) -> Self {
        self.links.push((from, to, plogp));
        self
    }

    /// Configures both directions of the link between `a` and `b` with the same
    /// parameters.
    pub fn link_symmetric(mut self, a: ClusterId, b: ClusterId, plogp: PLogP) -> Self {
        self.links.push((a, b, plogp.clone()));
        self.links.push((b, a, plogp));
        self
    }

    /// Validates and builds the grid.
    pub fn build(self) -> Result<Grid, GridError> {
        if self.clusters.is_empty() {
            return Err(GridError::NoClusters);
        }
        if let Some(empty) = self.clusters.iter().find(|c| c.size == 0) {
            return Err(GridError::EmptyCluster { cluster: empty.id });
        }
        let n = self.clusters.len();
        // Initialise every entry with a self-link placeholder (zero-cost), then
        // overwrite with the configured links and check completeness.
        let placeholder = PLogP::constant(Time::ZERO, Time::ZERO);
        let mut inter = SquareMatrix::filled(n, placeholder);
        let mut configured = SquareMatrix::filled(n, false);
        for (from, to, plogp) in self.links {
            if from.index() >= n {
                return Err(GridError::UnknownCluster { cluster: from });
            }
            if to.index() >= n {
                return Err(GridError::UnknownCluster { cluster: to });
            }
            inter[(from.index(), to.index())] = plogp;
            configured[(from.index(), to.index())] = true;
        }
        for i in 0..n {
            for j in 0..n {
                if i != j && !configured[(i, j)] {
                    return Err(GridError::MissingLink {
                        from: ClusterId(i),
                        to: ClusterId(j),
                    });
                }
            }
        }
        // Populate the diagonal with the clusters' own intra parameters when
        // modelled, so that `link(i, i)` is meaningful for traces.
        for (i, cluster) in self.clusters.iter().enumerate() {
            if let Some(plogp) = cluster.intra.plogp() {
                inter[(i, i)] = plogp.clone();
            }
        }
        Ok(Grid {
            clusters: self.clusters,
            inter,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::Time;

    fn toy_grid(n: usize) -> Grid {
        let mut builder = Grid::builder();
        for i in 0..n {
            builder = builder.cluster(Cluster::with_fixed_time(
                ClusterId(i),
                format!("c{i}"),
                4,
                Time::from_millis(100.0),
            ));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let plogp = PLogP::constant(
                    Time::from_millis(1.0 + i as f64 + j as f64),
                    Time::from_millis(200.0),
                );
                builder = builder.link_symmetric(ClusterId(i), ClusterId(j), plogp);
            }
        }
        builder.build().unwrap()
    }

    #[test]
    fn builder_produces_complete_grid() {
        let grid = toy_grid(4);
        assert_eq!(grid.num_clusters(), 4);
        assert_eq!(grid.num_nodes(), 16);
        assert_eq!(
            grid.latency(ClusterId(0), ClusterId(3)),
            Time::from_millis(4.0)
        );
        assert_eq!(
            grid.latency(ClusterId(3), ClusterId(0)),
            Time::from_millis(4.0)
        );
        let m = MessageSize::from_mib(1);
        assert_eq!(
            grid.transfer_time(ClusterId(1), ClusterId(2), m),
            Time::from_millis(204.0)
        );
    }

    #[test]
    fn missing_link_is_rejected() {
        let result = Grid::builder()
            .cluster(Cluster::with_fixed_time(
                ClusterId(0),
                "a",
                2,
                Time::from_millis(10.0),
            ))
            .cluster(Cluster::with_fixed_time(
                ClusterId(1),
                "b",
                2,
                Time::from_millis(10.0),
            ))
            .build();
        assert_eq!(
            result,
            Err(GridError::MissingLink {
                from: ClusterId(0),
                to: ClusterId(1)
            })
        );
    }

    #[test]
    fn empty_and_unknown_clusters_are_rejected() {
        assert_eq!(Grid::builder().build(), Err(GridError::NoClusters));

        let empty = Grid::builder()
            .cluster(Cluster::with_fixed_time(
                ClusterId(0),
                "a",
                0,
                Time::from_millis(10.0),
            ))
            .build();
        assert_eq!(
            empty,
            Err(GridError::EmptyCluster {
                cluster: ClusterId(0)
            })
        );

        let unknown = Grid::builder()
            .cluster(Cluster::with_fixed_time(
                ClusterId(0),
                "a",
                1,
                Time::from_millis(10.0),
            ))
            .link_directed(
                ClusterId(0),
                ClusterId(5),
                PLogP::constant(Time::ZERO, Time::ZERO),
            )
            .build();
        assert_eq!(
            unknown,
            Err(GridError::UnknownCluster {
                cluster: ClusterId(5)
            })
        );
    }

    #[test]
    fn node_enumeration_and_coordinators() {
        let grid = toy_grid(3);
        let nodes = grid.enumerate_nodes();
        assert_eq!(nodes.len(), 12);
        assert_eq!(grid.coordinator(ClusterId(0)), NodeId(0));
        assert_eq!(grid.coordinator(ClusterId(1)), NodeId(4));
        assert_eq!(grid.coordinator(ClusterId(2)), NodeId(8));
        assert!(nodes[4].is_coordinator());
        assert_eq!(nodes[5].cluster, ClusterId(1));
        assert_eq!(nodes[5].local_rank, 1);
        // Names carry the cluster name for readable traces.
        assert_eq!(nodes[8].name, "c2-0");
    }

    #[test]
    fn cluster_ids_iterates_all() {
        let grid = toy_grid(5);
        let ids: Vec<_> = grid.cluster_ids().collect();
        assert_eq!(ids.len(), 5);
        assert_eq!(ids[0], ClusterId(0));
        assert_eq!(ids[4], ClusterId(4));
    }

    #[test]
    fn transposed_swaps_directed_links_and_keeps_clusters() {
        let cheap = PLogP::constant(Time::from_millis(1.0), Time::from_millis(10.0));
        let expensive = PLogP::constant(Time::from_millis(2.0), Time::from_millis(500.0));
        let grid = Grid::builder()
            .cluster(Cluster::with_fixed_time(
                ClusterId(0),
                "a",
                3,
                Time::from_millis(5.0),
            ))
            .cluster(Cluster::with_fixed_time(
                ClusterId(1),
                "b",
                2,
                Time::from_millis(5.0),
            ))
            .link_directed(ClusterId(0), ClusterId(1), cheap)
            .link_directed(ClusterId(1), ClusterId(0), expensive)
            .build()
            .unwrap();
        let t = grid.transposed();
        let m = MessageSize::from_kib(1);
        assert_eq!(
            t.gap(ClusterId(0), ClusterId(1), m),
            grid.gap(ClusterId(1), ClusterId(0), m)
        );
        assert_eq!(
            t.latency(ClusterId(1), ClusterId(0)),
            grid.latency(ClusterId(0), ClusterId(1))
        );
        assert_eq!(t.clusters(), grid.clusters());
        // Involution: transposing twice restores the original.
        assert_eq!(t.transposed(), grid);
        // Symmetric grids are their own transpose.
        let sym = toy_grid(4);
        assert_eq!(sym.transposed(), sym);
    }

    #[test]
    fn check_consistency_accepts_round_trips_and_rejects_forged_documents() {
        use serde::{Deserialize as _, Serialize as _, Value};

        let grid = toy_grid(3);
        assert!(grid.check_consistency().is_ok());
        let back = Grid::from_value(&grid.to_value()).unwrap();
        assert!(back.check_consistency().is_ok());
        assert_eq!(back, grid);

        // Forge a document whose matrix claims a bigger dimension than its
        // storage: derived deserialization accepts it, the guard must not.
        let mut doc = grid.to_value();
        if let Value::Map(fields) = &mut doc {
            let inter = fields.iter_mut().find(|(k, _)| k == "inter").unwrap();
            if let Value::Map(m) = &mut inter.1 {
                for (k, v) in m.iter_mut() {
                    if k == "n" {
                        *v = Value::U64(64);
                    }
                }
            }
        }
        let forged = Grid::from_value(&doc).unwrap();
        assert!(matches!(
            forged.check_consistency(),
            Err(GridError::Inconsistent { .. })
        ));

        // Dimension/cluster-count mismatch is caught even with a self-
        // consistent matrix.
        let mut doc = grid.to_value();
        if let Value::Map(fields) = &mut doc {
            let clusters = fields.iter_mut().find(|(k, _)| k == "clusters").unwrap();
            if let Value::Seq(list) = &mut clusters.1 {
                list.pop();
            }
        }
        let truncated = Grid::from_value(&doc).unwrap();
        assert!(matches!(
            truncated.check_consistency(),
            Err(GridError::Inconsistent { .. })
        ));
    }

    #[test]
    fn content_digest_tracks_every_parameter() {
        let grid = toy_grid(4);
        // Deterministic: same construction, same digest.
        assert_eq!(grid.content_digest(), toy_grid(4).content_digest());
        // One directed link changed by a tiny amount flips the digest.
        let mut nudged = grid.clone();
        let link = nudged.link(ClusterId(1), ClusterId(2)).clone();
        let bumped = PLogP::constant(
            link.latency() + Time::from_micros(1.0),
            link.gap(MessageSize::from_mib(1)),
        );
        nudged.set_link(ClusterId(1), ClusterId(2), bumped);
        assert_ne!(grid.content_digest(), nudged.content_digest());
        // Cluster metadata (a renamed site) also flips it.
        let mut renamed = grid.clone();
        renamed.clusters[0].name = "other".to_string();
        assert_ne!(grid.content_digest(), renamed.content_digest());
        // Different shape, trivially different.
        assert_ne!(grid.content_digest(), toy_grid(5).content_digest());
    }

    #[test]
    fn serde_round_trip() {
        let grid = toy_grid(3);
        let json = serde_json::to_string(&grid).unwrap();
        let back: Grid = serde_json::from_str(&json).unwrap();
        assert_eq!(grid, back);
    }
}
