//! # gridcast-topology
//!
//! The grid topology substrate: machines, clusters, inter-cluster link parameters
//! and the tooling needed to obtain them.
//!
//! The paper's execution environment is a computational grid — tens of clusters,
//! each containing up to a few hundred machines, interconnected by wide-area
//! links that are one to three orders of magnitude slower than the cluster
//! interconnects (Table 1). This crate models that environment:
//!
//! * [`Node`] / [`Cluster`] / [`Grid`] — the static description of a grid,
//!   including per-pair inter-cluster [`PLogP`](gridcast_plogp::PLogP) parameters
//!   and per-cluster intra-cluster parameters,
//! * [`hierarchy`] — the communication-level classification of Table 1,
//! * [`generator`] — random grid instances drawn from the Table 2 distributions
//!   used by the Monte-Carlo simulations of Figures 1–4,
//! * [`grid5000`] — the 88-machine, 6-logical-cluster GRID'5000 snapshot of
//!   Table 3 used by the practical evaluation of Figures 5–6,
//! * [`clustering`] — a Lowekamp-style logical-cluster detection algorithm with
//!   tolerance `ρ`, which is how the paper derives Table 3's clusters from raw
//!   node-to-node latencies,
//! * [`matrix`] — a small dense square-matrix container used for latency/gap
//!   tables.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cluster;
pub mod clustering;
pub mod generator;
pub mod grid;
pub mod grid5000;
pub mod hierarchy;
pub mod matrix;
pub mod node;

pub use cluster::{Cluster, ClusterId, IntraClusterParams};
pub use clustering::{detect_logical_clusters, LogicalClustering, LowekampConfig};
pub use generator::{GridGenerator, ParameterRanges};
pub use grid::{Grid, GridBuilder, GridError};
pub use grid5000::{grid5000_table3, Grid5000Spec};
pub use hierarchy::{classify_latency, CommunicationLevel};
pub use matrix::SquareMatrix;
pub use node::{Node, NodeId};
