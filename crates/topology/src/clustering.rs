//! Logical-cluster detection from raw node-to-node latencies.
//!
//! The paper obtains its six logical clusters (Table 3) by applying Lowekamp's
//! algorithm with a tolerance rate ρ = 30 % to the measured latencies between all
//! 88 machines: machines are grouped so that communication inside a group is
//! homogeneous (within the tolerance), even when the physical site is the same.
//! Notably the IDPOT site is *subdivided* — two machines with degraded
//! connectivity become singleton clusters — and the Orsay site splits in two.
//!
//! This module implements an agglomerative variant of that idea:
//!
//! 1. all node pairs are sorted by latency,
//! 2. pairs are processed in ascending order with a union–find structure,
//! 3. two groups are merged only if the merged group remains *homogeneous*: every
//!    pairwise latency inside it must stay within `(1 + ρ)` of the best (lowest)
//!    latency that each involved node can achieve to any other node.
//!
//! The "best achievable latency" reference is what keeps badly-connected machines
//! out of an otherwise fast cluster (and from pairing up with each other), which
//! is exactly the behaviour the paper reports for the two IDPOT singletons.

use crate::SquareMatrix;
use gridcast_plogp::Time;
use serde::{Deserialize, Serialize};

/// Configuration of the logical-cluster detection.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LowekampConfig {
    /// Tolerance rate ρ: a group is homogeneous if every internal latency is at
    /// most `(1 + ρ)` times the best latency of each of its members. The paper
    /// uses ρ = 0.30.
    pub tolerance: f64,
}

impl Default for LowekampConfig {
    fn default() -> Self {
        LowekampConfig { tolerance: 0.30 }
    }
}

/// The result of logical-cluster detection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogicalClustering {
    /// For every node index, the index of the logical cluster it belongs to.
    /// Cluster indices are dense and ordered by their smallest member node.
    pub assignment: Vec<usize>,
    /// The members of each logical cluster, sorted.
    pub clusters: Vec<Vec<usize>>,
}

impl LogicalClustering {
    /// Number of detected clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Sizes of the detected clusters, in cluster order.
    pub fn sizes(&self) -> Vec<usize> {
        self.clusters.iter().map(|c| c.len()).collect()
    }

    /// Returns the sizes sorted descending, convenient for comparisons that do
    /// not care about cluster numbering.
    pub fn sorted_sizes(&self) -> Vec<usize> {
        let mut s = self.sizes();
        s.sort_unstable_by(|a, b| b.cmp(a));
        s
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }
}

/// Detects logical clusters from a symmetric node-to-node latency matrix.
///
/// Panics if the matrix is empty. The matrix diagonal is ignored.
pub fn detect_logical_clusters(
    latency: &SquareMatrix<Time>,
    config: LowekampConfig,
) -> LogicalClustering {
    let n = latency.dim();
    assert!(n > 0, "latency matrix must contain at least one node");
    assert!(config.tolerance >= 0.0, "tolerance must be non-negative");

    // Best (lowest) latency each node can achieve towards any other node.
    let best: Vec<Time> = (0..n)
        .map(|i| {
            (0..n)
                .filter(|&j| j != i)
                .map(|j| latency[(i, j)])
                .min()
                .unwrap_or(Time::ZERO)
        })
        .collect();

    // All unordered pairs, ascending by latency.
    let mut pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    pairs.sort_by_key(|&(i, j)| latency[(i, j)]);

    let mut uf = UnionFind::new(n);
    let factor = 1.0 + config.tolerance;

    for (i, j) in pairs {
        let ri = uf.find(i);
        let rj = uf.find(j);
        if ri == rj {
            continue;
        }
        // Candidate merged group.
        let members: Vec<usize> = (0..n)
            .filter(|&x| {
                let r = uf.find(x);
                r == ri || r == rj
            })
            .collect();
        if group_is_homogeneous(&members, latency, &best, factor) {
            uf.union(ri, rj);
        }
    }

    // Materialise dense cluster indices ordered by smallest member.
    let mut cluster_of_root: Vec<Option<usize>> = vec![None; n];
    let mut clusters: Vec<Vec<usize>> = Vec::new();
    let mut assignment = vec![0usize; n];
    for (node, slot) in assignment.iter_mut().enumerate() {
        let root = uf.find(node);
        let idx = match cluster_of_root[root] {
            Some(idx) => idx,
            None => {
                let idx = clusters.len();
                cluster_of_root[root] = Some(idx);
                clusters.push(Vec::new());
                idx
            }
        };
        clusters[idx].push(node);
        *slot = idx;
    }

    LogicalClustering {
        assignment,
        clusters,
    }
}

fn group_is_homogeneous(
    members: &[usize],
    latency: &SquareMatrix<Time>,
    best: &[Time],
    factor: f64,
) -> bool {
    for (a_pos, &a) in members.iter().enumerate() {
        for &b in &members[a_pos + 1..] {
            let l = latency[(a, b)];
            if l > best[a] * factor || l > best[b] * factor {
                return false;
            }
        }
    }
    true
}

/// Builds a synthetic node-to-node latency matrix for a grid whose logical
/// clusters and inter-cluster latencies are already known. Every intra-cluster
/// pair gets the cluster's internal latency, every inter-cluster pair the
/// corresponding cluster-to-cluster latency. This is how the tests reconstruct
/// the 88-machine measurement that produced Table 3.
pub fn synthesize_node_matrix(
    cluster_sizes: &[u32],
    cluster_latency_us: &SquareMatrix<f64>,
) -> SquareMatrix<Time> {
    assert_eq!(cluster_sizes.len(), cluster_latency_us.dim());
    let total: usize = cluster_sizes.iter().map(|&s| s as usize).sum();
    let mut cluster_of_node = Vec::with_capacity(total);
    for (c, &size) in cluster_sizes.iter().enumerate() {
        for _ in 0..size {
            cluster_of_node.push(c);
        }
    }
    let mut matrix = SquareMatrix::filled(total, Time::ZERO);
    for i in 0..total {
        for j in 0..total {
            if i == j {
                continue;
            }
            let (ci, cj) = (cluster_of_node[i], cluster_of_node[j]);
            matrix[(i, j)] = Time::from_micros(cluster_latency_us[(ci, cj)]);
        }
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid5000::{Grid5000Spec, CLUSTER_SIZES};

    #[test]
    fn trivial_single_node() {
        let m = SquareMatrix::filled(1, Time::ZERO);
        let c = detect_logical_clusters(&m, LowekampConfig::default());
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.sizes(), vec![1]);
    }

    #[test]
    fn homogeneous_lan_is_one_cluster() {
        let n = 10;
        let mut m = SquareMatrix::filled(n, Time::from_micros(50.0));
        for i in 0..n {
            m[(i, i)] = Time::ZERO;
        }
        let c = detect_logical_clusters(&m, LowekampConfig::default());
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.sizes(), vec![n]);
    }

    #[test]
    fn two_sites_over_a_wan_split_in_two() {
        // 4 + 4 nodes; 50 µs inside a site, 10 ms across.
        let n = 8;
        let mut m = SquareMatrix::filled(n, Time::from_millis(10.0));
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    m[(i, j)] = Time::ZERO;
                } else if (i < 4) == (j < 4) {
                    m[(i, j)] = Time::from_micros(50.0);
                }
            }
        }
        let c = detect_logical_clusters(&m, LowekampConfig::default());
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.sorted_sizes(), vec![4, 4]);
        // Node assignments respect the site boundary.
        assert_eq!(c.assignment[0], c.assignment[3]);
        assert_ne!(c.assignment[0], c.assignment[4]);
    }

    #[test]
    fn recovers_the_six_clusters_of_table3() {
        let spec = Grid5000Spec::table3();
        let node_matrix = synthesize_node_matrix(&spec.sizes, &spec.latency_us);
        assert_eq!(node_matrix.dim(), 88);
        let clustering = detect_logical_clusters(&node_matrix, LowekampConfig { tolerance: 0.30 });
        assert_eq!(
            clustering.num_clusters(),
            6,
            "expected the six logical clusters of Table 3, got sizes {:?}",
            clustering.sizes()
        );
        assert_eq!(clustering.sorted_sizes(), vec![31, 29, 20, 6, 1, 1]);
    }

    #[test]
    fn zero_tolerance_separates_slightly_different_latencies() {
        // Two groups at 50 µs and 55 µs internal latency, 60 µs across: with
        // ρ = 0 the cross-links (60 > 50) break homogeneity for the fast group's
        // members, so the groups stay apart; with a large ρ everything merges.
        let n = 6;
        let mut m = SquareMatrix::filled(n, Time::from_micros(60.0));
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    m[(i, j)] = Time::ZERO;
                } else if i < 3 && j < 3 {
                    m[(i, j)] = Time::from_micros(50.0);
                } else if i >= 3 && j >= 3 {
                    m[(i, j)] = Time::from_micros(55.0);
                }
            }
        }
        let strict = detect_logical_clusters(&m, LowekampConfig { tolerance: 0.0 });
        assert_eq!(strict.num_clusters(), 2);
        let loose = detect_logical_clusters(&m, LowekampConfig { tolerance: 0.5 });
        assert_eq!(loose.num_clusters(), 1);
    }

    #[test]
    fn synthesized_matrix_uses_cluster_latencies() {
        let spec = Grid5000Spec::table3();
        let node_matrix = synthesize_node_matrix(&CLUSTER_SIZES, &spec.latency_us);
        // Node 0 and node 1 are both in Orsay-A: intra latency 47.56 µs.
        assert!((node_matrix[(0, 1)].as_micros() - 47.56).abs() < 1e-9);
        // Node 0 (Orsay-A) and the last node (Toulouse): 5210.99 µs.
        assert!((node_matrix[(0, 87)].as_micros() - 5210.99).abs() < 1e-9);
    }
}
