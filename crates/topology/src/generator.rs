//! Random grid generation following Table 2 of the paper.
//!
//! The Monte-Carlo simulations of Section 6 draw, for every link and cluster and
//! at every iteration, a latency `L`, a gap `g` and an intra-cluster broadcast
//! time `T` uniformly from the ranges of Table 2 (values "measured over the French
//! national grid GRID5000"):
//!
//! | parameter | minimum | maximum |
//! |-----------|---------|---------|
//! | `L`       | 1 ms    | 15 ms   |
//! | `g`       | 100 ms  | 600 ms  |
//! | `T`       | 20 ms   | 3000 ms |
//!
//! [`GridGenerator`] reproduces this: each generated [`Grid`] has symmetric
//! inter-cluster links with constant gaps (the simulation fixes the message at
//! 1 MB, so a single gap value per link suffices) and per-cluster fixed broadcast
//! times.

use crate::{Cluster, ClusterId, Grid};
use gridcast_plogp::{PLogP, Time};
use rand::distributions::{Distribution, Uniform};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Uniform sampling ranges for the three simulation parameters (all in seconds).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterRanges {
    /// Inter-cluster latency range `[min, max]`.
    pub latency: (Time, Time),
    /// Inter-cluster gap range `[min, max]` (for the reference 1 MB message).
    pub gap: (Time, Time),
    /// Intra-cluster broadcast time range `[min, max]`.
    pub intra_broadcast: (Time, Time),
}

impl ParameterRanges {
    /// The exact ranges of Table 2.
    pub fn table2() -> Self {
        ParameterRanges {
            latency: (Time::from_millis(1.0), Time::from_millis(15.0)),
            gap: (Time::from_millis(100.0), Time::from_millis(600.0)),
            intra_broadcast: (Time::from_millis(20.0), Time::from_millis(3000.0)),
        }
    }

    /// Validates that each range is non-empty and non-negative.
    pub fn validate(&self) -> bool {
        let ok = |(lo, hi): (Time, Time)| lo >= Time::ZERO && hi >= lo;
        ok(self.latency) && ok(self.gap) && ok(self.intra_broadcast)
    }
}

impl Default for ParameterRanges {
    fn default() -> Self {
        Self::table2()
    }
}

/// Generates random grid instances for the Monte-Carlo simulations.
#[derive(Debug, Clone)]
pub struct GridGenerator {
    ranges: ParameterRanges,
    /// Number of machines assigned to each generated cluster. The simulations of
    /// the paper never look inside the clusters (their broadcast time is the
    /// sampled `T`), so any positive value works; the default of 16 gives the
    /// simulator something realistic to execute.
    pub cluster_size: u32,
}

impl GridGenerator {
    /// A generator using the Table 2 ranges.
    pub fn table2() -> Self {
        GridGenerator {
            ranges: ParameterRanges::table2(),
            cluster_size: 16,
        }
    }

    /// A generator with custom ranges.
    pub fn with_ranges(ranges: ParameterRanges) -> Self {
        assert!(ranges.validate(), "invalid parameter ranges");
        GridGenerator {
            ranges,
            cluster_size: 16,
        }
    }

    /// Overrides the number of machines per generated cluster.
    pub fn cluster_size(mut self, size: u32) -> Self {
        assert!(size > 0, "clusters need at least one machine");
        self.cluster_size = size;
        self
    }

    /// The configured ranges.
    pub fn ranges(&self) -> &ParameterRanges {
        &self.ranges
    }

    fn sample_time<R: Rng + ?Sized>(rng: &mut R, (lo, hi): (Time, Time)) -> Time {
        if hi <= lo {
            return lo;
        }
        let dist = Uniform::new_inclusive(lo.as_secs(), hi.as_secs());
        Time::from_secs(dist.sample(rng))
    }

    /// Generates a random grid with `num_clusters` clusters.
    ///
    /// Every unordered cluster pair receives an independent `(L, g)` sample used
    /// in both directions (the paper's matrices, e.g. Table 3, are symmetric),
    /// and every cluster an independent intra-cluster broadcast time `T`.
    pub fn generate<R: Rng + ?Sized>(&self, num_clusters: usize, rng: &mut R) -> Grid {
        assert!(num_clusters >= 1, "a grid needs at least one cluster");
        let mut builder = Grid::builder();
        for i in 0..num_clusters {
            let t = Self::sample_time(rng, self.ranges.intra_broadcast);
            builder = builder.cluster(Cluster::with_fixed_time(
                ClusterId(i),
                format!("cluster-{i}"),
                self.cluster_size,
                t,
            ));
        }
        for i in 0..num_clusters {
            for j in (i + 1)..num_clusters {
                let latency = Self::sample_time(rng, self.ranges.latency);
                let gap = Self::sample_time(rng, self.ranges.gap);
                builder = builder.link_symmetric(
                    ClusterId(i),
                    ClusterId(j),
                    PLogP::constant(latency, gap),
                );
            }
        }
        builder
            .build()
            .expect("generator always configures every link")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn table2_ranges_match_the_paper() {
        let r = ParameterRanges::table2();
        assert_eq!(r.latency.0, Time::from_millis(1.0));
        assert_eq!(r.latency.1, Time::from_millis(15.0));
        assert_eq!(r.gap.0, Time::from_millis(100.0));
        assert_eq!(r.gap.1, Time::from_millis(600.0));
        assert_eq!(r.intra_broadcast.0, Time::from_millis(20.0));
        assert_eq!(r.intra_broadcast.1, Time::from_millis(3000.0));
        assert!(r.validate());
    }

    #[test]
    fn generated_parameters_stay_in_range() {
        let gen = GridGenerator::table2();
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let m = MessageSize::from_mib(1);
        for _ in 0..20 {
            let grid = gen.generate(8, &mut rng);
            assert_eq!(grid.num_clusters(), 8);
            for i in grid.cluster_ids() {
                let t = grid.cluster(i).naive_broadcast_time(m);
                assert!(t >= Time::from_millis(20.0) && t <= Time::from_millis(3000.0));
                for j in grid.cluster_ids() {
                    if i == j {
                        continue;
                    }
                    let l = grid.latency(i, j);
                    let g = grid.gap(i, j, m);
                    assert!(l >= Time::from_millis(1.0) && l <= Time::from_millis(15.0));
                    assert!(g >= Time::from_millis(100.0) && g <= Time::from_millis(600.0));
                }
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen = GridGenerator::table2();
        let grid_a = gen.generate(6, &mut ChaCha8Rng::seed_from_u64(7));
        let grid_b = gen.generate(6, &mut ChaCha8Rng::seed_from_u64(7));
        let grid_c = gen.generate(6, &mut ChaCha8Rng::seed_from_u64(8));
        assert_eq!(grid_a, grid_b);
        assert_ne!(grid_a, grid_c);
    }

    #[test]
    fn links_are_symmetric() {
        let gen = GridGenerator::table2();
        let mut rng = ChaCha8Rng::seed_from_u64(123);
        let grid = gen.generate(10, &mut rng);
        let m = MessageSize::from_mib(1);
        for i in grid.cluster_ids() {
            for j in grid.cluster_ids() {
                assert_eq!(grid.latency(i, j), grid.latency(j, i));
                assert_eq!(grid.gap(i, j, m), grid.gap(j, i, m));
            }
        }
    }

    #[test]
    fn custom_cluster_size_is_respected() {
        let gen = GridGenerator::table2().cluster_size(50);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let grid = gen.generate(3, &mut rng);
        assert_eq!(grid.num_nodes(), 150);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_clusters_panics() {
        let gen = GridGenerator::table2();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let _ = gen.generate(0, &mut rng);
    }

    #[test]
    fn degenerate_range_collapses_to_constant() {
        let ranges = ParameterRanges {
            latency: (Time::from_millis(5.0), Time::from_millis(5.0)),
            gap: (Time::from_millis(100.0), Time::from_millis(100.0)),
            intra_broadcast: (Time::from_millis(50.0), Time::from_millis(50.0)),
        };
        let gen = GridGenerator::with_ranges(ranges);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let grid = gen.generate(4, &mut rng);
        assert_eq!(
            grid.latency(ClusterId(0), ClusterId(1)),
            Time::from_millis(5.0)
        );
    }
}
