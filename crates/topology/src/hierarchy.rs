//! Communication-level hierarchy (Table 1 of the paper).
//!
//! Karonis et al. (MPICH-G2) organise grid links into levels ordered by latency:
//! wide-area TCP (level 0) is slower than LAN TCP (level 1), which is slower than
//! intra-host TCP (level 2), which is slower than vendor MPI / shared memory
//! (levels 3, 4, ...). The paper reproduces this classification in Table 1 and
//! builds its two-level (inter-/intra-cluster) optimisation on top of it.

use gridcast_plogp::Time;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A communication level in the MPICH-G2 / Karonis multi-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CommunicationLevel {
    /// Level 0: wide-area TCP links between sites.
    WideArea,
    /// Level 1: local-area TCP links inside a site.
    LocalArea,
    /// Level 2: TCP between processes on the same host.
    LocalHost,
    /// Level 3 and beyond: vendor MPI, Myrinet, shared memory.
    SharedMemory,
}

impl CommunicationLevel {
    /// The numeric level used by Table 1 (0 is the slowest).
    pub fn level(self) -> u8 {
        match self {
            CommunicationLevel::WideArea => 0,
            CommunicationLevel::LocalArea => 1,
            CommunicationLevel::LocalHost => 2,
            CommunicationLevel::SharedMemory => 3,
        }
    }

    /// All levels, slowest first, mirroring the ordering of Table 1.
    pub fn all() -> [CommunicationLevel; 4] {
        [
            CommunicationLevel::WideArea,
            CommunicationLevel::LocalArea,
            CommunicationLevel::LocalHost,
            CommunicationLevel::SharedMemory,
        ]
    }

    /// Example transport associated with the level, as listed in Table 1.
    pub fn example_transport(self) -> &'static str {
        match self {
            CommunicationLevel::WideArea => "WAN-TCP",
            CommunicationLevel::LocalArea => "LAN-TCP",
            CommunicationLevel::LocalHost => "localhost-TCP",
            CommunicationLevel::SharedMemory => "shared memory / Myrinet / vendor MPI",
        }
    }
}

impl fmt::Display for CommunicationLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Level {} ({})", self.level(), self.example_transport())
    }
}

/// Classifies a link by its measured latency, using thresholds consistent with
/// Table 1 and the measurements of Table 3.
///
/// * ≥ 1 ms        → wide area,
/// * ≥ 100 µs      → local area,
/// * ≥ 10 µs       → same host (TCP loopback),
/// * below 10 µs   → shared memory / vendor MPI.
pub fn classify_latency(latency: Time) -> CommunicationLevel {
    if latency >= Time::from_millis(1.0) {
        CommunicationLevel::WideArea
    } else if latency >= Time::from_micros(100.0) {
        CommunicationLevel::LocalArea
    } else if latency >= Time::from_micros(10.0) {
        CommunicationLevel::LocalHost
    } else {
        CommunicationLevel::SharedMemory
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_matches_table1() {
        // Table 1: Level 0 > Level 1 > Level 2 > Level 3 in latency.
        let levels = CommunicationLevel::all();
        for w in levels.windows(2) {
            assert!(w[0].level() < w[1].level());
        }
        assert_eq!(CommunicationLevel::WideArea.level(), 0);
        assert_eq!(CommunicationLevel::SharedMemory.level(), 3);
    }

    #[test]
    fn classification_of_table3_values() {
        // Inter-site latencies from Table 3 (µs): 12181, 5210 → wide area.
        assert_eq!(
            classify_latency(Time::from_micros(12181.52)),
            CommunicationLevel::WideArea
        );
        assert_eq!(
            classify_latency(Time::from_micros(5210.99)),
            CommunicationLevel::WideArea
        );
        // Intra-site (47.56 µs, 60.08 µs) → same host / LAN boundary region.
        assert_eq!(
            classify_latency(Time::from_micros(242.47)),
            CommunicationLevel::LocalArea
        );
        assert_eq!(
            classify_latency(Time::from_micros(47.56)),
            CommunicationLevel::LocalHost
        );
        // Sub-10 µs: shared memory.
        assert_eq!(
            classify_latency(Time::from_micros(2.0)),
            CommunicationLevel::SharedMemory
        );
    }

    #[test]
    fn display_mentions_transport() {
        let s = CommunicationLevel::WideArea.to_string();
        assert!(s.contains("WAN"));
        assert!(CommunicationLevel::SharedMemory
            .example_transport()
            .contains("shared memory"));
    }
}
