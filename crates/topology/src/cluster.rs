//! Logical clusters: groups of machines with homogeneous interconnection.

use gridcast_plogp::{MessageSize, PLogP, Time};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a cluster inside a [`Grid`](crate::Grid). Dense index.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct ClusterId(pub usize);

impl ClusterId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for ClusterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl From<usize> for ClusterId {
    fn from(v: usize) -> Self {
        ClusterId(v)
    }
}

/// How the intra-cluster broadcast time `T_i(m)` of a cluster is obtained.
///
/// The paper uses two modes:
///
/// * the Monte-Carlo simulations of Section 6 draw `T` directly from Table 2
///   (`Fixed`), independent of any intra-cluster detail;
/// * the practical evaluation of Section 7 predicts `T_i(m)` from measured
///   intra-cluster pLogP parameters and the cluster size (`Modelled`), using the
///   intra-cluster collective models of the companion `gridcast-collectives`
///   crate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IntraClusterParams {
    /// The intra-cluster broadcast takes a fixed, size-independent time.
    Fixed {
        /// Broadcast completion time inside the cluster.
        broadcast_time: Time,
    },
    /// Intra-cluster communication follows a pLogP model shared by all node
    /// pairs inside the cluster (the "logical homogeneous cluster" assumption).
    Modelled {
        /// pLogP parameters of the intra-cluster interconnect.
        plogp: PLogP,
    },
}

impl IntraClusterParams {
    /// Convenience constructor for the fixed-time mode.
    pub fn fixed(broadcast_time: Time) -> Self {
        IntraClusterParams::Fixed { broadcast_time }
    }

    /// Convenience constructor for the modelled mode.
    pub fn modelled(plogp: PLogP) -> Self {
        IntraClusterParams::Modelled { plogp }
    }

    /// Returns the pLogP model if this cluster is in modelled mode.
    pub fn plogp(&self) -> Option<&PLogP> {
        match self {
            IntraClusterParams::Modelled { plogp } => Some(plogp),
            IntraClusterParams::Fixed { .. } => None,
        }
    }
}

/// A logical cluster of a grid.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    /// Identifier (index in the owning grid).
    pub id: ClusterId,
    /// Human-readable name ("Orsay", "IDPOT", "Toulouse", ...).
    pub name: String,
    /// Number of machines in the cluster (including the coordinator).
    pub size: u32,
    /// Intra-cluster communication description.
    pub intra: IntraClusterParams,
}

impl Cluster {
    /// Creates a cluster with a fixed intra-cluster broadcast time, the form used
    /// by the paper's Monte-Carlo simulation (Table 2's `T` parameter).
    pub fn with_fixed_time(
        id: ClusterId,
        name: impl Into<String>,
        size: u32,
        broadcast_time: Time,
    ) -> Self {
        Cluster {
            id,
            name: name.into(),
            size,
            intra: IntraClusterParams::fixed(broadcast_time),
        }
    }

    /// Creates a cluster whose intra-cluster broadcast time is predicted from a
    /// pLogP model and the cluster size.
    pub fn with_plogp(id: ClusterId, name: impl Into<String>, size: u32, plogp: PLogP) -> Self {
        Cluster {
            id,
            name: name.into(),
            size,
            intra: IntraClusterParams::modelled(plogp),
        }
    }

    /// Returns `true` if the cluster consists of a single machine, in which case
    /// its intra-cluster broadcast time is zero regardless of the model.
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.size <= 1
    }

    /// A crude intra-cluster broadcast time estimate available without the
    /// collectives crate: the fixed time if configured, otherwise a binomial-tree
    /// bound `⌈log2(size)⌉ · (g(m) + L)` from the cluster's own pLogP parameters.
    ///
    /// The scheduling heuristics normally use the more faithful prediction from
    /// `gridcast-collectives`; this estimate exists so that the topology crate is
    /// usable standalone and as a sanity lower bound in tests.
    pub fn naive_broadcast_time(&self, m: MessageSize) -> Time {
        if self.is_singleton() {
            return Time::ZERO;
        }
        match &self.intra {
            IntraClusterParams::Fixed { broadcast_time } => *broadcast_time,
            IntraClusterParams::Modelled { plogp } => {
                let rounds = (f64::from(self.size)).log2().ceil() as u32;
                (plogp.gap(m) + plogp.latency()) * rounds
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singleton_cluster_broadcasts_instantly() {
        let c = Cluster::with_fixed_time(ClusterId(3), "idpot-solo", 1, Time::from_millis(500.0));
        assert!(c.is_singleton());
        assert_eq!(c.naive_broadcast_time(MessageSize::from_mib(1)), Time::ZERO);
    }

    #[test]
    fn fixed_time_is_returned_verbatim() {
        let c = Cluster::with_fixed_time(ClusterId(0), "orsay", 31, Time::from_millis(1500.0));
        assert_eq!(
            c.naive_broadcast_time(MessageSize::from_mib(1)),
            Time::from_millis(1500.0)
        );
    }

    #[test]
    fn modelled_time_uses_binomial_rounds() {
        let plogp = PLogP::constant(Time::from_micros(50.0), Time::from_millis(10.0));
        let c = Cluster::with_plogp(ClusterId(1), "toulouse", 20, plogp.clone());
        // ceil(log2(20)) = 5 rounds of (10 ms + 50 µs).
        let expected = (plogp.gap(MessageSize::from_mib(1)) + plogp.latency()) * 5u32;
        assert_eq!(c.naive_broadcast_time(MessageSize::from_mib(1)), expected);
        assert!(c.intra.plogp().is_some());
    }

    #[test]
    fn cluster_id_display() {
        assert_eq!(ClusterId(4).to_string(), "C4");
        assert_eq!(ClusterId::from(2usize).index(), 2);
    }
}
