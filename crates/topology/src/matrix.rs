//! A small dense square matrix used for inter-cluster latency and gap tables.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `n × n` matrix stored in row-major order.
///
/// Latency and gap tables of a grid are tiny (tens of clusters), so a flat `Vec`
/// with explicit dimension checks is simpler and faster than any sparse or
/// hash-based structure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SquareMatrix<T> {
    n: usize,
    data: Vec<T>,
}

impl<T: Clone> SquareMatrix<T> {
    /// Creates an `n × n` matrix with every entry set to `fill`.
    pub fn filled(n: usize, fill: T) -> Self {
        SquareMatrix {
            n,
            data: vec![fill; n * n],
        }
    }

    /// Creates a matrix from a row-major vector. Panics if `data.len() != n²`.
    pub fn from_rows(n: usize, data: Vec<T>) -> Self {
        assert_eq!(
            data.len(),
            n * n,
            "square matrix of dimension {n} needs {} entries, got {}",
            n * n,
            data.len()
        );
        SquareMatrix { n, data }
    }
}

impl<T> SquareMatrix<T> {
    /// The dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Whether the backing storage actually holds `n × n` entries.
    ///
    /// Every constructor guarantees this, but `Deserialize` is derived
    /// field-by-field, so a hand-written (or adversarial) document can claim
    /// one dimension and ship another — indexing such a matrix panics.
    /// Callers accepting matrices from the wire must check this first
    /// (see `Grid::check_consistency` in this crate).
    pub fn is_consistent(&self) -> bool {
        self.n
            .checked_mul(self.n)
            .is_some_and(|len| self.data.len() == len)
    }

    /// Immutable access with bounds checking, returning `None` out of range.
    pub fn get(&self, row: usize, col: usize) -> Option<&T> {
        if row < self.n && col < self.n {
            Some(&self.data[row * self.n + col])
        } else {
            None
        }
    }

    /// Iterates over `(row, col, &value)` triples in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, &T)> {
        self.data
            .iter()
            .enumerate()
            .map(move |(i, v)| (i / self.n, i % self.n, v))
    }

    /// Applies a function to every element, producing a new matrix.
    pub fn map<U, F: FnMut(&T) -> U>(&self, mut f: F) -> SquareMatrix<U> {
        SquareMatrix {
            n: self.n,
            data: self.data.iter().map(&mut f).collect(),
        }
    }
}

impl<T: PartialOrd + Clone> SquareMatrix<T> {
    /// Returns whether the matrix is symmetric under `==`.
    pub fn is_symmetric(&self) -> bool
    where
        T: PartialEq,
    {
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                if self[(i, j)] != self[(j, i)] {
                    return false;
                }
            }
        }
        true
    }
}

impl<T> Index<(usize, usize)> for SquareMatrix<T> {
    type Output = T;
    #[inline]
    fn index(&self, (row, col): (usize, usize)) -> &T {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        &self.data[row * self.n + col]
    }
}

impl<T> IndexMut<(usize, usize)> for SquareMatrix<T> {
    #[inline]
    fn index_mut(&mut self, (row, col): (usize, usize)) -> &mut T {
        assert!(row < self.n && col < self.n, "matrix index out of bounds");
        &mut self.data[row * self.n + col]
    }
}

impl<T: fmt::Display> fmt::Display for SquareMatrix<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                if j > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{:>12}", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filled_and_indexing() {
        let mut m = SquareMatrix::filled(3, 0u32);
        m[(1, 2)] = 7;
        assert_eq!(m[(1, 2)], 7);
        assert_eq!(m[(2, 1)], 0);
        assert_eq!(m.dim(), 3);
        assert_eq!(m.get(2, 2), Some(&0));
        assert_eq!(m.get(3, 0), None);
    }

    #[test]
    fn from_rows_checks_length() {
        let m = SquareMatrix::from_rows(2, vec![1, 2, 3, 4]);
        assert_eq!(m[(0, 1)], 2);
        assert_eq!(m[(1, 0)], 3);
    }

    #[test]
    #[should_panic(expected = "needs 4 entries")]
    fn from_rows_wrong_length_panics() {
        let _ = SquareMatrix::from_rows(2, vec![1, 2, 3]);
    }

    #[test]
    fn symmetry_check() {
        let sym = SquareMatrix::from_rows(2, vec![0, 5, 5, 0]);
        let asym = SquareMatrix::from_rows(2, vec![0, 5, 6, 0]);
        assert!(sym.is_symmetric());
        assert!(!asym.is_symmetric());
    }

    #[test]
    fn map_and_iter() {
        let m = SquareMatrix::from_rows(2, vec![1, 2, 3, 4]);
        let doubled = m.map(|v| v * 2);
        assert_eq!(doubled[(1, 1)], 8);
        let sum: i32 = m.iter().map(|(_, _, v)| *v).sum();
        assert_eq!(sum, 10);
        let diag: Vec<i32> = m
            .iter()
            .filter(|(r, c, _)| r == c)
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(diag, vec![1, 4]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_index_panics() {
        let m = SquareMatrix::filled(2, 0u8);
        let _ = m[(0, 2)];
    }

    #[test]
    fn consistency_survives_round_trip_and_catches_forged_dimensions() {
        use serde::{Deserialize as _, Serialize as _};
        let m = SquareMatrix::from_rows(2, vec![1u32, 2, 3, 4]);
        assert!(m.is_consistent());
        let back = SquareMatrix::<u32>::from_value(&m.to_value()).unwrap();
        assert!(back.is_consistent());
        assert_eq!(back, m);
        // A document claiming a larger dimension than its data deserializes
        // fine (derived impl checks fields independently) but must be caught.
        let forged = serde::Value::Map(vec![
            ("n".into(), serde::Value::U64(3)),
            (
                "data".into(),
                serde::Value::Seq(vec![serde::Value::U64(1); 4]),
            ),
        ]);
        let bad = SquareMatrix::<u32>::from_value(&forged).unwrap();
        assert!(!bad.is_consistent());
    }
}
