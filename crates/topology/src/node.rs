//! Individual machines (MPI processes) of a grid.

use crate::ClusterId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A globally unique identifier of a machine / MPI process in the grid.
///
/// Node identifiers are dense indices (`0..grid.num_nodes()`), which lets the
/// simulator and the collective algorithms index per-node state with plain
/// vectors instead of hash maps.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
#[serde(transparent)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The numeric index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// A machine belonging to a cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Global identifier.
    pub id: NodeId,
    /// Hostname-like label (for traces and reports).
    pub name: String,
    /// Cluster this node belongs to.
    pub cluster: ClusterId,
    /// Rank of the node within its cluster (`0` is the cluster coordinator).
    pub local_rank: u32,
}

impl Node {
    /// Returns `true` if this node is its cluster's coordinator, i.e. the process
    /// that takes part in inter-cluster communication on behalf of the cluster.
    #[inline]
    pub fn is_coordinator(&self) -> bool {
        self.local_rank == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display_and_index() {
        let id = NodeId(7);
        assert_eq!(id.to_string(), "n7");
        assert_eq!(id.index(), 7);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn coordinator_detection() {
        let coordinator = Node {
            id: NodeId(0),
            name: "orsay-0".into(),
            cluster: ClusterId(0),
            local_rank: 0,
        };
        let worker = Node {
            id: NodeId(1),
            name: "orsay-1".into(),
            cluster: ClusterId(0),
            local_rank: 1,
        };
        assert!(coordinator.is_coordinator());
        assert!(!worker.is_coordinator());
    }
}
