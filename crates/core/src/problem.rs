//! The broadcast problem instance handed to the scheduling heuristics.

use gridcast_collectives::intra_broadcast_time;
use gridcast_plogp::{Fnv1a, MessageSize, Time};
use gridcast_topology::{ClusterId, Grid, SquareMatrix};
use serde::{Deserialize, Serialize};

/// A fully evaluated broadcast problem instance.
///
/// The heuristics of the paper never look at raw pLogP models: they work with
/// the three quantities the formalism needs, already evaluated for the message
/// size at hand —
///
/// * `L_{i,j}`: inter-cluster latency,
/// * `g_{i,j}(m)`: inter-cluster gap for the message,
/// * `T_i(m)`: intra-cluster broadcast time of each cluster.
///
/// Pre-evaluating them keeps the heuristics allocation-free and makes the
/// Monte-Carlo simulations (10 000 schedules per configuration) cheap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BroadcastProblem {
    /// The cluster whose coordinator initially holds the message.
    pub root: ClusterId,
    /// The broadcast payload size.
    pub message: MessageSize,
    latency: SquareMatrix<Time>,
    gap: SquareMatrix<Time>,
    intra_time: Vec<Time>,
}

impl BroadcastProblem {
    /// Builds a problem instance from a [`Grid`], evaluating gaps and
    /// intra-cluster broadcast times for `message`.
    pub fn from_grid(grid: &Grid, root: ClusterId, message: MessageSize) -> Self {
        let n = grid.num_clusters();
        assert!(root.index() < n, "root cluster {root} outside the grid");
        let mut latency = SquareMatrix::filled(n, Time::ZERO);
        let mut gap = SquareMatrix::filled(n, Time::ZERO);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                latency[(i, j)] = grid.latency(ClusterId(i), ClusterId(j));
                gap[(i, j)] = grid.gap(ClusterId(i), ClusterId(j), message);
            }
        }
        let intra_time = grid
            .clusters()
            .iter()
            .map(|c| intra_broadcast_time(c, message))
            .collect();
        BroadcastProblem {
            root,
            message,
            latency,
            gap,
            intra_time,
        }
    }

    /// Builds a problem instance from raw matrices. `latency` and `gap` must be
    /// square matrices of the same dimension and `intra_time` must have one entry
    /// per cluster.
    pub fn from_parts(
        root: ClusterId,
        message: MessageSize,
        latency: SquareMatrix<Time>,
        gap: SquareMatrix<Time>,
        intra_time: Vec<Time>,
    ) -> Self {
        let n = latency.dim();
        assert_eq!(gap.dim(), n, "gap matrix dimension mismatch");
        assert_eq!(
            intra_time.len(),
            n,
            "intra-cluster time vector length mismatch"
        );
        assert!(root.index() < n, "root cluster {root} outside the problem");
        BroadcastProblem {
            root,
            message,
            latency,
            gap,
            intra_time,
        }
    }

    /// Re-evaluates one directed link entry from `grid` — the incremental
    /// counterpart of [`BroadcastProblem::from_grid`] for a scratch problem
    /// tracking a patched scratch grid. Evaluating the same pure expressions
    /// as `from_grid` keeps the patched problem bit-identical to a cold
    /// rebuild from the patched grid.
    pub fn repatch_link_from_grid(&mut self, grid: &Grid, from: ClusterId, to: ClusterId) {
        assert_ne!(from, to, "the diagonal carries no inter-cluster link");
        self.latency[(from.index(), to.index())] = grid.latency(from, to);
        self.gap[(from.index(), to.index())] = grid.gap(from, to, self.message);
    }

    /// Copies one directed link entry from `other` (typically the unperturbed
    /// baseline problem, to restore a scratch entry after a scenario).
    pub fn copy_link_from(&mut self, other: &BroadcastProblem, from: ClusterId, to: ClusterId) {
        assert_ne!(from, to, "the diagonal carries no inter-cluster link");
        let idx = (from.index(), to.index());
        self.latency[idx] = other.latency[idx];
        self.gap[idx] = other.gap[idx];
    }

    /// Number of clusters.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.intra_time.len()
    }

    /// Inter-cluster latency `L_{from,to}`.
    #[inline]
    pub fn latency(&self, from: ClusterId, to: ClusterId) -> Time {
        self.latency[(from.index(), to.index())]
    }

    /// Inter-cluster gap `g_{from,to}(m)`.
    #[inline]
    pub fn gap(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap[(from.index(), to.index())]
    }

    /// The transfer cost `g_{from,to}(m) + L_{from,to}` used by every heuristic.
    #[inline]
    pub fn transfer(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap(from, to) + self.latency(from, to)
    }

    /// Intra-cluster broadcast time `T_i(m)`.
    #[inline]
    pub fn intra_time(&self, cluster: ClusterId) -> Time {
        self.intra_time[cluster.index()]
    }

    /// All cluster identifiers.
    pub fn cluster_ids(&self) -> impl Iterator<Item = ClusterId> + '_ {
        (0..self.num_clusters()).map(ClusterId)
    }

    /// A 64-bit content digest of the **full problem identity**: root, payload
    /// size, dimension, and the IEEE-754 bit pattern of every evaluated
    /// latency, gap and intra-cluster time.
    ///
    /// Two problems digest equal iff every parameter is bit-identical, so the
    /// digest distinguishes two grids that differ in a single link value as
    /// well as the same grid asked with a different root or payload. It is the
    /// schedule cache key of the serving layer — which, since 64 bits are an
    /// index and not a proof, pairs each digest hit with a full `==` check
    /// before reusing a cached schedule.
    pub fn content_digest(&self) -> u64 {
        let mut h = Fnv1a::new();
        let n = self.num_clusters();
        h.write_u64(self.root.index() as u64)
            .write_u64(self.message.as_bytes())
            .write_u64(n as u64);
        for i in 0..n {
            for j in 0..n {
                h.write_f64(self.latency[(i, j)].as_secs())
                    .write_f64(self.gap[(i, j)].as_secs());
            }
        }
        for t in &self.intra_time {
            h.write_f64(t.as_secs());
        }
        h.finish()
    }

    /// A simple lower bound on the achievable makespan: every non-root cluster
    /// must receive the message over at least one inter-cluster transfer from
    /// somewhere and then run its own internal broadcast, and the root must run
    /// its internal broadcast too. Useful for sanity checks and tests; it is not
    /// tight.
    pub fn lower_bound(&self) -> Time {
        let mut bound = self.intra_time(self.root);
        for j in self.cluster_ids() {
            if j == self.root {
                continue;
            }
            let cheapest_in = self
                .cluster_ids()
                .filter(|&i| i != j)
                .map(|i| self.transfer(i, j))
                .min()
                .unwrap_or(Time::ZERO);
            bound = bound.max(cheapest_in + self.intra_time(j));
        }
        bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::{grid5000_table3, Cluster, Grid};

    fn tiny_problem() -> BroadcastProblem {
        // 3 clusters; transfer costs chosen by hand.
        let latency = SquareMatrix::from_rows(
            3,
            vec![
                Time::ZERO,
                Time::from_millis(1.0),
                Time::from_millis(2.0),
                Time::from_millis(1.0),
                Time::ZERO,
                Time::from_millis(3.0),
                Time::from_millis(2.0),
                Time::from_millis(3.0),
                Time::ZERO,
            ],
        );
        let gap = SquareMatrix::from_rows(
            3,
            vec![
                Time::ZERO,
                Time::from_millis(100.0),
                Time::from_millis(200.0),
                Time::from_millis(100.0),
                Time::ZERO,
                Time::from_millis(300.0),
                Time::from_millis(200.0),
                Time::from_millis(300.0),
                Time::ZERO,
            ],
        );
        let intra = vec![
            Time::from_millis(50.0),
            Time::from_millis(500.0),
            Time::from_millis(20.0),
        ];
        BroadcastProblem::from_parts(ClusterId(0), MessageSize::from_mib(1), latency, gap, intra)
    }

    #[test]
    fn accessors_return_the_configured_values() {
        let p = tiny_problem();
        assert_eq!(p.num_clusters(), 3);
        assert_eq!(
            p.latency(ClusterId(0), ClusterId(2)),
            Time::from_millis(2.0)
        );
        assert_eq!(p.gap(ClusterId(1), ClusterId(2)), Time::from_millis(300.0));
        assert_eq!(
            p.transfer(ClusterId(0), ClusterId(1)),
            Time::from_millis(101.0)
        );
        assert_eq!(p.intra_time(ClusterId(1)), Time::from_millis(500.0));
    }

    #[test]
    fn from_grid_uses_collective_predictions() {
        let grid = grid5000_table3();
        let p = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        assert_eq!(p.num_clusters(), 6);
        // Singleton IDPOT clusters broadcast instantly.
        assert_eq!(p.intra_time(ClusterId(3)), Time::ZERO);
        assert_eq!(p.intra_time(ClusterId(4)), Time::ZERO);
        // The 31-machine Orsay cluster needs real time.
        assert!(p.intra_time(ClusterId(0)) > Time::ZERO);
        // Latency matches Table 3.
        assert!((p.latency(ClusterId(0), ClusterId(5)).as_micros() - 5210.99).abs() < 1e-6);
    }

    #[test]
    fn lower_bound_reflects_cheapest_incoming_edge_plus_intra() {
        let p = tiny_problem();
        // Cluster 1: cheapest incoming transfer is 101 ms (from 0), plus 500 ms intra.
        // Cluster 2: cheapest incoming is 202 ms (from 0), plus 20 ms.
        // Root intra: 50 ms. Max = 601 ms.
        assert_eq!(p.lower_bound(), Time::from_millis(601.0));
    }

    #[test]
    fn content_digest_separates_problem_identities() {
        let grid = grid5000_table3();
        let base = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        // Deterministic across rebuilds.
        assert_eq!(
            base.content_digest(),
            BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
                .content_digest()
        );
        // Same grid, different root or payload: different identity.
        let other_root = BroadcastProblem::from_grid(&grid, ClusterId(2), MessageSize::from_mib(1));
        assert_ne!(base.content_digest(), other_root.content_digest());
        let other_size = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_kib(4));
        assert_ne!(base.content_digest(), other_size.content_digest());
        // One evaluated link nudged by one ULP: different identity.
        let mut nudged = base.clone();
        let idx = (0usize, 1usize);
        nudged.gap[idx] = Time::from_secs(nudged.gap[idx].as_secs() + f64::EPSILON);
        assert_ne!(base.content_digest(), nudged.content_digest());
    }

    #[test]
    #[should_panic(expected = "outside the problem")]
    fn invalid_root_is_rejected() {
        let p = tiny_problem();
        let _ = BroadcastProblem::from_parts(
            ClusterId(7),
            p.message,
            SquareMatrix::filled(3, Time::ZERO),
            SquareMatrix::filled(3, Time::ZERO),
            vec![Time::ZERO; 3],
        );
    }

    #[test]
    fn single_cluster_problem_has_intra_only_lower_bound() {
        let grid = Grid::builder()
            .cluster(Cluster::with_fixed_time(
                ClusterId(0),
                "only",
                8,
                Time::from_millis(40.0),
            ))
            .build()
            .unwrap();
        let p = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
        assert_eq!(p.num_clusters(), 1);
        assert_eq!(p.lower_bound(), Time::from_millis(40.0));
    }
}
