//! The pattern-agnostic scheduling engine behind every heuristic.
//!
//! Every heuristic of the paper instantiates the same A/B-set formalism: pick a
//! (sender ∈ A, receiver ∈ B) pair, commit the transfer, repeat. The seed
//! implementation re-ran that loop — including a full `O(|A|·|B|)` rescan of
//! every candidate pair — inside each heuristic. [`ScheduleEngine`] extracts the
//! loop once and reduces a heuristic to a [`SelectionPolicy`]: a scoring rule
//! for candidate edges plus an optional receiver-level lookahead hook.
//!
//! ## Incremental candidate maintenance
//!
//! The engine maintains, for every receiver still in B, a row of up to
//! [`DEFAULT_K_BEST`] cached sender candidates sorted by `(edge score, sender id)`,
//! plus a **floor** entry bounding every sender outside the row. The row's
//! head is kept *exact* at all times — its stored score always equals the
//! sender's current edge score, and it is the lexicographic minimum over all
//! of A — because the selection must stay byte-identical to the paper's
//! nested loops. The remaining cached scores are *lower bounds* on their
//! senders' current scores. All three invariants lean on the monotonicity
//! contract of [`SelectionPolicy::edge_score`]: a time-sensitive score never
//! *decreases* when the sender's ready time grows.
//!
//! After a commit only two things change:
//!
//! * the committed **receiver** joined A — it is offered as a candidate to
//!   every remaining receiver in `O(K_BEST)` each: inserted into the row at
//!   its sorted position (folding any displaced last entry into the floor) or
//!   tightening the floor directly;
//! * the committed **sender**'s ready time grew — receivers whose cached best
//!   sender is that cluster are *repaired* in `O(K_BEST)`: the head is
//!   refreshed and bubbled to its sorted position, surfacing runners-up until
//!   the head is fresh. A fresh head underruns every cached lower bound, so it
//!   is the exact minimum over the row; if it also beats the floor it is the
//!   global minimum (a **second-best hit** when the old best held on, a
//!   **promotion** when a runner-up took over) and the repair is done. Only
//!   when the whole row deteriorated past the floor does the engine fall back
//!   to a **rescan**.
//!
//! All rescans triggered by one commit share a single pruned walk over the
//! senders in ready order (a sorted array kept incrementally — ready times
//! only grow, so a commit re-sorts with one bubble pass and one insert).
//! Each pending receiver retires from the walk as soon as the next ready time
//! plus its static score offset ([`SelectionPolicy::edge_score_offset`])
//! exceeds its provisional `(K_BEST+1)`-smallest score — sound because an
//! edge score is bounded below by its sender's ready time plus that offset —
//! and leaves with an exact rebuilt row and floor.
//!
//! Policies whose scores do not depend on ready times (Flat Tree, FEF) declare
//! [`SelectionPolicy::sender_time_sensitive`] `false` and never trigger
//! repairs. Together with the shared sorted-lookahead rows of
//! [`LookaheadWorkspace`] this brings a full schedule to `O(n² log n)` from the
//! seed's `O(n³)` (and worse with lookahead), with the rescan term — the
//! remaining super-quadratic contribution — amortised away by the runner-up
//! repairs (`benches/engine_scaling.rs` counts them; on Table-2 grids the
//! repair rate is >99% at 100 clusters and still ~89% at 1000 — see the
//! committed `BENCH_engine_scaling.json`).
//!
//! All engine buffers are reused across rounds, heuristics and problems: after
//! warm-up, a call to [`ScheduleEngine::makespan`] performs **zero heap
//! allocations** (asserted by `tests/alloc_probe.rs`). The
//! [`EngineTelemetry`] counters compile to nothing unless the crate's
//! `telemetry` feature is enabled.
//!
//! Tie-breaking replicates the seed heuristics exactly — byte-identical
//! schedules are asserted by `tests/proptest_invariants.rs` — so the engine is
//! a drop-in replacement, not a numerical approximation.
//!
//! One theoretical corner is out of scope of that guarantee: for the lookahead
//! ECEF variants the engine resolves each receiver's best sender on the edge
//! score alone and adds `F_j` afterwards, while the original loop compared the
//! rounded sums `fl((RT_i + g_ij + L_ij) + F_j)`. The selected *objective
//! value* is always identical (rounding is monotone), but if two senders'
//! distinct edge scores are absorbed to the exact same sum by a much larger
//! `F_j` (a sub-ulp coincidence that requires `|e₁−e₂| < ulp(e+F)`), the two
//! implementations may pick different — equally scoring — senders. Continuous
//! random instances hit this with probability ~0, and exact score ties (the
//! case that actually occurs, e.g. symmetric grids) break identically on both
//! paths.

use crate::heuristics::{
    BottomUpPolicy, EcefPolicy, FefPolicy, FlatTreePolicy, HeuristicKind, Lookahead,
};
use crate::perturb::{DeltaDirection, Perturbation, ReplayDelta};
use crate::{BroadcastProblem, Schedule, ScheduleEvent};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};
use std::cell::RefCell;

/// Asserts (in debug builds) that a policy score is not NaN.
///
/// [`Time`] forbids NaN at *construction*, but its `Add`/`Sub` operators work
/// on raw `f64` for speed — so `INF − INF` or `0 × INF` arithmetic inside a
/// policy can smuggle a NaN into the engine, where `total_cmp` sorts it
/// *above* `+∞` and silently corrupts the k-best rows (a NaN head would never
/// be displaced). Problems with infinite sentinel edges (e.g.
/// [`ScatterProblem::as_broadcast_problem`](crate::ScatterProblem::as_broadcast_problem))
/// are exactly the inputs that can trip this, so every score entering the
/// candidate cache or the selection scan passes through this check.
#[inline]
fn debug_assert_score_not_nan(score: Time) {
    debug_assert!(
        !score.as_secs().is_nan(),
        "selection produced a NaN score (INF − INF or 0 × INF in a policy?)"
    );
}

/// Sentinel sender id meaning "no cached entry".
const NO_SENDER: u32 = u32::MAX;

/// The widest candidate-row width the tuning ever considers (the best entry
/// plus `K − 1` runners-up). Once the upper end of [`adaptive_k_best`]'s
/// range and still the cap for the `engine_scaling` probe sweep; since the
/// per-receiver pruned rescan walk made row misses cheap, the measured
/// optimum sits far below it (see [`adaptive_k_best`]) and wide rows only
/// pay insertion shuffles for repairs that rarely need the depth.
///
/// The row width is a **pure performance knob**: schedules are byte-identical
/// for any `K ≥ 1` (the row head is kept exact and rescans rebuild exact
/// rows), so both [`adaptive_k_best`] and the [`ScheduleEngine::with_k_best`]
/// override are free to pick any width — the `engine_scaling` bench sweeps
/// K ∈ {2, 4, 8, 16, 32} at 500/1000 clusters and records the per-K repair
/// rates plus the adaptive choice per size in `BENCH_engine_scaling.json`.
pub const DEFAULT_K_BEST: usize = 16;

/// Senders per bucket of the ready-order index: each bucket of the sorted
/// sender array carries a cached minimum of `fl(ready + r_s)` (the per-sender
/// score bound of [`SelectionPolicy::sender_score_offset`]) so the shared
/// rescan walk can retire a whole bucket with one comparison. 32 keeps a
/// bucket's ready times inside four cache lines and the per-commit dirty
/// marking cheap; the minima are recomputed lazily, only when a walk actually
/// reaches a dirty bucket.
const WALK_BUCKET: usize = 32;

/// The adaptive candidate-row width for the steepest-decay policy class: the
/// **widest** `K` a default-constructed [`ScheduleEngine`] uses for an
/// `n`-cluster problem.
///
/// Because schedules are byte-identical for any `K ≥ 1`, this is pure tuning.
/// The width table is now **per policy** ([`adaptive_k_best_for`], keyed by
/// [`SelectionPolicy::row_decay`]): Flat Tree and FEF never invalidate a
/// cached score and run width 1, plain ECEF gets the moderate table, and the
/// lookahead family plus BottomUp — whose repair rate decays hardest with n —
/// get this, the [`RowDecay::Steep`] column. [`ScheduleEngine::with_k_best`]
/// overrides every class with one fixed width (the `engine_scaling` probe is
/// built on that override).
pub fn adaptive_k_best(n: usize) -> usize {
    adaptive_k_best_for(RowDecay::Steep, n)
}

/// How fast a policy's repair rate decays with the problem size — the class
/// a [`SelectionPolicy`] reports via [`SelectionPolicy::row_decay`] so the
/// adaptive width table ([`adaptive_k_best_for`]) can size candidate rows
/// per policy instead of one-width-fits-all.
///
/// The classes come straight from the telemetry sweep in
/// `BENCH_engine_scaling.json`:
///
/// - [`RowDecay::Static`] — policies whose scores never change once cached
///   (Flat Tree and FEF commit **zero** invalidations at every size), so any
///   runner-up slot is pure insertion-shuffle overhead. Width 1.
/// - [`RowDecay::Gradual`] — sender-time-sensitive policies without
///   lookahead bias (plain ECEF): invalidations grow with n but most repairs
///   land in the first runner-up slots.
/// - [`RowDecay::Steep`] — the lookahead family and BottomUp, whose repair
///   rate at a fixed width falls hardest with n (0.67 at 1000 clusters at
///   K = 4; K = 8 recovers 0.80): rows widen one notch earlier and one notch
///   further.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RowDecay {
    /// Cached scores never invalidate: width 1 at every size.
    Static,
    /// Invalidations grow with n but repairs stay shallow.
    #[default]
    Gradual,
    /// Repair rate decays fastest with n; widen early and far.
    Steep,
}

/// The per-policy size-aware candidate-row width table: the `K` a
/// default-constructed [`ScheduleEngine`] uses for an `n`-cluster problem
/// under a policy of the given [`RowDecay`] class.
///
/// Like [`adaptive_k_best`] (which is now the [`RowDecay::Steep`] column,
/// the widest), this is pure tuning — schedules are byte-identical for any
/// `K ≥ 1` — calibrated from the `k_best_probe` repair rates in
/// `BENCH_engine_scaling.json`.
pub fn adaptive_k_best_for(decay: RowDecay, n: usize) -> usize {
    match decay {
        RowDecay::Static => 1,
        RowDecay::Gradual => match n {
            0..=256 => 2,
            257..=768 => 4,
            _ => 6,
        },
        RowDecay::Steep => match n {
            0..=192 => 2,
            193..=512 => 4,
            _ => 8,
        },
    }
}

/// Runtime candidate-row width: adaptive per problem size and policy class
/// by default, fixed when overridden via [`ScheduleEngine::with_k_best`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum KBest {
    /// Resolve to [`adaptive_k_best_for`] of the policy's [`RowDecay`] class
    /// and the problem size at each run.
    #[default]
    Adaptive,
    /// Always use this width.
    Fixed(usize),
}

impl KBest {
    #[inline]
    fn resolve_for(self, decay: RowDecay, n: usize) -> usize {
        match self {
            KBest::Adaptive => adaptive_k_best_for(decay, n),
            KBest::Fixed(k) => k,
        }
    }
}

/// Read-only view of the engine state handed to policies.
///
/// The flat `g + L` cost matrix is carried in **two orientations** — the
/// sender-major original and a receiver-major transposed twin holding the
/// exact same floats — and each view is constructed over whichever one its
/// call site streams contiguously. The offer loop (one fresh sender scored
/// against every receiver) reads the sender-major row; the repair path and
/// the shared rescan walk (many senders scored against one receiver) read the
/// receiver-major row, which keeps each pending receiver's costs inside a few
/// cache lines instead of striding a column through the whole matrix.
/// Policies are none the wiser: [`EngineView::completion_estimate`] and
/// [`EngineView::transfer`] return bit-identical values either way.
#[derive(Clone, Copy)]
pub struct EngineView<'a> {
    problem: &'a BroadcastProblem,
    in_a: &'a [bool],
    ready: &'a [Time],
    /// Flat copy of `g_ij + L_ij` in the orientation named by
    /// `receiver_major`, prebuilt per run so a completion estimate costs one
    /// memory read instead of two matrix lookups.
    mat: &'a [Time],
    /// Whether `mat` is the receiver-major twin (`mat[r·n + s]`) instead of
    /// the sender-major original (`mat[s·n + r]`).
    receiver_major: bool,
    /// The compacted list of clusters still in B (arbitrary order — commits
    /// swap-remove). Policies that maintain incremental caches over B scan
    /// this instead of testing `in_b` across all clusters.
    receivers: &'a [u32],
    n: usize,
}

impl<'a> EngineView<'a> {
    /// The problem being scheduled.
    #[inline]
    pub fn problem(&self) -> &'a BroadcastProblem {
        self.problem
    }

    /// The clusters still waiting in B, as the engine's compacted list.
    ///
    /// The order is arbitrary (commits swap-remove), so it must only be used
    /// where the result is order-independent — e.g. scanning for an extremum
    /// whose *value* is what matters.
    #[inline]
    pub fn receivers(&self) -> &'a [u32] {
        self.receivers
    }

    /// Ready time `RT_i` of a cluster in set A.
    #[inline]
    pub fn ready_time(&self, cluster: ClusterId) -> Time {
        self.ready[cluster.index()]
    }

    /// Whether the cluster is in set A (holds the message).
    #[inline]
    pub fn is_in_a(&self, cluster: ClusterId) -> bool {
        self.in_a[cluster.index()]
    }

    /// Whether the cluster is still in set B (waiting).
    #[inline]
    pub fn in_b(&self, cluster: ClusterId) -> bool {
        !self.in_a[cluster.index()]
    }

    /// The static transfer cost `g_ij + L_ij` of the edge, served from the
    /// engine's prebuilt flat matrix: bit-identical to
    /// `problem.transfer(from, to)` on the uniform path, payload-priced on the
    /// costed path.
    #[inline]
    pub fn transfer(&self, from: ClusterId, to: ClusterId) -> Time {
        if self.receiver_major {
            self.mat[to.index() * self.n + from.index()]
        } else {
            self.mat[from.index() * self.n + to.index()]
        }
    }

    /// `RT_i + g_ij + L_ij`: completion estimate of a hypothetical transfer.
    #[inline]
    pub fn completion_estimate(&self, sender: ClusterId, receiver: ClusterId) -> Time {
        self.ready[sender.index()] + self.transfer(sender, receiver)
    }
}

/// Direction of the cross-receiver objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Pick the receiver with the smallest objective (ECEF family, FEF).
    Minimize,
    /// Pick the receiver with the largest objective (BottomUp's max-min rule).
    Maximize,
}

/// Tie-breaking across receivers whose objectives compare equal.
///
/// The variants reproduce the iteration orders of the original nested-loop
/// implementations, which is what makes engine schedules byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the smallest receiver id, then the smallest sender id (the
    /// receiver-outer/sender-inner loops of the ECEF family and BottomUp).
    ReceiverThenSender,
    /// Prefer the smallest sender id, then the smallest receiver id (FEF's
    /// sender-outer/receiver-inner loop).
    SenderThenReceiver,
}

/// Number of entries each lookahead row sorts eagerly; the rest of the row is
/// only partitioned (everything behind the prefix is known to sort after it)
/// and gets sorted lazily, in geometrically growing chunks, iff a cursor ever
/// walks that deep. See [`LookaheadWorkspace::build_rows`].
const LOOKAHEAD_SORT_PREFIX: usize = 32;

/// Flat, cache-friendly per-receiver candidate rows with monotone cursors,
/// owned by the engine and shared by every [`SelectionPolicy`].
///
/// The ECEF lookahead variants need, per receiver `j`, the remaining cluster
/// minimising (or maximising) a static key `g_jk + L_jk (+ T_k)`. Each policy
/// used to carry its own `n × n` row matrix; the engine now owns a single flat
/// buffer that the active policy rebuilds at [`SelectionPolicy::reset`] — one
/// allocation reused across all heuristics, problems and rounds. Row `j`
/// occupies `rows[j·n .. (j+1)·n]` ordered by the policy's key; because set B
/// only ever shrinks, a per-receiver cursor that skips departed clusters
/// serves each lookup in amortised `O(1)`.
///
/// Rows are **partially sorted**: a build fully sorts only the first
/// `LOOKAHEAD_SORT_PREFIX` entries of each row (after an `O(n)` partition
/// guaranteeing everything behind the prefix sorts after it) and
/// [`LookaheadWorkspace::first_alive`] extends the sorted region on demand,
/// doubling it whenever a cursor reaches its end. Most cursors never leave
/// the prefix — a receiver's cursor only advances past *departed* clusters,
/// and the expected first-alive depth with `k` clusters remaining is `n/k`,
/// so the summed depth over a whole schedule is `O(n log n)` — which turns
/// the build from `n` full sorts (`O(n² log n)`, the single largest cost of a
/// large lookahead run) into `O(n²)` with a small constant. The comparator
/// totally orders entries (key ties break on cluster id), so the lazily
/// extended order is unique: every sequence of `first_alive` calls sees
/// exactly what the eager full sort produced, byte for byte.
#[derive(Debug, Default)]
pub struct LookaheadWorkspace {
    /// `(key, id)` pairs; per row, `sorted_len` leading entries are sorted,
    /// the rest partitioned behind them in arbitrary order.
    rows: Vec<(Time, u32)>,
    sorted_len: Vec<u32>,
    cursor: Vec<u32>,
    stride: usize,
    descending: bool,
}

impl LookaheadWorkspace {
    /// Rebuilds the rows for an `n`-cluster problem: row `j` holds every
    /// cluster id ordered by `key(j, k)` — ascending, or descending when
    /// `descending` — with ties broken by cluster id for determinism. Only a
    /// short prefix of each row is sorted eagerly; see the type docs.
    pub fn build_rows(
        &mut self,
        n: usize,
        descending: bool,
        mut key: impl FnMut(usize, usize) -> Time,
    ) {
        self.stride = n;
        self.descending = descending;
        self.rows.clear();
        self.rows.reserve(n * n);
        self.cursor.clear();
        self.cursor.resize(n, 0);
        self.sorted_len.clear();
        self.sorted_len.resize(n, 0);
        for j in 0..n {
            let base = self.rows.len();
            for k in 0..n {
                self.rows.push((key(j, k), k as u32));
            }
            let row = &mut self.rows[base..];
            self.sorted_len[j] =
                Self::extend_sorted(row, 0, LOOKAHEAD_SORT_PREFIX, descending) as u32;
        }
    }

    /// Grows the sorted region of `row` from `sorted` entries to `new_len`
    /// (clamped to the row length), preserving the partition invariant:
    /// everything behind the sorted region compares after it. Returns the new
    /// sorted length.
    fn extend_sorted(
        row: &mut [(Time, u32)],
        sorted: usize,
        new_len: usize,
        descending: bool,
    ) -> usize {
        let new_len = new_len.min(row.len());
        if new_len <= sorted {
            return sorted;
        }
        let tail = &mut row[sorted..];
        let take = new_len - sorted;
        if descending {
            let cmp = |a: &(Time, u32), b: &(Time, u32)| b.0.cmp(&a.0).then(a.1.cmp(&b.1));
            if take < tail.len() {
                tail.select_nth_unstable_by(take - 1, cmp);
            }
            tail[..take].sort_unstable_by(cmp);
        } else {
            if take < tail.len() {
                tail.select_nth_unstable(take - 1);
            }
            tail[..take].sort_unstable();
        }
        new_len
    }

    /// First entry of row `j` for which `alive` holds, advancing the cursor
    /// permanently past rejected entries (callers must only reject entries
    /// that can never become alive again — set B only shrinks). Extends the
    /// row's sorted region on demand when the cursor outruns it.
    #[inline]
    pub fn first_alive(&mut self, j: usize, mut alive: impl FnMut(usize) -> bool) -> Option<usize> {
        let n = self.stride;
        let row = &mut self.rows[j * n..(j + 1) * n];
        let cursor = &mut self.cursor[j];
        let mut sorted = self.sorted_len[j] as usize;
        loop {
            while (*cursor as usize) < sorted {
                let k = row[*cursor as usize].1 as usize;
                if alive(k) {
                    return Some(k);
                }
                *cursor += 1;
            }
            if sorted >= n {
                return None;
            }
            sorted = Self::extend_sorted(
                row,
                sorted,
                (sorted * 2).max(LOOKAHEAD_SORT_PREFIX),
                self.descending,
            );
            self.sorted_len[j] = sorted as u32;
        }
    }
}

/// Per-edge payload sizes and transfer costs, overriding the uniform-message
/// matrices of a [`BroadcastProblem`] so committed transfers can carry
/// **receiver-specific blocks** — the relayed scatters and pair exchanges of
/// [`patterns`](crate::patterns).
///
/// The broadcast engine prices every edge for the problem's single message
/// size. Personalised patterns break that assumption: a scatter edge carries
/// the receiver's aggregate block (and a relayed edge a whole concatenation of
/// blocks), so `g` must be evaluated per edge, for the payload that edge
/// actually moves. `EdgeCosts` is that evaluation, flat and sender-major like
/// the engine's own `tx` matrix; [`ScheduleEngine::schedule_with_costs`] runs
/// the ordinary round loop against it. With
/// [`EdgeCosts::uniform`] the engine's behaviour — schedules, floating-point
/// times, tie-breaks — is **byte-identical** to the uncosted path (asserted by
/// the workspace parity proptests), so the broadcast fast path pays nothing
/// for the generality.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCosts {
    n: usize,
    payload: Vec<MessageSize>,
    gap: Vec<Time>,
    latency: Vec<Time>,
}

impl EdgeCosts {
    /// Prices every directed edge of `grid` for the payload returned by
    /// `payload(sender, receiver)`: the gap is `g_{s,r}(payload)` and the
    /// latency the link latency. Diagonal entries are zero.
    pub fn priced_by_grid(
        grid: &Grid,
        mut payload: impl FnMut(ClusterId, ClusterId) -> MessageSize,
    ) -> Self {
        let n = grid.num_clusters();
        let mut costs = EdgeCosts {
            n,
            payload: Vec::with_capacity(n * n),
            gap: Vec::with_capacity(n * n),
            latency: Vec::with_capacity(n * n),
        };
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    costs.payload.push(MessageSize::ZERO);
                    costs.gap.push(Time::ZERO);
                    costs.latency.push(Time::ZERO);
                } else {
                    let m = payload(ClusterId(s), ClusterId(r));
                    costs.payload.push(m);
                    costs.gap.push(grid.gap(ClusterId(s), ClusterId(r), m));
                    costs.latency.push(grid.latency(ClusterId(s), ClusterId(r)));
                }
            }
        }
        costs
    }

    /// The degenerate uniform-payload case: every edge carries the problem's
    /// message and costs exactly what the problem's matrices say. Scheduling
    /// with these costs reproduces the plain engine path bit for bit.
    pub fn uniform(problem: &BroadcastProblem) -> Self {
        let n = problem.num_clusters();
        let mut costs = EdgeCosts {
            n,
            payload: Vec::with_capacity(n * n),
            gap: Vec::with_capacity(n * n),
            latency: Vec::with_capacity(n * n),
        };
        for s in 0..n {
            for r in 0..n {
                let payload = if s == r {
                    MessageSize::ZERO
                } else {
                    problem.message
                };
                costs.payload.push(payload);
                costs.gap.push(problem.gap(ClusterId(s), ClusterId(r)));
                costs
                    .latency
                    .push(problem.latency(ClusterId(s), ClusterId(r)));
            }
        }
        costs
    }

    /// Number of clusters the cost matrix covers.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.n
    }

    /// Payload carried by the directed edge `from → to`.
    #[inline]
    pub fn payload(&self, from: ClusterId, to: ClusterId) -> MessageSize {
        self.payload[from.index() * self.n + to.index()]
    }

    /// Gap `g_{from,to}(payload)` of the edge.
    #[inline]
    pub fn gap(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap[from.index() * self.n + to.index()]
    }

    /// Latency of the edge.
    #[inline]
    pub fn latency(&self, from: ClusterId, to: ClusterId) -> Time {
        self.latency[from.index() * self.n + to.index()]
    }

    /// Full transfer time `g(payload) + L` of the edge.
    #[inline]
    pub fn transfer(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap(from, to) + self.latency(from, to)
    }
}

/// One point-to-point transfer of a [`TransferSet`]: a payload moving between
/// two cluster coordinators, with its wide-area gap and latency already priced
/// for that payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Sending cluster.
    pub from: ClusterId,
    /// Receiving cluster.
    pub to: ClusterId,
    /// Bytes this transfer moves (e.g. one cluster pair's personalised data).
    pub payload: MessageSize,
    /// Interface occupancy `g_{from,to}(payload)` on **both** endpoints.
    pub gap: Time,
    /// Link latency `L_{from,to}`.
    pub latency: Time,
}

/// A set of independent point-to-point transfers to place on the clusters'
/// single network interfaces — the many-transfer sibling of the engine's A/B
/// broadcast loop, used for personalised exchanges where every cluster both
/// sends and receives many times (an all-to-all decomposes into one transfer
/// per ordered cluster pair; see
/// [`alltoall_schedule`](crate::patterns::alltoall_schedule)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferSet {
    n: usize,
    transfers: Vec<Transfer>,
}

impl TransferSet {
    /// An empty set over `n` clusters.
    pub fn new(n: usize) -> Self {
        TransferSet {
            n,
            transfers: Vec::new(),
        }
    }

    /// Adds a transfer to the set.
    pub fn push(&mut self, transfer: Transfer) {
        assert!(
            transfer.from.index() < self.n && transfer.to.index() < self.n,
            "transfer endpoints outside the cluster set"
        );
        assert_ne!(
            transfer.from, transfer.to,
            "a cluster never sends to itself"
        );
        self.transfers.push(transfer);
    }

    /// Number of clusters the set spans.
    pub fn num_clusters(&self) -> usize {
        self.n
    }

    /// The transfers, in insertion order.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }
}

/// A committed transfer of an [`ExchangeSchedule`], with its timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedTransfer {
    /// Sending cluster.
    pub from: ClusterId,
    /// Receiving cluster.
    pub to: ClusterId,
    /// Bytes moved.
    pub payload: MessageSize,
    /// When the sender's interface starts pushing (both interfaces are then
    /// occupied until `start + gap`).
    pub start: Time,
    /// When the receiver holds the payload: `start + gap + latency`.
    pub arrival: Time,
}

/// The timed placement of a [`TransferSet`] produced by
/// [`ScheduleEngine::schedule_transfers`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeSchedule {
    /// The transfers in the order they were committed.
    pub transfers: Vec<TimedTransfer>,
    /// Per cluster: when its network interface is free for good (all sends
    /// and receives drained).
    pub interface_free: Vec<Time>,
    /// Per cluster: arrival time of the last payload it receives.
    pub last_arrival: Vec<Time>,
}

impl ExchangeSchedule {
    /// Completion time of each cluster once a per-cluster local phase of
    /// `local[i]` (e.g. the intra-cluster all-to-all) runs after its last
    /// wide-area send or receive.
    pub fn completion_with_local(&self, local: &[Time]) -> Vec<Time> {
        assert_eq!(local.len(), self.interface_free.len());
        self.interface_free
            .iter()
            .zip(&self.last_arrival)
            .zip(local)
            .map(|((&nic, &arr), &l)| nic.max(arr) + l)
            .collect()
    }

    /// The exchange makespan: the latest per-cluster completion.
    pub fn makespan_with_local(&self, local: &[Time]) -> Time {
        self.completion_with_local(local)
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// Counters describing how the engine's incremental cache behaved.
///
/// All counters are cumulative across runs of one [`ScheduleEngine`]; sample
/// them with [`ScheduleEngine::telemetry`] or [`ScheduleEngine::take_telemetry`].
/// Recording is compiled in only with the crate's `telemetry` feature — without
/// it every recording call is an empty inline function and the counters stay
/// zero, so the hot path pays nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Rounds executed (one committed transfer each).
    pub rounds: u64,
    /// Best-sender invalidations: a committed sender's ready time grew while it
    /// was some receiver's cached best sender.
    pub invalidations: u64,
    /// Invalidations repaired in `O(1)` because the refreshed score still beat
    /// the runner-up floor.
    pub second_best_hits: u64,
    /// Invalidations repaired in `O(1)` by promoting a fresh runner-up to best.
    pub promotions: u64,
    /// Invalidations that fell back to a pruned ready-order rescan.
    pub rescans: u64,
    /// Senders examined by the shared rescan walks — the dominant rescan
    /// cost (previously exported as `heap_pops`, a name that survived from
    /// the binary-heap implementation the sorted walk replaced).
    pub walked_senders: u64,
    /// Whole buckets of the ready-order index the shared rescan walks skipped
    /// with a single bound comparison instead of walking their senders
    /// individually.
    pub bucket_skips: u64,
    /// Transfers committed by the exchange scheduler
    /// ([`ScheduleEngine::schedule_transfers`]).
    pub exchange_commits: u64,
    /// Heap entries popped by the exchange scheduler: one fresh pop per commit
    /// plus one per stale entry. `exchange_pops − exchange_commits` is the
    /// lazy-invalidation overhead; the complexity regression test pins it.
    pub exchange_pops: u64,
    /// Stale exchange-heap entries re-keyed and re-inserted after a pop found
    /// their stored completion outdated (an endpoint's interface moved).
    pub exchange_reinserts: u64,
    /// Candidate completions evaluated by the retained O(T²) oracle scan
    /// ([`ScheduleEngine::schedule_transfers_quadratic`]).
    pub exchange_oracle_scans: u64,
    /// Heads the batch-shift exchange scheduler stepped past because their
    /// cluster was not the governing (later) endpoint — deferred to the
    /// partner's queue, or (when both static copies had already been passed)
    /// adopted by the now-governing partner's side min-heap
    /// (`ScheduleEngine::schedule_transfers_batch_shift`; stays zero
    /// without the `fast-math` feature).
    pub exchange_migrations: u64,
    /// Commits replayed **verbatim** from a [`CommitLog`] during a warm-start
    /// run ([`ScheduleEngine::reschedule_perturbed`] and friends): the logged
    /// selection was trusted outright and only the event times were
    /// recomputed.
    pub replayed_commits: u64,
    /// Commits a warm-start replay had to **verify** against the perturbed
    /// problem (winner tuple or dirty receivers re-scored) and still took
    /// from the log.
    pub repaired_commits: u64,
    /// Commits produced by full select/commit rounds: the warm-start suffix
    /// after a replay diverged, the crash-recovery repair of
    /// [`ScheduleEngine::reschedule_excluding`], and the cold fallback of an
    /// incompatible commit log.
    pub recomputed_commits: u64,
}

impl EngineTelemetry {
    /// Invalidations repaired from the runner-up entry without a rescan
    /// (second-best hits plus promotions).
    pub fn repaired_from_second_best(&self) -> u64 {
        self.second_best_hits + self.promotions
    }

    /// Fraction of invalidations repaired without a rescan (1.0 when no
    /// invalidation occurred).
    pub fn repair_rate(&self) -> f64 {
        if self.invalidations == 0 {
            1.0
        } else {
            self.repaired_from_second_best() as f64 / self.invalidations as f64
        }
    }

    #[inline]
    fn round(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.rounds += 1;
        }
    }

    #[inline]
    fn invalidation(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.invalidations += 1;
        }
    }

    #[inline]
    fn second_best_hit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.second_best_hits += 1;
        }
    }

    #[inline]
    fn promotion(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.promotions += 1;
        }
    }

    #[inline]
    fn rescan(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.rescans += 1;
        }
    }

    #[inline]
    fn walked_sender(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.walked_senders += 1;
        }
    }

    #[inline]
    fn bucket_skip(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.bucket_skips += 1;
        }
    }

    #[inline]
    fn exchange_commit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_commits += 1;
        }
    }

    #[inline]
    fn exchange_pop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_pops += 1;
        }
    }

    #[inline]
    fn exchange_reinsert(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_reinserts += 1;
        }
    }

    #[inline]
    fn exchange_oracle_scan(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_oracle_scans += 1;
        }
    }

    #[inline]
    #[cfg_attr(not(feature = "fast-math"), allow(dead_code))]
    fn exchange_migration(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_migrations += 1;
        }
    }

    #[inline]
    fn replayed_commit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.replayed_commits += 1;
        }
    }

    #[inline]
    fn repaired_commit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.repaired_commits += 1;
        }
    }

    #[inline]
    fn recomputed_commit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.recomputed_commits += 1;
        }
    }

    #[inline]
    fn recomputed_many(&mut self, count: usize) {
        #[cfg(feature = "telemetry")]
        {
            self.recomputed_commits += count as u64;
        }
        #[cfg(not(feature = "telemetry"))]
        let _ = count;
    }
}

/// How a policy's scores react to the quantities a [`Perturbation`] can
/// change (gaps, and through them sender ready times) — consulted by the
/// commit-log replay of [`ScheduleEngine::reschedule_perturbed`] to decide
/// how much of a baseline log can be trusted under a perturbed problem.
///
/// The conservative default (every flag `false`) makes replay diverge at the
/// first commit any changed matrix entry could influence, which is always
/// correct — the flags only unlock *longer verbatim prefixes*, never
/// different output (the warm-start bit-identity invariant holds for any
/// flag combination, honest or conservative; a *dishonest* flag breaks it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayTraits {
    /// Scores and biases never read gaps or ready times — latency-only (FEF)
    /// or constant (Flat Tree) selection. Replay then trusts every logged
    /// selection outright and only recomputes event times.
    pub gap_blind: bool,
    /// Scores and biases are monotone **non-decreasing** in every gap entry
    /// (and, as [`SelectionPolicy::edge_score`] already requires, in sender
    /// ready times). Combined with a minimised objective, the
    /// receiver-then-sender tie-break and a worsening-only delta, replay can
    /// verify a suspect commit against its logged runner-up instead of
    /// diverging outright.
    pub gap_monotone: bool,
    /// [`SelectionPolicy::replay_bias`] is implemented and returns floats
    /// bit-identical to what the policy's incremental caches would serve at
    /// the same round. Required (for biased policies) before replay will
    /// re-score any logged commit; without it a dirty problem diverges at
    /// the first commit.
    pub replay_bias_exact: bool,
}

/// A scheduling heuristic reduced to its selection rule.
///
/// Per round the engine selects the receiver optimising
/// `best_over_senders(edge_score) + receiver_bias`, paired with the sender
/// achieving that best edge score (smallest score, then smallest sender id).
///
/// Policies are `Send` so a warm [`ScheduleEngine`] (which owns one boxed
/// policy per heuristic) can move into a worker thread — the engine-pool
/// shape the sharded batch runners and the simulator's what-if pool build on.
/// Policy state is per-engine scratch, never shared, so this costs
/// implementations nothing.
pub trait SelectionPolicy: Send {
    /// Display name recorded in produced [`Schedule`]s.
    fn name(&self) -> &str;

    /// Called once before each schedule; (re)build per-problem state. Policies
    /// that need per-receiver sorted candidate rows build them into the
    /// engine-owned `workspace` instead of carrying their own buffers, keying
    /// them off [`EngineView::transfer`] — the engine's prebuilt flat cost
    /// matrix, which also means lookahead keys see per-edge payload prices on
    /// the costed path instead of the problem's uniform matrices.
    fn reset(&mut self, view: &EngineView<'_>, workspace: &mut LookaheadWorkspace) {
        let _ = (view, workspace);
    }

    /// Score of the candidate edge `sender → receiver`; lower is better.
    ///
    /// Time-sensitive policies must guarantee two things the engine's
    /// incremental cache relies on:
    ///
    /// * `edge_score(s, r) >= view.ready_time(s)` — the pruned rescans stop
    ///   walking the ready-ordered senders on this bound;
    /// * the score depends on mutable engine state only through the sender's
    ///   ready time and never *decreases* when that ready time grows — the
    ///   runner-up (second-best) floor invariant depends on this monotonicity.
    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time;

    /// Receiver-level additive term (the lookahead `F_j`); defaults to zero.
    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        let _ = (view, workspace, receiver);
        Time::ZERO
    }

    /// Whether [`SelectionPolicy::receiver_bias`] can be non-zero. When
    /// `false` the engine skips bias evaluation in the selection scan
    /// entirely.
    fn uses_receiver_bias(&self) -> bool {
        true
    }

    /// Batched form of [`SelectionPolicy::receiver_bias`]: fill `out` with the
    /// bias of every receiver in `receivers`, in order. Called once per round
    /// — policies with per-receiver bias state should override it with a
    /// monomorphic loop so the per-receiver virtual dispatch of the default
    /// disappears from the selection hot path.
    fn receiver_biases(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receivers: &[u32],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        for &r in receivers {
            out.push(self.receiver_bias(view, workspace, ClusterId(r as usize)));
        }
    }

    /// Whether the cross-receiver objective is minimised or maximised.
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    /// Tie-break rule across receivers with equal objectives.
    fn tie_break(&self) -> TieBreak {
        TieBreak::ReceiverThenSender
    }

    /// Whether [`SelectionPolicy::edge_score`] depends on sender ready times.
    /// When `false` the engine skips ready-time invalidation entirely.
    fn sender_time_sensitive(&self) -> bool {
        true
    }

    /// Which column of the size-aware width table ([`adaptive_k_best_for`])
    /// sizes this policy's candidate rows. Pure tuning — schedules are
    /// byte-identical for any width — so the default is derived from
    /// [`SelectionPolicy::sender_time_sensitive`]: insensitive policies never
    /// invalidate a cached score ([`RowDecay::Static`], width 1), sensitive
    /// ones get the moderate [`RowDecay::Gradual`] table. Policies whose
    /// telemetry shows the repair rate decaying hard with problem size (the
    /// lookahead family, BottomUp) override this to [`RowDecay::Steep`].
    fn row_decay(&self) -> RowDecay {
        if self.sender_time_sensitive() {
            RowDecay::Gradual
        } else {
            RowDecay::Static
        }
    }

    /// A static per-receiver bound `c_j` tightening the generic
    /// `edge_score(s, r) >= ready_time(s)` contract to
    /// `edge_score(s, r) >= ready_time(s) + c_j` for **every** possible sender
    /// — e.g. the receiver's cheapest incoming transfer for completion-time
    /// scores. The engine adds it to the walked ready time when pruning
    /// rescans, retiring receivers from the ready-order walk much earlier.
    ///
    /// `min_incoming_transfer` is `min_{k != receiver} (g_kj + L_kj)`,
    /// precomputed by the engine in one sequential pass per problem —
    /// completion-estimate scores can simply return it instead of re-scanning
    /// a matrix column per receiver.
    ///
    /// The inequality must hold under *rounded* float arithmetic: the engine
    /// evaluates the bound as the single rounded sum `fl(t + c_j)`, which is
    /// dominated by any score of the shape `fl(t + x)` with `x >= c_j`
    /// (rounded addition is monotone). A `c_j` that is itself a rounded sum of
    /// score components is **not** automatically safe — addition is not
    /// associative under rounding. Only consulted for time-sensitive
    /// policies; defaults to zero (no tightening).
    fn edge_score_offset(
        &self,
        problem: &BroadcastProblem,
        receiver: ClusterId,
        min_incoming_transfer: Time,
    ) -> Time {
        let _ = (problem, receiver, min_incoming_transfer);
        Time::ZERO
    }

    /// A second, **post-rounding** static bound component `d_j`: the engine
    /// prunes rescans with `fl(fl(t + c_j) + d_j)`, so this hook is for score
    /// shapes of the form `fl(fl(t + x) + y)` with `x >= c_j` and `y >= d_j`
    /// — rounded addition is monotone in each argument separately, so the
    /// two-step bound is float-safe where folding `d_j` into `c_j` would not
    /// be (addition is not associative under rounding). BottomUp uses it for
    /// the receiver's intra-cluster broadcast time, which its scores add
    /// *after* the completion estimate's rounding. Defaults to zero, which
    /// adds exactly nothing (`fl(x + 0) = x` for the non-negative finite
    /// times the engine walks).
    fn edge_score_post_offset(&self, problem: &BroadcastProblem, receiver: ClusterId) -> Time {
        let _ = (problem, receiver);
        Time::ZERO
    }

    /// A static per-**sender** bound `r_s`, the dual of
    /// [`SelectionPolicy::edge_score_offset`]: for every receiver `j` the
    /// policy must guarantee `edge_score(s, j) >= fl(fl(t + r_s) + d_j)`
    /// where `t` is the sender's ready time and `d_j` the post-rounding
    /// receiver bound. The bucketed ready-order index aggregates
    /// `fl(ready(s) + r_s)` into per-bucket minima so the shared rescan walk
    /// can skip a whole bucket of senders with one comparison instead of
    /// walking them individually.
    ///
    /// `min_outgoing_transfer` is `min_{k != sender} (g_sk + L_sk)` — the
    /// sender's cheapest outgoing transfer, precomputed by the engine row-wise
    /// alongside the receiver column minima. Completion-estimate scores
    /// (`fl(t + (g+L))` with `g+L >= min_outgoing`) can return it directly:
    /// rounded addition is monotone in each operand, so
    /// `fl(t + x) >= fl(t + r_s)` whenever `x >= r_s`. As with the receiver
    /// bounds, the inequality must hold under *rounded* arithmetic evaluated
    /// exactly as written — a bound that is itself a rounded sum of score
    /// parts is not automatically safe. Only consulted for time-sensitive
    /// policies; defaults to zero (bucket minima degrade to plain ready
    /// times, which the generic `edge_score(s, r) >= ready_time(s)` contract
    /// already guarantees).
    fn sender_score_offset(
        &self,
        problem: &BroadcastProblem,
        sender: ClusterId,
        min_outgoing_transfer: Time,
    ) -> Time {
        let _ = (problem, sender, min_outgoing_transfer);
        Time::ZERO
    }

    /// Notification that `sender → receiver` was committed (B shrank by
    /// `receiver`); policies use it to advance incremental lookahead state
    /// held in their own buffers or in the shared `workspace`.
    fn on_commit(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        sender: ClusterId,
        receiver: ClusterId,
    ) {
        let _ = (view, workspace, sender, receiver);
    }

    /// How this policy's scores react to perturbed gaps — see
    /// [`ReplayTraits`]. The default (all flags off) is always sound and
    /// simply makes warm-start replay diverge early.
    fn replay_traits(&self) -> ReplayTraits {
        ReplayTraits::default()
    }

    /// Cache-free recomputation of [`SelectionPolicy::receiver_bias`] for one
    /// receiver, used while re-scoring logged commits during warm-start
    /// replay (where the policy's own incremental caches are cold — `reset`
    /// has not run). Must return floats **bit-identical** to what the cached
    /// path would serve at the same round; policies that can promise that
    /// declare [`ReplayTraits::replay_bias_exact`]. Only consulted when that
    /// flag is set.
    fn replay_bias(&self, view: &EngineView<'_>, receiver: ClusterId) -> Time {
        let _ = (view, receiver);
        Time::ZERO
    }
}

/// A candidate `(objective value, receiver, sender)` tuple as scored by the
/// selection scan — the currency of commit logging and replay verification.
pub type CandidateTuple = (Time, u32, u32);

/// Candidate `(objective, receiver, sender)` comparison.
fn candidate_improves(
    objective: Objective,
    tie: TieBreak,
    new: CandidateTuple,
    cur: CandidateTuple,
) -> bool {
    use std::cmp::Ordering;
    let ord = match objective {
        Objective::Minimize => new.0.cmp(&cur.0),
        Objective::Maximize => cur.0.cmp(&new.0),
    };
    match ord {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => match tie {
            TieBreak::ReceiverThenSender => (new.1, new.2) < (cur.1, cur.2),
            TieBreak::SenderThenReceiver => (new.2, new.1) < (cur.2, cur.1),
        },
    }
}

/// One committed round of a logged run: the selected edge, its event times,
/// and the round's **runner-up** candidate — the best `(objective, receiver,
/// sender)` tuple among the receivers that lost. The runner-up is what lets a
/// warm-start replay *verify* a re-scored winner locally: under a monotone
/// worsening delta every clean candidate can only have drifted further behind
/// the logged runner-up, so `recomputed winner still beats the logged
/// runner-up` certifies the whole round without re-scanning B.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoggedCommit {
    /// Selected sender (already in A at this round).
    pub sender: u32,
    /// Selected receiver (moved from B to A by this round).
    pub receiver: u32,
    /// When the transfer started on the sender's interface.
    pub start: Time,
    /// When the payload arrived at the receiver's coordinator.
    pub arrival: Time,
    /// The winning `(objective value, receiver, sender)` tuple.
    pub winner: CandidateTuple,
    /// The best losing tuple, `(∞, u32::MAX, u32::MAX)` when B was a
    /// singleton (check [`LoggedCommit::has_runner_up`]).
    pub runner_up: CandidateTuple,
}

impl LoggedCommit {
    /// Whether the round had more than one receiver to choose from.
    #[inline]
    pub fn has_runner_up(&self) -> bool {
        self.runner_up.1 != u32::MAX
    }
}

/// The replayable record of one schedule: every commit in sequence, plus the
/// problem identity (`root`, payload, cluster count) and the heuristic that
/// produced it. Produced by [`ScheduleEngine::schedule_logged`] /
/// [`ScheduleEngine::makespans_logged`]; consumed by
/// [`ScheduleEngine::reschedule_perturbed`], which replays the longest sound
/// prefix under a perturbed problem and re-runs selection only from the first
/// divergent commit.
#[derive(Debug, Clone, PartialEq)]
pub struct CommitLog {
    root: ClusterId,
    message: MessageSize,
    n: usize,
    kind: HeuristicKind,
    commits: Vec<LoggedCommit>,
}

impl CommitLog {
    /// The heuristic that produced this log.
    #[inline]
    pub fn kind(&self) -> HeuristicKind {
        self.kind
    }

    /// The root cluster of the logged run.
    #[inline]
    pub fn root(&self) -> ClusterId {
        self.root
    }

    /// The number of clusters of the logged problem.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.n
    }

    /// The recorded commit sequence, in round order.
    #[inline]
    pub fn commits(&self) -> &[LoggedCommit] {
        &self.commits
    }

    /// Whether `problem` has the same identity (root, payload, cluster
    /// count) as the logged run — the precondition for replaying any prefix.
    /// A mismatch (an [`Perturbation::AlternateRoot`] scenario, a different
    /// payload, a resized grid) makes the warm entry points fall back to a
    /// cold run.
    pub fn compatible_with(&self, problem: &BroadcastProblem) -> bool {
        self.root == problem.root
            && self.message == problem.message
            && self.n == problem.num_clusters()
            && self.commits.len() + 1 == self.n.max(1)
    }
}

/// Reusable buffers of one engine; split from the policy store so the two can
/// be borrowed independently.
///
/// ## Cache invariants (time-sensitive policies)
///
/// Per receiver `j` still in B the engine caches up to [`DEFAULT_K_BEST`] candidate
/// senders in the flat row `cand_*[j·K_BEST ..]` (lexicographically sorted by
/// `(score, sender id)`), plus a **floor** entry. Between commits:
///
/// 1. **Head is exact**: the row's first entry is the current lexicographic
///    minimum of `(edge_score(s, j), s)` over all `s ∈ A`, and its stored
///    score equals the sender's *current* edge score.
/// 2. **Cached scores are lower bounds**: every row entry's stored score is
///    `<=` its sender's current edge score (scores only grow — the
///    monotonicity contract of [`SelectionPolicy::edge_score`]).
/// 3. **The floor bounds everyone else**: every sender in A that is *not* in
///    the row currently satisfies
///    `(edge_score(s, j), s) >= (floor_score[j], floor_sender[j])`
///    lexicographically (`(∞, NO_SENDER)` when the row holds all of A).
///
/// Together these make an invalidation repairable in `O(K_BEST)`: refresh the
/// grown head, bubble it to its sorted position, refresh whichever cached
/// entry surfaces until the head is fresh, and accept it iff it still beats
/// the floor — only then is a ready-order rescan needed.
#[derive(Debug, Default)]
struct EngineState {
    in_a: Vec<bool>,
    ready: Vec<Time>,
    events: Vec<ScheduleEvent>,
    /// Clusters still in B (unordered; positions tracked by `recv_pos`).
    receivers: Vec<u32>,
    recv_pos: Vec<u32>,
    /// Flat per-receiver candidate rows (`K_BEST` slots each), lex-sorted by
    /// `(score, sender)`; see the invariants above.
    cand_score: Vec<Time>,
    cand_sender: Vec<u32>,
    cand_len: Vec<u32>,
    /// Dense mirrors of each row's head entry: the per-round `select` scan and
    /// the invalidation test stream these contiguously instead of striding
    /// through the rows.
    best_score: Vec<Time>,
    best_sender: Vec<u32>,
    /// Per-receiver floor entry bounding every sender outside the row.
    floor_score: Vec<Time>,
    floor_sender: Vec<u32>,
    /// Per-receiver quick-reject gate for the offer loop:
    /// `max(row tail score, floor score)` while the candidate row is full,
    /// `∞` otherwise. An offered score strictly above the gate can neither
    /// enter the row nor tighten the floor, so the hot offer loop answers
    /// most receivers with one load from this dense array instead of
    /// touching the row tail and floor entries.
    gate: Vec<Time>,
    /// Senders in A, sorted ascending by `(ready time, id)`. Ready times only
    /// grow, so a commit maintains the order with one bubble-right pass for
    /// the sender and one sorted insert for the new receiver; rescans then
    /// walk a contiguous, always-valid array instead of a lazily-invalidated
    /// heap.
    order: Vec<u32>,
    /// Position of each sender in `order` (`u32::MAX` while still in B).
    order_pos: Vec<u32>,
    /// Receivers of the current commit that could not be repaired and await
    /// the shared rescan walk.
    pending: Vec<u32>,
    /// Per-receiver static score offsets (`SelectionPolicy::edge_score_offset`)
    /// sharpening the walk's retirement bound.
    score_offset: Vec<Time>,
    /// The post-rounding second bound component
    /// ([`SelectionPolicy::edge_score_post_offset`]).
    score_post: Vec<Time>,
    /// Per-pending-receiver top `K_BEST + 1` buffers of the shared walk.
    tops: Vec<(Time, u32)>,
    topn: Vec<u32>,
    /// Scratch for makespan computation without building a [`Schedule`].
    arrival: Vec<Time>,
    busy: Vec<Time>,
    /// Shared sorted-candidate rows for lookahead policies.
    lookahead: LookaheadWorkspace,
    /// Per-round receiver-bias buffer filled by the policy's batched hook.
    bias_buf: Vec<Time>,
    /// Flat sender-major `g_ij + L_ij` combined per problem for the view's
    /// one-read completion estimates. Built from the problem's uniform-message
    /// matrices by [`EngineState::prepare_tx`], or from per-edge payload
    /// prices by [`EngineState::prepare_costs`] — the round loop itself is
    /// payload-agnostic and only ever reads these flat copies.
    tx: Vec<Time>,
    /// Flat sender-major gap matrix paired with `tx`: the interface occupancy
    /// a commit charges the sender. Identical to the problem's gap matrix on
    /// the uniform path, per-edge payload-priced on the costed path.
    gp: Vec<Time>,
    /// Receiver-major twin of `tx` (`rx[r·n + s] = tx[s·n + r]`, bit for
    /// bit): the repair path and the shared rescan walk score many senders
    /// against one receiver, so they stream this transposed copy row-wise
    /// instead of striding a column of `tx` through the whole matrix.
    rx: Vec<Time>,
    /// Per-receiver column minima of `tx` (cheapest incoming transfer),
    /// handed to [`SelectionPolicy::edge_score_offset`].
    min_in: Vec<Time>,
    /// Per-sender row minima of `tx` (cheapest outgoing transfer, diagonal
    /// excluded), handed to [`SelectionPolicy::sender_score_offset`].
    min_out: Vec<Time>,
    /// Per-sender static score bounds `r_s`
    /// ([`SelectionPolicy::sender_score_offset`]) aggregated into the
    /// bucketed ready-order index.
    sender_offset: Vec<Time>,
    /// Per-bucket minima of `fl(ready + r_s)` over [`WALK_BUCKET`]-sized
    /// slices of `order` — the one-comparison bucket-skip bound of the
    /// shared rescan walk. Only valid where `bucket_dirty` is clear.
    bucket_min: Vec<Time>,
    /// Buckets whose cached minimum is stale (a member's ready time or
    /// position changed); recomputed lazily by the next walk that reaches
    /// them.
    bucket_dirty: Vec<bool>,
    /// Candidate-row width policy: [`adaptive_k_best`] of the problem size
    /// unless fixed via [`ScheduleEngine::with_k_best`]; a pure performance
    /// knob — schedules stay byte-identical for any `K ≥ 1`.
    k_best: KBest,
    /// The width `k_best` resolved to for the problem of the current run.
    k_run: usize,
    /// Warm-replay scratch: clusters whose ready time may have drifted from
    /// the logged run because they committed a transfer over a perturbed
    /// (dirty) edge — or inherited drift from an earlier tainted commit.
    taint: Vec<bool>,
    /// Warm-replay scratch: the compacted list of dirty clusters of the
    /// current [`ReplayDelta`], so the checked replay mode scans `O(dirty)`
    /// per round instead of the whole bitmap.
    dirty_list: Vec<u32>,
    telemetry: EngineTelemetry,
}

impl EngineState {
    fn reset(&mut self, problem: &BroadcastProblem, decay: RowDecay) {
        let n = problem.num_clusters();
        let root = problem.root.index();
        self.in_a.clear();
        self.in_a.resize(n, false);
        self.in_a[root] = true;
        self.ready.clear();
        self.ready.resize(n, Time::ZERO);
        self.events.clear();
        self.events.reserve(n.saturating_sub(1));
        self.receivers.clear();
        self.recv_pos.clear();
        self.recv_pos.resize(n, u32::MAX);
        for c in 0..n {
            if c != root {
                self.recv_pos[c] = self.receivers.len() as u32;
                self.receivers.push(c as u32);
            }
        }
        let k = self.k_best.resolve_for(decay, n);
        self.k_run = k;
        self.cand_score.clear();
        self.cand_score.resize(n * k, Time::INFINITY);
        self.cand_sender.clear();
        self.cand_sender.resize(n * k, NO_SENDER);
        self.cand_len.clear();
        self.cand_len.resize(n, 0);
        self.floor_score.clear();
        self.floor_score.resize(n, Time::INFINITY);
        self.floor_sender.clear();
        self.floor_sender.resize(n, NO_SENDER);
        self.gate.clear();
        self.gate.resize(n, Time::INFINITY);
        self.best_score.clear();
        self.best_score.resize(n, Time::INFINITY);
        self.best_sender.clear();
        self.best_sender.resize(n, NO_SENDER);
        self.order.clear();
        self.order.reserve(n);
        self.order.push(root as u32);
        self.order_pos.clear();
        self.order_pos.resize(n, u32::MAX);
        self.order_pos[root] = 0;
        self.pending.clear();
        self.pending.reserve(n);
        self.bias_buf.clear();
        self.bias_buf.reserve(n);
        debug_assert_eq!(
            self.tx.len(),
            n * n,
            "prepare_tx must run before the round loop"
        );
        debug_assert_eq!(
            self.rx.len(),
            n * n,
            "prepare_tx must run before the round loop"
        );
        self.tops.clear();
        self.tops.reserve(n * (k + 1));
        self.topn.clear();
        self.topn.reserve(n);
        let buckets = n.div_ceil(WALK_BUCKET);
        self.bucket_min.clear();
        self.bucket_min.resize(buckets, Time::INFINITY);
        self.bucket_dirty.clear();
        self.bucket_dirty.resize(buckets, true);
    }

    fn init_caches<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
    ) {
        // Sender-major view: the root's row is scored against every receiver.
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            mat: &self.tx,
            receiver_major: false,
            receivers: &self.receivers,
            n: problem.num_clusters(),
        };
        let root = problem.root;
        let k = self.k_run;
        for &r in &self.receivers {
            let row = r as usize * k;
            self.cand_sender[row] = root.index() as u32;
            self.cand_score[row] = policy.edge_score(&view, root, ClusterId(r as usize));
            debug_assert_score_not_nan(self.cand_score[row]);
            self.cand_len[r as usize] = 1;
            self.best_score[r as usize] = self.cand_score[row];
            self.best_sender[r as usize] = self.cand_sender[row];
            // A is the singleton {root}: the row holds all of A, so the floor
            // bounds nothing.
            self.floor_score[r as usize] = Time::INFINITY;
            self.floor_sender[r as usize] = NO_SENDER;
        }
        self.score_offset.clear();
        self.score_offset.resize(problem.num_clusters(), Time::ZERO);
        self.score_post.clear();
        self.score_post.resize(problem.num_clusters(), Time::ZERO);
        self.sender_offset.clear();
        self.sender_offset
            .resize(problem.num_clusters(), Time::ZERO);
        if policy.sender_time_sensitive() {
            for &r in &self.receivers {
                self.score_offset[r as usize] = policy.edge_score_offset(
                    problem,
                    ClusterId(r as usize),
                    self.min_in[r as usize],
                );
                self.score_post[r as usize] =
                    policy.edge_score_post_offset(problem, ClusterId(r as usize));
            }
            // Every cluster eventually sends: fill the per-sender bounds for
            // all of them up front (the root is a sender from round one).
            for c in 0..problem.num_clusters() {
                self.sender_offset[c] =
                    policy.sender_score_offset(problem, ClusterId(c), self.min_out[c]);
            }
        }
    }

    fn select<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
    ) -> (ClusterId, ClusterId) {
        let ((_, r, s), _) = self.select_full::<P, false>(problem, policy);
        (ClusterId(s as usize), ClusterId(r as usize))
    }

    /// The selection scan, optionally tracking the round's runner-up tuple
    /// for commit logging. `TRACK` is a const generic so the ordinary
    /// [`EngineState::select`] path compiles to the exact scan it always was
    /// — the second-best bookkeeping exists only in the logged
    /// monomorphization.
    fn select_full<P: SelectionPolicy + ?Sized, const TRACK: bool>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
    ) -> (CandidateTuple, Option<CandidateTuple>) {
        let objective = policy.objective();
        let tie = policy.tie_break();
        let EngineState {
            in_a,
            ready,
            receivers,
            best_score,
            best_sender,
            lookahead,
            bias_buf,
            tx,
            ..
        } = self;
        let view = EngineView {
            problem,
            in_a,
            ready,
            mat: tx,
            receiver_major: false,
            receivers,
            n: problem.num_clusters(),
        };
        let biased = policy.uses_receiver_bias();
        if biased {
            policy.receiver_biases(&view, lookahead, receivers, bias_buf);
        }
        let mut best: Option<(Time, u32, u32)> = None;
        let mut second: Option<(Time, u32, u32)> = None;
        for (i, &r) in receivers.iter().enumerate() {
            let bias = if biased { bias_buf[i] } else { Time::ZERO };
            let candidate = (best_score[r as usize] + bias, r, best_sender[r as usize]);
            debug_assert_score_not_nan(candidate.0);
            if best.is_none_or(|cur| candidate_improves(objective, tie, candidate, cur)) {
                if TRACK {
                    second = best;
                }
                best = Some(candidate);
            } else if TRACK
                && second.is_none_or(|cur| candidate_improves(objective, tie, candidate, cur))
            {
                second = Some(candidate);
            }
        }
        let best = best.expect("set B is non-empty while the schedule is incomplete");
        (best, second)
    }

    /// Rebuilds the candidate rows (and floors) of every receiver in
    /// `pending` with one pruned walk over A in ready order (the sorted
    /// `order` array — contiguous and always valid, so each walk is a plain
    /// scan) **per receiver**. Each receiver gets its exact top `K_BEST + 1`
    /// entries (the last one becomes the floor); the walk stops once the next
    /// ready time exceeds the receiver's `(K_BEST + 1)`-smallest score found
    /// so far — any unwalked sender scores at least its ready time, so it
    /// cannot enter the row or lower the floor.
    ///
    /// One walk per receiver, not one shared walk: a commit rarely strands
    /// more than a couple of receivers, and the per-receiver loop keeps the
    /// retirement bound in two registers (the static offsets hoisted out of
    /// the loop), the top buffer in L1 and the scores streaming from the
    /// receiver's contiguous `rx` row — an order of magnitude less per-visit
    /// overhead than the shared walk's pending-indexed inner loop.
    ///
    /// The walk itself is **bucketed**: `order` is viewed as
    /// [`WALK_BUCKET`]-sized slices, each carrying a lazily-maintained
    /// minimum of `fl(ready + r_s)` (the per-sender bound of
    /// [`SelectionPolicy::sender_score_offset`]). A full row compares that
    /// minimum against its provisional floor and retires whole buckets —
    /// typically the long already-busy prefix of A — without re-walking
    /// their senders, which is what breaks the `O(|A|)` re-walk per rescan
    /// at the tail sizes. Skips use a strict `>` on bounds that hold under
    /// rounded arithmetic, so the produced rows are bit-identical to the
    /// plain walk's.
    fn rescan_pending<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &P,
    ) {
        let k = self.k_run;
        let stride = k + 1;
        let EngineState {
            in_a,
            ready,
            order,
            cand_score,
            cand_sender,
            cand_len,
            best_score,
            best_sender,
            floor_score,
            floor_sender,
            gate,
            pending,
            score_offset,
            score_post,
            sender_offset,
            bucket_min,
            bucket_dirty,
            tops,
            rx,
            receivers,
            telemetry,
            ..
        } = self;
        // Receiver-major view: the walk scores many senders against one
        // receiver, so the costs live in one contiguous `rx` row (a few cache
        // lines) instead of a column scattered across the whole sender-major
        // matrix.
        let view = EngineView {
            problem,
            in_a,
            ready,
            mat: rx,
            receiver_major: true,
            receivers,
            n: problem.num_clusters(),
        };
        tops.clear();
        tops.resize(stride, (Time::INFINITY, NO_SENDER));
        for &jr in pending.iter() {
            telemetry.rescan();
            let j = jr as usize;
            // The static bound components are per-receiver constants: hoist
            // them so the retirement test runs on registers.
            let off1 = score_offset[j];
            let off2 = score_post[j];
            let row = &mut tops[..stride];
            let mut filled = 0usize;
            let len = order.len();
            let mut lo = 0usize;
            'walk: while lo < len {
                let hi = (lo + WALK_BUCKET).min(len);
                let b = lo / WALK_BUCKET;
                // The bucket's first sender has the smallest ready time of
                // every sender left (the order is sorted): this is the
                // per-sender retirement bound applied at bucket granularity,
                // and it runs *before* any dirty-minimum recompute so
                // unreachable buckets never pay one.
                let t0 = ready[order[lo] as usize];
                if filled == stride && t0 + off1 + off2 > row[k].0 {
                    break;
                }
                if bucket_dirty[b] {
                    let mut m = Time::INFINITY;
                    for &s in &order[lo..hi] {
                        let v = ready[s as usize] + sender_offset[s as usize];
                        if v < m {
                            m = v;
                        }
                    }
                    bucket_min[b] = m;
                    bucket_dirty[b] = false;
                }
                // Bucket skip: every sender in the bucket scores at least
                // `fl(fl(ready + r_s) + d_j) >= fl(bucket_min + d_j)`
                // (rounded float addition is monotone in each operand) —
                // strictly above the provisional floor means no member can
                // enter the row or lower it, so the whole bucket retires on
                // one comparison. The sums must be computed exactly as
                // written; ties (`==`) are never skipped, preserving the lex
                // `(score, sender)` order bit for bit.
                if filled == stride && bucket_min[b] + off2 > row[k].0 {
                    telemetry.bucket_skip();
                    lo = hi;
                    continue;
                }
                for &s in &order[lo..hi] {
                    let t = ready[s as usize];
                    // Any unwalked sender scores at least
                    // `fl(fl(t + c_j) + d_j)`: stop once that strictly
                    // exceeds the provisional floor. The sums must be
                    // computed exactly as written, left to right — a
                    // rearranged `t > floor - c_j` is not float-equivalent
                    // and could cut the walk one sender too early.
                    if filled == stride && t + off1 + off2 > row[k].0 {
                        break 'walk;
                    }
                    telemetry.walked_sender();
                    let score = policy.edge_score(&view, ClusterId(s as usize), ClusterId(j));
                    debug_assert_score_not_nan(score);
                    let entry = (score, s);
                    if filled < stride {
                        let mut slot = filled;
                        while slot > 0 && row[slot - 1] > entry {
                            row[slot] = row[slot - 1];
                            slot -= 1;
                        }
                        row[slot] = entry;
                        filled += 1;
                    } else if entry < row[k] {
                        let mut slot = k;
                        while slot > 0 && row[slot - 1] > entry {
                            row[slot] = row[slot - 1];
                            slot -= 1;
                        }
                        row[slot] = entry;
                    }
                }
                lo = hi;
            }
            debug_assert!(filled > 0, "set A is never empty");
            let keep = filled.min(k);
            for (slot, &(score, s)) in row[..keep].iter().enumerate() {
                cand_score[j * k + slot] = score;
                cand_sender[j * k + slot] = s;
            }
            cand_len[j] = keep as u32;
            best_score[j] = cand_score[j * k];
            best_sender[j] = cand_sender[j * k];
            if filled == stride {
                floor_score[j] = row[k].0;
                floor_sender[j] = row[k].1;
            } else {
                // The row holds all of A: nothing to bound.
                floor_score[j] = Time::INFINITY;
                floor_sender[j] = NO_SENDER;
            }
            gate[j] = if keep == k {
                cand_score[j * k + k - 1].max(floor_score[j])
            } else {
                Time::INFINITY
            };
            // Reset the scratch for the next pending receiver.
            for slot in row.iter_mut().take(filled) {
                *slot = (Time::INFINITY, NO_SENDER);
            }
        }
        pending.clear();
    }

    /// Repairs `receiver`'s cache after its best sender `s` grew its ready
    /// time: refresh the head entry, bubble it to its sorted position, and
    /// keep refreshing whichever cached entry surfaces until the head is
    /// fresh. The fresh head is the exact minimum over the row's senders
    /// (cached scores are lower bounds, so a fresh head underruns them all);
    /// it is the global minimum iff it still beats the floor. Returns `false`
    /// when it does not and only a ready-order rescan can restore the
    /// invariants.
    fn repair_invalidated<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &P,
        receiver: u32,
        s: u32,
    ) -> bool {
        let j = receiver as usize;
        let k = self.k_run;
        let len = self.cand_len[j] as usize;
        let row = &mut self.cand_score[j * k..j * k + len];
        let senders = &mut self.cand_sender[j * k..j * k + len];
        // Receiver-major view: every refresh scores another sender against
        // the same receiver `j`, i.e. walks one contiguous `rx` row.
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            mat: &self.rx,
            receiver_major: true,
            receivers: &self.receivers,
            n: problem.num_clusters(),
        };
        debug_assert_eq!(senders[0], s);
        // Refresh the head until it is exact: recompute its score, and if it
        // grew, bubble the entry to its lex position and look again. Every
        // refreshed entry is exact as of now, so each is refreshed at most
        // once and the loop ends within `len` iterations.
        loop {
            let head = (row[0], senders[0]);
            let current = policy.edge_score(&view, ClusterId(senders[0] as usize), ClusterId(j));
            debug_assert_score_not_nan(current);
            if current == row[0] {
                break;
            }
            debug_assert!(current > row[0], "edge scores never decrease");
            let grown = (current, head.1);
            let mut slot = 0;
            while slot + 1 < len && (row[slot + 1], senders[slot + 1]) < grown {
                row[slot] = row[slot + 1];
                senders[slot] = senders[slot + 1];
                slot += 1;
            }
            row[slot] = grown.0;
            senders[slot] = grown.1;
        }
        if (row[0], senders[0]) <= (self.floor_score[j], self.floor_sender[j]) {
            self.best_score[j] = self.cand_score[j * k];
            self.best_sender[j] = self.cand_sender[j * k];
            // The grown head may have bubbled into the row tail.
            self.refresh_gate(j);
            if self.best_sender[j] == s {
                self.telemetry.second_best_hit();
            } else {
                self.telemetry.promotion();
            }
            return true;
        }
        false
    }

    /// Recomputes `gate[j]` from the row tail and floor. Called whenever
    /// either may have changed (offer slow path, successful repair, rescan
    /// rebuild); while the row is not full — or the floor is still infinite —
    /// the gate stays `∞` and every offer takes the exact slow path.
    #[inline]
    fn refresh_gate(&mut self, j: usize) {
        let k = self.k_run;
        self.gate[j] = if self.cand_len[j] as usize == k {
            self.cand_score[j * k + k - 1].max(self.floor_score[j])
        } else {
            Time::INFINITY
        };
    }

    /// Offers the freshly-joined sender `new_sender` to `receiver` in
    /// `O(K_BEST)`: it is inserted into the candidate row at its lex position
    /// (the overflowing last entry, a valid lower bound for its sender, is
    /// folded into the floor) or, failing that, tightens the floor directly.
    ///
    /// Fast path: a score strictly above `gate[j]` beats neither the row tail
    /// nor the floor (both comparisons are lex on `(score, sender)`, so a
    /// strictly larger score loses regardless of the sender id) and returns
    /// after one dense load.
    fn offer<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &P,
        receiver: u32,
        new_sender: u32,
    ) {
        let j = receiver as usize;
        // Sender-major view: the commit loop offers the same fresh sender to
        // every receiver, streaming that sender's contiguous `tx` row.
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            mat: &self.tx,
            receiver_major: false,
            receivers: &self.receivers,
            n: problem.num_clusters(),
        };
        let score = policy.edge_score(&view, ClusterId(new_sender as usize), ClusterId(j));
        debug_assert_score_not_nan(score);
        if score > self.gate[j] {
            return;
        }
        let entry = (score, new_sender);
        let k = self.k_run;
        let len = self.cand_len[j] as usize;
        let row = &mut self.cand_score[j * k..(j + 1) * k];
        let senders = &mut self.cand_sender[j * k..(j + 1) * k];
        if len < k {
            // Room in the row: plain sorted insert.
            let mut slot = len;
            while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                row[slot] = row[slot - 1];
                senders[slot] = senders[slot - 1];
                slot -= 1;
            }
            row[slot] = entry.0;
            senders[slot] = entry.1;
            self.cand_len[j] = (len + 1) as u32;
            if slot == 0 {
                self.best_score[j] = entry.0;
                self.best_sender[j] = entry.1;
            }
        } else if entry < (row[k - 1], senders[k - 1]) {
            // Displace the last entry; its cached score is a valid lower bound
            // for its sender, so folding it into the floor keeps invariant 3.
            let dropped = (row[k - 1], senders[k - 1]);
            let mut slot = k - 1;
            while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                row[slot] = row[slot - 1];
                senders[slot] = senders[slot - 1];
                slot -= 1;
            }
            row[slot] = entry.0;
            senders[slot] = entry.1;
            if slot == 0 {
                self.best_score[j] = entry.0;
                self.best_sender[j] = entry.1;
            }
            if dropped < (self.floor_score[j], self.floor_sender[j]) {
                self.floor_score[j] = dropped.0;
                self.floor_sender[j] = dropped.1;
            }
        } else if entry < (self.floor_score[j], self.floor_sender[j]) {
            // Outside the row: the floor must keep bounding it.
            self.floor_score[j] = entry.0;
            self.floor_sender[j] = entry.1;
        }
        self.refresh_gate(j);
    }

    /// Offers the freshly-joined sender to the contiguous run
    /// `receivers[from..to]` — the stretches between invalidated receivers in
    /// the commit loop. Semantically identical to calling
    /// [`EngineState::offer`] once per receiver (same order, same arithmetic,
    /// byte-identical rows); fusing the run hoists the view construction and
    /// the borrow plumbing out of the per-receiver work, so the dominant fast
    /// path (score strictly above the gate) compiles to one dense row read
    /// and a compare. With ~`|B|` offers per commit this loop is the engine's
    /// single hottest stretch at the large sizes.
    fn offer_run<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &P,
        from: usize,
        to: usize,
        new_sender: u32,
    ) {
        let k = self.k_run;
        let EngineState {
            in_a,
            ready,
            tx,
            receivers,
            cand_score,
            cand_sender,
            cand_len,
            best_score,
            best_sender,
            floor_score,
            floor_sender,
            gate,
            ..
        } = self;
        // Sender-major view, exactly like `offer`'s: the run streams one
        // fresh sender's `tx` row across many receivers.
        let view = EngineView {
            problem,
            in_a,
            ready,
            mat: tx,
            receiver_major: false,
            receivers,
            n: problem.num_clusters(),
        };
        for &jr in &receivers[from..to] {
            let j = jr as usize;
            let score = policy.edge_score(&view, ClusterId(new_sender as usize), ClusterId(j));
            debug_assert_score_not_nan(score);
            if score > gate[j] {
                continue;
            }
            let entry = (score, new_sender);
            let len = cand_len[j] as usize;
            let row = &mut cand_score[j * k..(j + 1) * k];
            let senders = &mut cand_sender[j * k..(j + 1) * k];
            if len < k {
                // Room in the row: plain sorted insert.
                let mut slot = len;
                while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                    row[slot] = row[slot - 1];
                    senders[slot] = senders[slot - 1];
                    slot -= 1;
                }
                row[slot] = entry.0;
                senders[slot] = entry.1;
                cand_len[j] = (len + 1) as u32;
                if slot == 0 {
                    best_score[j] = entry.0;
                    best_sender[j] = entry.1;
                }
            } else if entry < (row[k - 1], senders[k - 1]) {
                // Displace the last entry; its cached score is a valid lower
                // bound for its sender, so folding it into the floor keeps
                // invariant 3.
                let dropped = (row[k - 1], senders[k - 1]);
                let mut slot = k - 1;
                while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                    row[slot] = row[slot - 1];
                    senders[slot] = senders[slot - 1];
                    slot -= 1;
                }
                row[slot] = entry.0;
                senders[slot] = entry.1;
                if slot == 0 {
                    best_score[j] = entry.0;
                    best_sender[j] = entry.1;
                }
                if dropped < (floor_score[j], floor_sender[j]) {
                    floor_score[j] = dropped.0;
                    floor_sender[j] = dropped.1;
                }
            } else if entry < (floor_score[j], floor_sender[j]) {
                // Outside the row: the floor must keep bounding it.
                floor_score[j] = entry.0;
                floor_sender[j] = entry.1;
            }
            gate[j] = if cand_len[j] as usize == k {
                cand_score[j * k + k - 1].max(floor_score[j])
            } else {
                Time::INFINITY
            };
        }
    }

    /// Restores `order` after `s`'s ready time grew: bubble it right past the
    /// senders that now sort before it. The walked distance is the number of
    /// overtaken senders — typically a handful, and each step is one `u32`
    /// move.
    #[inline]
    fn reposition_sender(&mut self, s: usize) {
        let key = (self.ready[s], s as u32);
        let start = self.order_pos[s] as usize;
        let mut pos = start;
        debug_assert_eq!(self.order[pos], s as u32);
        while pos + 1 < self.order.len() {
            let next = self.order[pos + 1];
            if (self.ready[next as usize], next) < key {
                self.order[pos] = next;
                self.order_pos[next as usize] = pos as u32;
                pos += 1;
            } else {
                break;
            }
        }
        self.order[pos] = s as u32;
        self.order_pos[s] = pos as u32;
        // Everything between the old and new position moved (and the
        // sender's ready time grew): their buckets' cached minima are stale.
        self.mark_buckets_dirty(start, pos);
    }

    /// Inserts the freshly-joined sender `r` into `order` at its sorted
    /// position (its arrival time usually sorts near the end, so the shifted
    /// tail is short).
    #[inline]
    fn insert_sender(&mut self, r: usize) {
        let key = (self.ready[r], r as u32);
        let idx = self
            .order
            .binary_search_by(|&c| (self.ready[c as usize], c).cmp(&key))
            .unwrap_err();
        self.order.insert(idx, r as u32);
        for pos in idx..self.order.len() {
            self.order_pos[self.order[pos] as usize] = pos as u32;
        }
        // The insert shifted every later sender one slot (possibly across a
        // bucket boundary) and added a member to the tail bucket.
        self.mark_buckets_dirty(idx, self.order.len() - 1);
    }

    /// Marks the ready-order buckets covering positions `from ..= to` stale.
    #[inline]
    fn mark_buckets_dirty(&mut self, from: usize, to: usize) {
        for b in from / WALK_BUCKET..=to / WALK_BUCKET {
            self.bucket_dirty[b] = true;
        }
    }

    fn commit<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
        sender: ClusterId,
        receiver: ClusterId,
    ) {
        let (s, r) = (sender.index(), receiver.index());
        debug_assert!(self.in_a[s] && !self.in_a[r]);
        self.telemetry.round();
        let n = problem.num_clusters();
        let start = self.ready[s];
        // Committed timings read the flat `tx`/`gp` copies, not the problem
        // matrices: on the uniform path they hold the exact same floats, and
        // on the costed path they carry the per-edge payload prices.
        let arrival = start + self.tx[s * n + r];
        self.events.push(ScheduleEvent {
            sender,
            receiver,
            start,
            arrival,
        });
        self.ready[s] = start + self.gap_of(problem, s, r);
        self.ready[r] = arrival;
        self.in_a[r] = true;
        // Remove the receiver from B (swap-remove keeps the list compact).
        let pos = self.recv_pos[r] as usize;
        let last = *self.receivers.last().expect("receiver is in B");
        self.receivers.swap_remove(pos);
        if pos < self.receivers.len() {
            self.recv_pos[last as usize] = pos as u32;
        }
        self.recv_pos[r] = u32::MAX;
        // Keep the ready-order array sorted: the sender's ready time grew (it
        // bubbles right), the receiver enters A at its sorted position.
        self.reposition_sender(s);
        self.insert_sender(r);

        let EngineState {
            in_a,
            ready,
            tx,
            lookahead,
            receivers,
            ..
        } = &mut *self;
        let view = EngineView {
            problem,
            in_a,
            ready,
            mat: tx,
            receiver_major: false,
            receivers,
            n: problem.num_clusters(),
        };
        policy.on_commit(&view, lookahead, sender, receiver);

        // Incremental cache maintenance. Receivers that relied on the committed
        // sender are repaired against their cached runners-up; the few that
        // cannot be repaired are collected and rebuilt by one shared walk in
        // ready order (which already sees the freshly-joined sender).
        // Everyone else is offered the new sender in O(K_BEST).
        let sensitive = policy.sender_time_sensitive();
        debug_assert!(self.pending.is_empty());
        // Same per-receiver order and arithmetic as one `offer` call each;
        // the stretches between invalidated receivers go through the fused
        // `offer_run` (an offer only mutates its own receiver's state, so
        // scanning a run's invalidation checks up front observes the same
        // `best_sender` values the one-at-a-time loop would).
        let mut i = 0;
        let b_len = self.receivers.len();
        while i < b_len {
            let j = self.receivers[i];
            if sensitive && self.best_sender[j as usize] == s as u32 {
                self.telemetry.invalidation();
                if self.repair_invalidated(problem, policy, j, s as u32) {
                    self.offer(problem, policy, j, r as u32);
                } else {
                    self.pending.push(j);
                }
                i += 1;
            } else {
                let from = i;
                while i < b_len
                    && !(sensitive && self.best_sender[self.receivers[i] as usize] == s as u32)
                {
                    i += 1;
                }
                self.offer_run(problem, policy, from, i, r as u32);
            }
        }
        if !self.pending.is_empty() {
            self.rescan_pending(problem, policy);
        }
    }

    /// (Re)builds the flat combined `g + L` matrix for `problem`. Called once
    /// per problem by the public entry points — the batched ones share one
    /// build across all heuristics instead of paying the `O(n²)` pass per
    /// run.
    /// Fills the flat `tx`/`gp` copies (and the `min_in` column minima) the
    /// round loop reads, from a per-edge `(gap, latency)` source. The transfer
    /// is computed as the single rounded sum `fl(gap + latency)` exactly like
    /// the problem's own accessor, so both callers produce bit-identical
    /// matrices from identical inputs.
    fn fill_matrices(
        &mut self,
        n: usize,
        want_gp: bool,
        mut edge: impl FnMut(ClusterId, ClusterId) -> (Time, Time),
    ) {
        self.tx.clear();
        self.tx.reserve(n * n);
        self.gp.clear();
        if want_gp {
            self.gp.reserve(n * n);
        }
        self.min_in.clear();
        self.min_in.resize(n, Time::INFINITY);
        self.min_out.clear();
        self.min_out.resize(n, Time::INFINITY);
        for s in 0..n {
            for r in 0..n {
                let (gap, latency) = edge(ClusterId(s), ClusterId(r));
                let t = gap + latency;
                self.tx.push(t);
                if want_gp {
                    self.gp.push(gap);
                }
                // Column and row minima (diagonal excluded — a cluster never
                // sends to itself) feed the policies' static score offsets:
                // columns bound receivers, rows bound senders.
                if s != r {
                    if t < self.min_in[r] {
                        self.min_in[r] = t;
                    }
                    if t < self.min_out[s] {
                        self.min_out[s] = t;
                    }
                }
            }
        }
        // The receiver-major twin holds the exact same floats, transposed.
        // Tiled so both sides stay cache-resident: writing `rx` row-major
        // with a full-column read of `tx` (or vice versa) would turn one of
        // the two 8 n² byte passes into a stream of line-sized misses.
        self.rx.clear();
        self.rx.resize(n * n, Time::ZERO);
        const TILE: usize = 32;
        let mut rb = 0;
        while rb < n {
            let r_end = (rb + TILE).min(n);
            let mut sb = 0;
            while sb < n {
                let s_end = (sb + TILE).min(n);
                for r in rb..r_end {
                    for s in sb..s_end {
                        self.rx[r * n + s] = self.tx[s * n + r];
                    }
                }
                sb = s_end;
            }
            rb = r_end;
        }
    }

    /// The gap a committed transfer occupies on the sender's interface:
    /// served from the flat `gp` copy when an edge-cost overlay is active
    /// (costed path), otherwise straight from the problem's own matrix —
    /// bit-identical floats either way, since the flat copy is verbatim.
    #[inline]
    fn gap_of(&self, problem: &BroadcastProblem, s: usize, r: usize) -> Time {
        if self.gp.is_empty() {
            problem.gap(ClusterId(s), ClusterId(r))
        } else {
            self.gp[s * problem.num_clusters() + r]
        }
    }

    fn prepare_tx(&mut self, problem: &BroadcastProblem) {
        let n = problem.num_clusters();
        // No `gp` copy: on the uniform-message path the handful of per-commit
        // gap reads go straight to the problem's matrix (`gap_of`), saving an
        // 8 n² byte build per problem.
        self.fill_matrices(n, false, |s, r| (problem.gap(s, r), problem.latency(s, r)));
    }

    /// The per-edge-payload sibling of [`EngineState::prepare_tx`]: the flat
    /// `tx`/`gp` copies the round loop reads are filled from `costs` instead
    /// of the problem's uniform-message matrices, so each committed transfer
    /// is priced for the receiver-specific block its edge carries.
    fn prepare_costs(&mut self, problem: &BroadcastProblem, costs: &EdgeCosts) {
        let n = problem.num_clusters();
        assert_eq!(
            costs.num_clusters(),
            n,
            "edge-cost matrix dimension mismatch"
        );
        self.fill_matrices(n, true, |s, r| (costs.gap(s, r), costs.latency(s, r)));
    }

    /// Rebuilds the candidate rows (and floors) of every receiver in
    /// `pending` with one **unpruned** walk over A per receiver — the
    /// warm-start sibling of [`EngineState::rescan_pending`]. The pruned
    /// walk's retirement bound (`ready + offset` is a lower bound on the
    /// score) only holds for sender-time-sensitive policies; Flat Tree and
    /// FEF score on matrix entries alone, so a warm-start rebuild — which,
    /// unlike the commit path, runs for *every* policy — must visit all of A.
    /// It runs once per reschedule, not once per commit, so the missing
    /// pruning is irrelevant; the produced rows, floors and gates are
    /// bit-identical to what the pruned walk yields where both are sound
    /// (both compute the exact lexicographic top `K_BEST + 1`).
    fn rebuild_pending_unpruned<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &P,
    ) {
        let k = self.k_run;
        let stride = k + 1;
        let EngineState {
            in_a,
            ready,
            order,
            cand_score,
            cand_sender,
            cand_len,
            best_score,
            best_sender,
            floor_score,
            floor_sender,
            gate,
            pending,
            tops,
            rx,
            receivers,
            telemetry,
            ..
        } = self;
        let view = EngineView {
            problem,
            in_a,
            ready,
            mat: rx,
            receiver_major: true,
            receivers,
            n: problem.num_clusters(),
        };
        tops.clear();
        tops.resize(stride, (Time::INFINITY, NO_SENDER));
        for &jr in pending.iter() {
            telemetry.rescan();
            let j = jr as usize;
            let row = &mut tops[..stride];
            let mut filled = 0usize;
            for &s in order.iter() {
                telemetry.walked_sender();
                let score = policy.edge_score(&view, ClusterId(s as usize), ClusterId(j));
                debug_assert_score_not_nan(score);
                let entry = (score, s);
                if filled < stride {
                    let mut slot = filled;
                    while slot > 0 && row[slot - 1] > entry {
                        row[slot] = row[slot - 1];
                        slot -= 1;
                    }
                    row[slot] = entry;
                    filled += 1;
                } else if entry < row[k] {
                    let mut slot = k;
                    while slot > 0 && row[slot - 1] > entry {
                        row[slot] = row[slot - 1];
                        slot -= 1;
                    }
                    row[slot] = entry;
                }
            }
            debug_assert!(filled > 0, "set A is never empty");
            let keep = filled.min(k);
            for (slot, &(score, s)) in row[..keep].iter().enumerate() {
                cand_score[j * k + slot] = score;
                cand_sender[j * k + slot] = s;
            }
            cand_len[j] = keep as u32;
            best_score[j] = cand_score[j * k];
            best_sender[j] = cand_sender[j * k];
            if filled == stride {
                floor_score[j] = row[k].0;
                floor_sender[j] = row[k].1;
            } else {
                floor_score[j] = Time::INFINITY;
                floor_sender[j] = NO_SENDER;
            }
            gate[j] = if keep == k {
                cand_score[j * k + k - 1].max(floor_score[j])
            } else {
                Time::INFINITY
            };
            for slot in row.iter_mut().take(filled) {
                *slot = (Time::INFINITY, NO_SENDER);
            }
        }
        pending.clear();
    }

    /// The warm-start crash-recovery loop behind
    /// [`ScheduleEngine::reschedule_excluding`]: replay a committed event
    /// prefix verbatim, excise the `failed` cluster from both sets, clamp
    /// every surviving sender's ready time to `resume_at`, rebuild the caches
    /// over the surviving sets, and run the ordinary select/commit rounds
    /// until every surviving receiver is covered.
    fn run_excluding<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
        failed: ClusterId,
        committed: &[ScheduleEvent],
        resume_at: Time,
    ) {
        self.reset(problem, policy.row_decay());
        let n = problem.num_clusters();
        let f = failed.index();
        // Replay the committed prefix verbatim, with no policy involvement:
        // these transfers already happened on the wire, including any that
        // delivered *to* the failed cluster (they occupied real interface
        // time), so the bookkeeping mirrors `commit` exactly — events,
        // ready times, A/B membership — minus selection and cache upkeep.
        for event in committed {
            let (s, r) = (event.sender.index(), event.receiver.index());
            assert!(
                self.in_a[s],
                "committed event sender must already hold the message"
            );
            assert!(!self.in_a[r], "a cluster receives the message at most once");
            self.events.push(*event);
            self.ready[s] = event.start + self.gap_of(problem, s, r);
            self.ready[r] = event.arrival;
            self.in_a[r] = true;
            let pos = self.recv_pos[r] as usize;
            let last = *self.receivers.last().expect("receiver is in B");
            self.receivers.swap_remove(pos);
            if pos < self.receivers.len() {
                self.recv_pos[last as usize] = pos as u32;
            }
            self.recv_pos[r] = u32::MAX;
        }
        // Excise the failed cluster. If it never received the message it is
        // still in B: remove it so no round ever schedules a delivery to it.
        // Either way it is marked "in A" — the dead cluster is *handled*, not
        // awaiting coverage — but it is kept out of the sender order below,
        // so it can never be picked to transmit.
        if !self.in_a[f] {
            let pos = self.recv_pos[f] as usize;
            let last = *self.receivers.last().expect("failed cluster is in B");
            self.receivers.swap_remove(pos);
            if pos < self.receivers.len() {
                self.recv_pos[last as usize] = pos as u32;
            }
            self.recv_pos[f] = u32::MAX;
            self.in_a[f] = true;
        }
        // No repair transmission starts before the recovery instant (the
        // crash has to be *detected* before anyone re-plans around it).
        for c in 0..n {
            if self.in_a[c] && c != f && self.ready[c] < resume_at {
                self.ready[c] = resume_at;
            }
        }
        // Rebuild the engine caches over the surviving sets and cover the
        // remaining receivers with ordinary rounds.
        self.repair_and_finish(problem, policy, Some(f));
    }

    /// The **repair core** shared by crash recovery and warm-start replay:
    /// given an arbitrary mid-schedule state (A/B membership, ready times, a
    /// committed event prefix), rebuild every engine cache exactly as a cold
    /// run arriving at this state would hold it, then run the ordinary
    /// select/commit rounds until B is empty. `exclude` keeps a dead cluster
    /// out of the sender order (crash path); `None` on the what-if path.
    ///
    /// The rebuilt state is *bit-identical* to the cold run's: the candidate
    /// rows come from [`EngineState::rebuild_pending_unpruned`] (the exact
    /// unpruned top-`K+1`), the policy re-derives its caches from the same
    /// view a cold run would see, and the static score offsets use the same
    /// rounded expressions — which is what makes the warm-start invariant
    /// (warm output ≡ cold output, bit for bit) hold through a divergence.
    fn repair_and_finish<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
        exclude: Option<usize>,
    ) {
        let n = problem.num_clusters();
        // Rebuild the sorted sender order over A (minus any excluded
        // cluster).
        self.order.clear();
        for c in 0..n {
            self.order_pos[c] = u32::MAX;
            if self.in_a[c] && Some(c) != exclude {
                self.order.push(c as u32);
            }
        }
        {
            let ready = &self.ready;
            self.order
                .sort_by(|&a, &b| (ready[a as usize], a).cmp(&(ready[b as usize], b)));
        }
        for (pos, &c) in self.order.iter().enumerate() {
            self.order_pos[c as usize] = pos as u32;
        }
        // The rebuilt order invalidates every cached bucket minimum.
        for dirty in self.bucket_dirty.iter_mut() {
            *dirty = true;
        }
        // Policy reset runs *after* the replay so per-problem caches (the
        // ECEF bias/watch arrays are built over `view.receivers()`) see the
        // surviving B, exactly as a cold run on the reduced problem would.
        {
            let EngineState {
                in_a,
                ready,
                tx,
                lookahead,
                receivers,
                ..
            } = &mut *self;
            let view = EngineView {
                problem,
                in_a,
                ready,
                mat: tx,
                receiver_major: false,
                receivers,
                n,
            };
            policy.reset(&view, lookahead);
        }
        // Static score offsets, as in `init_caches`. On the crash path
        // `min_in` still includes the failed cluster's outgoing edges, so the
        // offsets can only be smaller than the reduced problem's — a looser
        // but still valid lower bound, affecting pruning effort, never
        // results.
        self.score_offset.clear();
        self.score_offset.resize(n, Time::ZERO);
        self.score_post.clear();
        self.score_post.resize(n, Time::ZERO);
        self.sender_offset.clear();
        self.sender_offset.resize(n, Time::ZERO);
        if policy.sender_time_sensitive() {
            for i in 0..self.receivers.len() {
                let r = self.receivers[i] as usize;
                self.score_offset[r] =
                    policy.edge_score_offset(problem, ClusterId(r), self.min_in[r]);
                self.score_post[r] = policy.edge_score_post_offset(problem, ClusterId(r));
            }
            // As with `min_in`, a crash path's `min_out` still includes edges
            // to the failed cluster — a looser but valid sender bound.
            for c in 0..n {
                self.sender_offset[c] =
                    policy.sender_score_offset(problem, ClusterId(c), self.min_out[c]);
            }
        }
        // Seed every remaining receiver's candidate row from the multi-sender
        // A set (a cold run seeds from the singleton {root}; here A already
        // holds every cluster the committed prefix reached).
        self.pending.clear();
        for i in 0..self.receivers.len() {
            let r = self.receivers[i];
            self.pending.push(r);
        }
        self.rebuild_pending_unpruned(problem, policy);
        // Ordinary rounds until the remaining receivers are all covered.
        while !self.receivers.is_empty() {
            let (sender, receiver) = self.select(problem, policy);
            self.telemetry.recomputed_commit();
            self.commit(problem, policy, sender, receiver);
        }
    }

    fn run<P: SelectionPolicy + ?Sized>(&mut self, problem: &BroadcastProblem, policy: &mut P) {
        self.reset(problem, policy.row_decay());
        {
            // Sender-major view for the policy's per-problem rebuild: the
            // lookahead rows read `transfer(j, k)` for consecutive `k`, which
            // is exactly a `tx` row.
            let EngineState {
                in_a,
                ready,
                tx,
                lookahead,
                receivers,
                ..
            } = &mut *self;
            let view = EngineView {
                problem,
                in_a,
                ready,
                mat: tx,
                receiver_major: false,
                receivers,
                n: problem.num_clusters(),
            };
            policy.reset(&view, lookahead);
        }
        self.init_caches(problem, policy);
        let n = problem.num_clusters();
        while self.events.len() + 1 < n {
            let (sender, receiver) = self.select(problem, policy);
            self.commit(problem, policy, sender, receiver);
        }
    }

    /// [`EngineState::run`] with commit logging: identical rounds (the
    /// selection scan is the same monomorphization with runner-up tracking
    /// switched on), recording one [`LoggedCommit`] per round into `commits`.
    fn run_logged<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
        commits: &mut Vec<LoggedCommit>,
    ) {
        commits.clear();
        self.reset(problem, policy.row_decay());
        {
            let EngineState {
                in_a,
                ready,
                tx,
                lookahead,
                receivers,
                ..
            } = &mut *self;
            let view = EngineView {
                problem,
                in_a,
                ready,
                mat: tx,
                receiver_major: false,
                receivers,
                n: problem.num_clusters(),
            };
            policy.reset(&view, lookahead);
        }
        self.init_caches(problem, policy);
        let n = problem.num_clusters();
        commits.reserve(n.saturating_sub(1));
        while self.events.len() + 1 < n {
            let (winner, runner_up) = self.select_full::<P, true>(problem, policy);
            let (sender, receiver) = (ClusterId(winner.2 as usize), ClusterId(winner.1 as usize));
            self.commit(problem, policy, sender, receiver);
            let event = *self.events.last().expect("commit pushed an event");
            commits.push(LoggedCommit {
                sender: winner.2,
                receiver: winner.1,
                start: event.start,
                arrival: event.arrival,
                winner,
                runner_up: runner_up.unwrap_or((Time::INFINITY, u32::MAX, u32::MAX)),
            });
        }
    }

    /// Replays one logged commit's bookkeeping: event times recomputed from
    /// the *current* (possibly perturbed) matrices, A/B membership and the
    /// swap-remove layout mirrored bit for bit so a divergence hands
    /// [`EngineState::repair_and_finish`] exactly the state a cold run would
    /// hold. No selection, no cache upkeep — the caller already decided this
    /// commit stands.
    fn replay_commit(&mut self, problem: &BroadcastProblem, s: usize, r: usize) {
        let n = problem.num_clusters();
        self.telemetry.round();
        let start = self.ready[s];
        let arrival = start + self.tx[s * n + r];
        self.events.push(ScheduleEvent {
            sender: ClusterId(s),
            receiver: ClusterId(r),
            start,
            arrival,
        });
        self.ready[s] = start + self.gap_of(problem, s, r);
        self.ready[r] = arrival;
        self.in_a[r] = true;
        let pos = self.recv_pos[r] as usize;
        let last = *self.receivers.last().expect("receiver is in B");
        self.receivers.swap_remove(pos);
        if pos < self.receivers.len() {
            self.recv_pos[last as usize] = pos as u32;
        }
        self.recv_pos[r] = u32::MAX;
    }

    /// Re-scores one receiver's selection tuple from scratch against the
    /// current state: the exact lexicographic head `(edge score, sender)`
    /// over all of A, plus the policy's cache-free
    /// [`SelectionPolicy::replay_bias`]. Bit-identical to the candidate the
    /// cached selection scan of [`EngineState::select_full`] would build for
    /// this receiver — the heads it reads store verbatim `edge_score`
    /// outputs, and `replay_bias` contracts to match the cached bias.
    fn recompute_tuple<P: SelectionPolicy + ?Sized>(
        &self,
        problem: &BroadcastProblem,
        policy: &P,
        receiver: usize,
        biased: bool,
    ) -> (Time, u32, u32) {
        let n = problem.num_clusters();
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            mat: &self.rx,
            receiver_major: true,
            receivers: &self.receivers,
            n,
        };
        let rj = ClusterId(receiver);
        let mut head: Option<(Time, u32)> = None;
        for s in 0..n {
            if !self.in_a[s] {
                continue;
            }
            let score = policy.edge_score(&view, ClusterId(s), rj);
            debug_assert_score_not_nan(score);
            let entry = (score, s as u32);
            if head.is_none_or(|h| entry < h) {
                head = Some(entry);
            }
        }
        let (score, s) = head.expect("set A is never empty");
        let bias = if biased {
            policy.replay_bias(&view, rj)
        } else {
            Time::ZERO
        };
        (score + bias, receiver as u32, s)
    }

    /// The warm-start core: re-derive the schedule of `log` under a changed
    /// `problem`, replaying the longest provably-unchanged commit prefix and
    /// handing everything from the **first divergent commit** to
    /// [`EngineState::repair_and_finish`].
    ///
    /// Three trust regimes, picked per policy from [`ReplayTraits`] and the
    /// delta's direction:
    ///
    /// * **static** (`gap_blind`, or a clean delta): selection never reads a
    ///   perturbed quantity, so every logged selection stands and only event
    ///   times are recomputed. Never diverges.
    /// * **monotone** (`gap_monotone` × minimised objective ×
    ///   receiver-then-sender tie-break × worsening delta): every score can
    ///   only have grown, so a commit is *suspect* only when its own inputs
    ///   drifted (dirty sender row, tainted sender ready time, or dirty
    ///   receiver row under a biased policy). A suspect winner is re-scored
    ///   exactly; if it kept its sender and still beats the logged
    ///   runner-up, every other candidate — which drifted *away* — is beaten
    ///   transitively and the commit stands. Anything else diverges.
    /// * **checked** (everything else — BottomUp's maximised objective,
    ///   improving/mixed deltas, conservative custom policies): commits
    ///   replay while no dirty cluster has entered A (sender-side state is
    ///   then exact); dirty receivers still in B are re-scored against the
    ///   winner every round, and the first round that admits any drift into
    ///   A diverges.
    ///
    /// Divergence is always *safe*, never wrong: the replayed prefix leaves
    /// state bit-identical to a cold run's, and the repair core rebuilds
    /// caches exactly as that cold run would hold them — so warm output
    /// equals cold output bit for bit regardless of how early the replay
    /// gives up. The traits only buy longer prefixes.
    fn run_replay<P: SelectionPolicy + ?Sized>(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut P,
        log: &CommitLog,
        delta: &ReplayDelta,
    ) {
        let n = problem.num_clusters();
        if !log.compatible_with(problem) || delta.num_clusters() != n {
            // Moved root, altered payload, resized grid or a foreign delta:
            // nothing in the log is replayable — run cold.
            self.run(problem, policy);
            let events = self.events.len();
            self.telemetry.recomputed_many(events);
            return;
        }
        self.reset(problem, policy.row_decay());
        self.taint.clear();
        self.taint.resize(n, false);
        self.dirty_list.clear();
        for c in 0..n {
            if delta.is_dirty(c) {
                self.dirty_list.push(c as u32);
            }
        }

        let objective = policy.objective();
        let tie = policy.tie_break();
        let biased = policy.uses_receiver_bias();
        let sensitive = policy.sender_time_sensitive();
        let traits = policy.replay_traits();
        let bias_ok = !biased || traits.replay_bias_exact;
        let clean = !delta.any_dirty();
        let static_ok = clean || (traits.gap_blind && !sensitive);
        let monotone_ok = traits.gap_monotone
            && objective == Objective::Minimize
            && tie == TieBreak::ReceiverThenSender
            && matches!(
                delta.direction(),
                DeltaDirection::Unchanged | DeltaDirection::Worsening
            );
        // Checked mode re-scores dirty receivers every round, which needs an
        // exact cache-free bias; a biased policy that cannot provide one
        // diverges immediately (repair-from-scratch ≡ cold run).
        let checked_usable = bias_ok;

        let mut suspect_in_a = delta.is_dirty(problem.root.index());
        let mut diverged = false;

        for commit in log.commits.iter() {
            let (s, r) = (commit.sender as usize, commit.receiver as usize);
            assert!(s < n && r < n, "logged commit outside the problem");
            assert!(self.in_a[s], "logged sender must already hold the message");
            assert!(!self.in_a[r], "a cluster receives the message at most once");
            let s_was_clean = !self.taint[s] && !delta.is_dirty(s);
            if static_ok {
                self.telemetry.replayed_commit();
            } else if monotone_ok {
                let suspect = delta.is_dirty(s)
                    || (sensitive && self.taint[s])
                    || (biased && delta.is_dirty(r));
                if !suspect {
                    self.telemetry.replayed_commit();
                } else if !bias_ok {
                    diverged = true;
                    break;
                } else {
                    let w = self.recompute_tuple(problem, policy, r, biased);
                    debug_assert_eq!(w.1, commit.receiver);
                    if w.2 != commit.sender
                        || (commit.has_runner_up()
                            && candidate_improves(objective, tie, commit.runner_up, w))
                    {
                        diverged = true;
                        break;
                    }
                    self.telemetry.repaired_commit();
                }
            } else {
                if suspect_in_a || !checked_usable {
                    diverged = true;
                    break;
                }
                let winner_suspect = biased && delta.is_dirty(r);
                let mut w = commit.winner;
                let mut verified = false;
                if winner_suspect {
                    w = self.recompute_tuple(problem, policy, r, biased);
                    verified = true;
                    if w.1 != commit.receiver
                        || w.2 != commit.sender
                        || (commit.has_runner_up()
                            && candidate_improves(objective, tie, commit.runner_up, w))
                    {
                        diverged = true;
                        break;
                    }
                }
                // A dirty receiver still waiting in B may now beat the
                // logged winner — re-score each one exactly.
                if biased {
                    for i in 0..self.dirty_list.len() {
                        let d = self.dirty_list[i] as usize;
                        if d == r || self.recv_pos[d] == u32::MAX {
                            continue;
                        }
                        let t = self.recompute_tuple(problem, policy, d, biased);
                        verified = true;
                        if candidate_improves(objective, tie, t, w) {
                            diverged = true;
                            break;
                        }
                    }
                    if diverged {
                        break;
                    }
                }
                if verified {
                    self.telemetry.repaired_commit();
                } else {
                    self.telemetry.replayed_commit();
                }
            }
            self.replay_commit(problem, s, r);
            #[cfg(debug_assertions)]
            if s_was_clean {
                let event = self.events.last().expect("replay pushed an event");
                debug_assert_eq!(event.start, commit.start, "clean replay drifted");
                debug_assert_eq!(event.arrival, commit.arrival, "clean replay drifted");
            }
            // Drift tracking: committing over a perturbed row moves the
            // sender's and receiver's ready times off the logged trajectory.
            if !s_was_clean {
                self.taint[s] = true;
                self.taint[r] = true;
            }
            suspect_in_a |= delta.is_dirty(r);
        }

        if diverged {
            self.repair_and_finish(problem, policy, None);
        } else {
            debug_assert!(self.receivers.is_empty(), "full replay covers all of B");
        }
    }

    /// Folds the events currently in the buffer into the reusable
    /// `arrival`/`busy` buffers using the engine's flat `gp` matrix: per
    /// cluster, when its payload arrived and until when its interface is
    /// occupied by outgoing gaps. The single event-fold behind
    /// [`EngineState::makespan_of_events`] and
    /// [`EngineState::schedule_of_events`].
    fn fold_events(&mut self, problem: &BroadcastProblem, n: usize) {
        self.arrival.clear();
        self.arrival.resize(n, Time::ZERO);
        self.busy.clear();
        self.busy.resize(n, Time::ZERO);
        for event in &self.events {
            self.arrival[event.receiver.index()] = event.arrival;
            let send_end =
                event.start + self.gap_of(problem, event.sender.index(), event.receiver.index());
            let cell = &mut self.busy[event.sender.index()];
            *cell = (*cell).max(send_end);
        }
    }

    /// Makespan of the events currently in the buffer, computed exactly like
    /// [`Schedule::from_events`] but without allocating a [`Schedule`].
    fn makespan_of_events(&mut self, problem: &BroadcastProblem) -> Time {
        let n = problem.num_clusters();
        self.fold_events(problem, n);
        let mut makespan = Time::ZERO;
        for i in 0..n {
            let coordinator_free = self.arrival[i].max(self.busy[i]);
            makespan = makespan.max(coordinator_free + problem.intra_time(ClusterId(i)));
        }
        makespan
    }

    /// Builds a [`Schedule`] from the events currently in the buffer,
    /// computing per-cluster completion times with the engine's flat `gp`
    /// matrix — the one schedule builder behind every engine entry point. On
    /// the uniform path `gp` equals the problem's gap matrix bit for bit, so
    /// this matches [`Schedule::from_events`]; on the costed path it prices
    /// what the committed edges actually carried, which the problem's own
    /// matrix cannot.
    fn schedule_of_events(&mut self, problem: &BroadcastProblem, heuristic: &str) -> Schedule {
        let n = problem.num_clusters();
        self.fold_events(problem, n);
        let cluster_completion = (0..n)
            .map(|i| self.arrival[i].max(self.busy[i]) + problem.intra_time(ClusterId(i)))
            .collect();
        Schedule {
            root: problem.root,
            events: self.events.clone(),
            cluster_completion,
            heuristic: heuristic.to_owned(),
        }
    }
}

/// One warm instance of every built-in policy, stored as **concrete types**:
/// dispatching on [`HeuristicKind`] once per run hands the round loop a
/// monomorphized policy, so the per-edge `edge_score` calls in the offer,
/// repair and rescan loops inline instead of going through a vtable —
/// roughly a third of the batch cost at 1000 clusters.
struct BuiltinPolicies {
    flat_tree: FlatTreePolicy,
    fef: FefPolicy,
    ecef: EcefPolicy,
    ecef_la: EcefPolicy,
    ecef_la_min: EcefPolicy,
    ecef_la_max: EcefPolicy,
    bottom_up: BottomUpPolicy,
}

impl Default for BuiltinPolicies {
    fn default() -> Self {
        BuiltinPolicies {
            flat_tree: FlatTreePolicy::new(),
            fef: FefPolicy,
            ecef: EcefPolicy::new(Lookahead::None),
            ecef_la: EcefPolicy::new(Lookahead::MinEdge),
            ecef_la_min: EcefPolicy::new(Lookahead::MinEdgePlusIntra),
            ecef_la_max: EcefPolicy::new(Lookahead::MaxEdgePlusIntra),
            bottom_up: BottomUpPolicy,
        }
    }
}

impl BuiltinPolicies {
    /// Runs `state` on `problem` with the concrete policy for `kind` —
    /// the single point where the kind-to-policy dispatch happens.
    fn run(&mut self, state: &mut EngineState, problem: &BroadcastProblem, kind: HeuristicKind) {
        match kind {
            HeuristicKind::FlatTree => state.run(problem, &mut self.flat_tree),
            HeuristicKind::Fef => state.run(problem, &mut self.fef),
            HeuristicKind::Ecef => state.run(problem, &mut self.ecef),
            HeuristicKind::EcefLa => state.run(problem, &mut self.ecef_la),
            HeuristicKind::EcefLaMin => state.run(problem, &mut self.ecef_la_min),
            HeuristicKind::EcefLaMax => state.run(problem, &mut self.ecef_la_max),
            HeuristicKind::BottomUp => state.run(problem, &mut self.bottom_up),
        }
    }

    /// The crash-recovery twin of [`BuiltinPolicies::run`]: dispatches `kind`
    /// to its concrete policy and hands it to
    /// [`EngineState::run_excluding`].
    fn run_excluding(
        &mut self,
        state: &mut EngineState,
        problem: &BroadcastProblem,
        kind: HeuristicKind,
        failed: ClusterId,
        committed: &[ScheduleEvent],
        resume_at: Time,
    ) {
        match kind {
            HeuristicKind::FlatTree => {
                state.run_excluding(problem, &mut self.flat_tree, failed, committed, resume_at)
            }
            HeuristicKind::Fef => {
                state.run_excluding(problem, &mut self.fef, failed, committed, resume_at)
            }
            HeuristicKind::Ecef => {
                state.run_excluding(problem, &mut self.ecef, failed, committed, resume_at)
            }
            HeuristicKind::EcefLa => {
                state.run_excluding(problem, &mut self.ecef_la, failed, committed, resume_at)
            }
            HeuristicKind::EcefLaMin => {
                state.run_excluding(problem, &mut self.ecef_la_min, failed, committed, resume_at)
            }
            HeuristicKind::EcefLaMax => {
                state.run_excluding(problem, &mut self.ecef_la_max, failed, committed, resume_at)
            }
            HeuristicKind::BottomUp => {
                state.run_excluding(problem, &mut self.bottom_up, failed, committed, resume_at)
            }
        }
    }

    /// The commit-logging twin of [`BuiltinPolicies::run`].
    fn run_logged(
        &mut self,
        state: &mut EngineState,
        problem: &BroadcastProblem,
        kind: HeuristicKind,
        commits: &mut Vec<LoggedCommit>,
    ) {
        match kind {
            HeuristicKind::FlatTree => state.run_logged(problem, &mut self.flat_tree, commits),
            HeuristicKind::Fef => state.run_logged(problem, &mut self.fef, commits),
            HeuristicKind::Ecef => state.run_logged(problem, &mut self.ecef, commits),
            HeuristicKind::EcefLa => state.run_logged(problem, &mut self.ecef_la, commits),
            HeuristicKind::EcefLaMin => state.run_logged(problem, &mut self.ecef_la_min, commits),
            HeuristicKind::EcefLaMax => state.run_logged(problem, &mut self.ecef_la_max, commits),
            HeuristicKind::BottomUp => state.run_logged(problem, &mut self.bottom_up, commits),
        }
    }

    /// The warm-start twin of [`BuiltinPolicies::run`]: dispatches on the
    /// **log's** heuristic kind.
    fn run_replay(
        &mut self,
        state: &mut EngineState,
        problem: &BroadcastProblem,
        log: &CommitLog,
        delta: &ReplayDelta,
    ) {
        match log.kind {
            HeuristicKind::FlatTree => state.run_replay(problem, &mut self.flat_tree, log, delta),
            HeuristicKind::Fef => state.run_replay(problem, &mut self.fef, log, delta),
            HeuristicKind::Ecef => state.run_replay(problem, &mut self.ecef, log, delta),
            HeuristicKind::EcefLa => state.run_replay(problem, &mut self.ecef_la, log, delta),
            HeuristicKind::EcefLaMin => {
                state.run_replay(problem, &mut self.ecef_la_min, log, delta)
            }
            HeuristicKind::EcefLaMax => {
                state.run_replay(problem, &mut self.ecef_la_max, log, delta)
            }
            HeuristicKind::BottomUp => state.run_replay(problem, &mut self.bottom_up, log, delta),
        }
    }
}

/// The reusable, pattern-agnostic scheduling engine.
///
/// One engine owns the A/B bookkeeping buffers and one warm policy instance
/// per [`HeuristicKind`], so repeated scheduling — Monte-Carlo sweeps,
/// benches, serving many requests — performs no per-round allocations and
/// reuses every buffer across heuristics and problems.
///
/// ```
/// use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
/// use gridcast_plogp::MessageSize;
/// use gridcast_topology::{grid5000_table3, ClusterId};
///
/// let grid = grid5000_table3();
/// let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
/// let mut engine = ScheduleEngine::new();
/// let schedules = engine.schedule_all(&problem, &HeuristicKind::all());
/// assert_eq!(schedules.len(), 7);
/// for s in &schedules {
///     assert!(s.validate(&problem).is_ok());
/// }
/// ```
#[derive(Default)]
pub struct ScheduleEngine {
    state: EngineState,
    policies: BuiltinPolicies,
}

impl ScheduleEngine {
    /// Creates an engine with empty buffers.
    pub fn new() -> Self {
        ScheduleEngine::default()
    }

    /// Creates an engine whose candidate rows hold a fixed `k` entries instead
    /// of resolving [`adaptive_k_best_for`] per problem and policy.
    ///
    /// The row width is a **pure performance knob**: the head invariant and
    /// the rescan fallback keep schedules byte-identical for any `k ≥ 1`
    /// (asserted by the engine's parity tests) — only the repair rate, and
    /// with it the rescan work, changes. The `engine_scaling` bench uses this
    /// to probe K ∈ {2, 4, 8, 16, 32} at 500/1000 clusters for the adaptive-K
    /// telemetry.
    pub fn with_k_best(k: usize) -> Self {
        assert!(k >= 1, "the candidate row needs at least the head entry");
        let mut engine = ScheduleEngine::default();
        engine.state.k_best = KBest::Fixed(k);
        engine
    }

    /// The **widest** candidate-row width `K` this engine can use for an
    /// `n`-cluster problem: the fixed override when constructed via
    /// [`ScheduleEngine::with_k_best`], [`adaptive_k_best`]`(n)` (the
    /// [`RowDecay::Steep`] column of the per-policy table) otherwise. Without
    /// a fixed override the width actually used depends on the policy's
    /// [`SelectionPolicy::row_decay`] class — see [`adaptive_k_best_for`].
    pub fn k_best_for(&self, n: usize) -> usize {
        self.state.k_best.resolve_for(RowDecay::Steep, n)
    }

    /// Schedules `problem` with the built-in policy for `kind`.
    pub fn schedule(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Schedule {
        self.state.prepare_tx(problem);
        self.schedule_prepared(problem, kind)
    }

    /// Like [`ScheduleEngine::schedule`], but assumes [`EngineState::prepare_tx`]
    /// already ran for this problem (the batched entry points build the
    /// transfer matrix once and schedule every heuristic against it).
    fn schedule_prepared(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Schedule {
        let ScheduleEngine { state, policies } = self;
        policies.run(state, problem, kind);
        state.schedule_of_events(problem, kind.name())
    }

    /// Warm-start crash recovery: re-plans the remainder of a broadcast after
    /// cluster `failed` died mid-collective, splicing the repair onto the
    /// already-executed prefix instead of restarting from round zero.
    ///
    /// `committed` is the prefix of [`ScheduleEvent`]s that completed on the
    /// wire before the crash was detected (pass `&[]` for a naive
    /// from-scratch restart at `resume_at` — the baseline the resplice is
    /// measured against). Every committed event is replayed verbatim: its
    /// receiver joins the sender set A with the original arrival as its ready
    /// time, its sender's interface stays occupied for the original gap, and
    /// deliveries *to* the failed cluster are kept (they consumed real
    /// interface time even though the payload is now lost). The failed
    /// cluster is then excised from both sets — it never appears as a sender
    /// or receiver in the repair — surviving ready times are clamped to
    /// `resume_at` (no repair transmission starts before the crash is
    /// detected), and the ordinary select/commit rounds of `kind` cover the
    /// surviving receivers.
    ///
    /// With an empty prefix and `resume_at == Time::ZERO` the result is
    /// **bit-identical** (modulo the identity-preserving cluster-id remap) to
    /// a cold [`ScheduleEngine::schedule`] run on the reduced problem with
    /// the failed cluster's row and column deleted — the conformance contract
    /// the engine's own tests pin for every built-in heuristic and every
    /// failed cluster (`tests/fault_suite.rs` adds the end-to-end half: the
    /// spliced repair beats that naive restart strictly). This is the
    /// first concrete step toward warm-start what-if scheduling: the same
    /// replay-then-repair loop applies when a perturbation invalidates only a
    /// suffix of the commit sequence.
    ///
    /// The returned schedule's events are the committed prefix followed by
    /// the repair transfers. Its completion entry for the failed cluster is
    /// meaningless (a dead cluster never finishes); use
    /// [`Schedule::makespan_excluding`] rather than [`Schedule::makespan`]
    /// to judge recovery schedules.
    ///
    /// # Panics
    ///
    /// Panics when `failed` is the root (the message source cannot be
    /// excluded), when `resume_at` is not finite, or when `committed` is not
    /// a causally consistent prefix (a sender transmitting before it holds
    /// the message, or a cluster receiving twice).
    pub fn reschedule_excluding(
        &mut self,
        problem: &BroadcastProblem,
        kind: HeuristicKind,
        failed: ClusterId,
        committed: &[ScheduleEvent],
        resume_at: Time,
    ) -> Schedule {
        assert_ne!(
            failed, problem.root,
            "the root holds the message source and cannot be excluded"
        );
        assert!(
            failed.index() < problem.num_clusters(),
            "failed cluster out of range"
        );
        assert!(resume_at.is_finite(), "resume_at must be finite");
        self.state.prepare_tx(problem);
        let ScheduleEngine { state, policies } = self;
        policies.run_excluding(state, problem, kind, failed, committed, resume_at);
        state.schedule_of_events(problem, kind.name())
    }

    /// [`ScheduleEngine::schedule`] with commit logging: the identical
    /// schedule (same rounds, same floats) plus the [`CommitLog`] that lets
    /// [`ScheduleEngine::reschedule_perturbed`] warm-start what-if variants
    /// of this problem.
    pub fn schedule_logged(
        &mut self,
        problem: &BroadcastProblem,
        kind: HeuristicKind,
    ) -> (Schedule, CommitLog) {
        self.state.prepare_tx(problem);
        let ScheduleEngine { state, policies } = self;
        let mut commits = Vec::new();
        policies.run_logged(state, problem, kind, &mut commits);
        let schedule = state.schedule_of_events(problem, kind.name());
        let log = CommitLog {
            root: problem.root,
            message: problem.message,
            n: problem.num_clusters(),
            kind,
            commits,
        };
        (schedule, log)
    }

    /// The logged twin of [`ScheduleEngine::makespans_into`]: one shared
    /// transfer-matrix build, then every heuristic in `kinds` run with commit
    /// logging. Returns the makespans and one [`CommitLog`] per kind, in
    /// order — the baseline a warm what-if sweep replays against.
    pub fn makespans_logged(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
    ) -> (Vec<Time>, Vec<CommitLog>) {
        self.state.prepare_tx(problem);
        let mut makespans = Vec::with_capacity(kinds.len());
        let mut logs = Vec::with_capacity(kinds.len());
        for &kind in kinds {
            let ScheduleEngine { state, policies } = self;
            let mut commits = Vec::new();
            policies.run_logged(state, problem, kind, &mut commits);
            makespans.push(state.makespan_of_events(problem));
            logs.push(CommitLog {
                root: problem.root,
                message: problem.message,
                n: problem.num_clusters(),
                kind,
                commits,
            });
        }
        (makespans, logs)
    }

    /// Warm-start what-if scheduling: re-derives `log`'s schedule under
    /// `problem` — the **perturbed** problem — replaying the longest
    /// provably-unchanged commit prefix and re-running selection only from
    /// the first divergent commit (see [`ReplayTraits`] for the per-policy
    /// trust regimes). `perturbations` describes *how* `problem` differs
    /// from the logged baseline; it is folded into a [`ReplayDelta`] marking
    /// the perturbed sender rows and the drift direction.
    ///
    /// **Invariant:** the result is bit-identical to a cold
    /// [`ScheduleEngine::schedule`] of `log.kind()` on `problem`, for every
    /// policy, every candidate-row width and every thread count — replay
    /// only ever commits a round it can prove the cold run would commit, and
    /// falls back to the cold path entirely when the log is incompatible
    /// (moved root, altered payload, resized grid).
    ///
    /// Telemetry (with the `telemetry` feature) splits the rounds into
    /// `replayed_commits` / `repaired_commits` / `recomputed_commits`.
    pub fn reschedule_perturbed(
        &mut self,
        problem: &BroadcastProblem,
        log: &CommitLog,
        perturbations: &[Perturbation],
    ) -> Schedule {
        let delta = ReplayDelta::from_perturbations(problem.num_clusters(), perturbations);
        self.warm_run(problem, log, &delta);
        self.state.schedule_of_events(problem, log.kind.name())
    }

    /// The delta-form primitive behind [`ScheduleEngine::reschedule_perturbed`]:
    /// runs the warm replay and leaves the events in the engine buffer
    /// ([`ScheduleEngine::events`]) without materialising a [`Schedule`] —
    /// the shape the what-if runner's hot loop wants.
    pub fn warm_run(&mut self, problem: &BroadcastProblem, log: &CommitLog, delta: &ReplayDelta) {
        self.state.prepare_tx(problem);
        let ScheduleEngine { state, policies } = self;
        policies.run_replay(state, problem, log, delta);
    }

    /// The warm twin of [`ScheduleEngine::makespans_into`]: one shared
    /// transfer-matrix build, then one warm replay per baseline log in
    /// `logs`, writing each replay's makespan into `out` (cleared first) in
    /// order. Every makespan is bit-identical to what a cold
    /// [`ScheduleEngine::makespan`] of that log's kind on `problem` returns.
    pub fn warm_makespans_into(
        &mut self,
        problem: &BroadcastProblem,
        logs: &[CommitLog],
        delta: &ReplayDelta,
        out: &mut Vec<Time>,
    ) {
        out.clear();
        out.reserve(logs.len());
        self.state.prepare_tx(problem);
        let ScheduleEngine { state, policies } = self;
        for log in logs {
            policies.run_replay(state, problem, log, delta);
            out.push(state.makespan_of_events(problem));
        }
    }

    /// Schedules `problem` with a caller-provided policy.
    pub fn schedule_with(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
    ) -> Schedule {
        self.state.prepare_tx(problem);
        self.state.run(problem, policy);
        self.state.schedule_of_events(problem, policy.name())
    }

    /// Schedules `problem` with the built-in policy for `kind`, pricing every
    /// edge by the per-edge payload `costs` instead of the problem's
    /// uniform-message matrices: every completion estimate served by the
    /// [`EngineView`], every committed timing and the returned schedule's
    /// completion times use the costed `g(payload) + L`.
    ///
    /// Caveat shared with [`ScheduleEngine::schedule_with_costs`]: a policy
    /// component that reads the problem's raw matrices directly — the
    /// lookahead `F_j` rows of the ECEF-LA family are built from them — still
    /// sees the uniform prices, so those kinds score on mixed prices. The
    /// relay policies of [`patterns`](crate::patterns) only consult the view
    /// and are fully costed.
    ///
    /// With [`EdgeCosts::uniform`] this is byte-identical to
    /// [`ScheduleEngine::schedule`] — the broadcast fast path is the
    /// degenerate case, not a separate code path (the round loop only ever
    /// reads the flat matrices this entry point fills).
    pub fn schedule_costed(
        &mut self,
        problem: &BroadcastProblem,
        costs: &EdgeCosts,
        kind: HeuristicKind,
    ) -> Schedule {
        let ScheduleEngine { state, policies } = self;
        state.prepare_costs(problem, costs);
        policies.run(state, problem, kind);
        state.schedule_of_events(problem, kind.name())
    }

    /// [`ScheduleEngine::schedule_costed`] with a caller-provided policy —
    /// the entry point behind the relay-capable scatter orderings of
    /// [`patterns`](crate::patterns).
    ///
    /// Policies still receive the original `problem` through the
    /// [`EngineView`], but every completion estimate served by the view (and
    /// every committed timing) is payload-priced; a policy that reads the
    /// problem's raw matrices directly sees the uniform prices instead.
    pub fn schedule_with_costs(
        &mut self,
        problem: &BroadcastProblem,
        costs: &EdgeCosts,
        policy: &mut dyn SelectionPolicy,
    ) -> Schedule {
        self.state.prepare_costs(problem, costs);
        self.state.run(problem, policy);
        self.state.schedule_of_events(problem, policy.name())
    }

    /// Makespan of `kind` on `problem` without materialising a [`Schedule`];
    /// allocation-free once the engine is warm.
    pub fn makespan(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Time {
        self.state.prepare_tx(problem);
        self.makespan_prepared(problem, kind)
    }

    /// [`ScheduleEngine::makespan`] without the per-problem transfer-matrix
    /// build; see [`ScheduleEngine::schedule_prepared`].
    fn makespan_prepared(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Time {
        let ScheduleEngine { state, policies } = self;
        policies.run(state, problem, kind);
        state.makespan_of_events(problem)
    }

    /// The events of the most recent run, without allocation.
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.state.events
    }

    /// The cumulative cache telemetry of this engine. Counters only advance
    /// when the crate is built with the `telemetry` feature.
    pub fn telemetry(&self) -> EngineTelemetry {
        self.state.telemetry
    }

    /// Returns the cumulative telemetry and resets the counters to zero —
    /// convenient for per-batch deltas in benches.
    pub fn take_telemetry(&mut self) -> EngineTelemetry {
        std::mem::take(&mut self.state.telemetry)
    }

    /// Schedules `problem` with every heuristic in `kinds`, reusing the state
    /// buffers across heuristics. This is the batched entry point used by the
    /// Monte-Carlo runner and the benches.
    pub fn schedule_all(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
    ) -> Vec<Schedule> {
        let mut out = Vec::with_capacity(kinds.len());
        self.schedule_all_into(problem, kinds, &mut out);
        out
    }

    /// Like [`ScheduleEngine::schedule_all`], writing into a caller-owned
    /// buffer (cleared first) so sweeps can reuse the output allocation too.
    pub fn schedule_all_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Schedule>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        self.state.prepare_tx(problem);
        for &kind in kinds {
            out.push(self.schedule_prepared(problem, kind));
        }
    }

    /// Places every transfer of `set` on the clusters' network interfaces with
    /// the greedy **earliest-completion-first** rule: each round commits the
    /// pending transfer whose completion `max(free_src, free_dst) + g + L` is
    /// smallest (ties broken by `(from, to, insertion index)`), occupying both
    /// endpoints' interfaces for the gap — the single-port model every
    /// heuristic of the paper assumes, now applied to exchanges where a
    /// cluster sends *and* receives many payloads instead of receiving once.
    ///
    /// The result is deterministic for any insertion order of equal
    /// transfers.
    ///
    /// Implementation: a **lazy-invalidation heap** over completion keys.
    /// Interface free times only *grow*, so every stored key is a lower
    /// bound on its transfer's current completion; a popped entry whose key
    /// still matches its recomputed completion is therefore the exact global
    /// minimum — ties and floats identical to the oracle — and a stale entry
    /// (one of its endpoints moved since the push) is re-keyed and
    /// re-inserted. Only entries whose bound the rising global minimum has
    /// actually passed are ever touched, so the work is `O((T + R) log T)`
    /// with `R` the re-key count: `O(T log T)` on sparse exchanges (every
    /// pending transfer incident to ≤ a few commits), and on **dense**
    /// all-to-all sets the observed `R ≈ 0.85·n·T = O(T^{3/2})` — still a
    /// 16× reduction over the `O(T²)` oracle scan at 200 clusters, widening
    /// to 32× at 400. Byte-exact float semantics force each surfaced bound to
    /// be verified individually (rounded completions are not order-stable
    /// under a common shift); callers who can accept ulp-level reordering get
    /// a further `~O(T^{1.3})` from the feature-gated batch-shift path
    /// (`ScheduleEngine::schedule_transfers_batch_shift`, `fast-math`
    /// feature), which keys *clusters* instead of transfers and holds to
    /// this path within tight relative tolerance.
    /// The old scan is retained as
    /// [`ScheduleEngine::schedule_transfers_quadratic`], the differential
    /// oracle the proptests hold this implementation **byte-identical** to,
    /// and the telemetry counters (`exchange_pops`, `exchange_reinserts`) pin
    /// the work in `crates/bench/tests/exchange_regression.rs`.
    pub fn schedule_transfers(&mut self, set: &TransferSet) -> ExchangeSchedule {
        let release = vec![Time::ZERO; set.num_clusters()];
        self.schedule_transfers_from(set, &release)
    }

    /// [`ScheduleEngine::schedule_transfers`] with per-cluster **release
    /// times**: cluster `i`'s interface only becomes available at
    /// `release[i]` (every transfer touching it starts no earlier). This is
    /// how the allgather charges each coordinator's local gather lead-in
    /// before its wide-area exchange begins.
    pub fn schedule_transfers_from(
        &mut self,
        set: &TransferSet,
        release: &[Time],
    ) -> ExchangeSchedule {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = set.num_clusters();
        assert_eq!(release.len(), n, "one release time per cluster");
        let EngineState {
            ready: free,
            arrival: last_arrival,
            telemetry,
            ..
        } = &mut self.state;
        free.clear();
        free.extend_from_slice(release);
        last_arrival.clear();
        last_arrival.resize(n, Time::ZERO);
        let transfers = set.transfers();
        // The key replicates the oracle's comparison tuple exactly, including
        // the float evaluation order of the completion.
        let key = |free: &[Time], t: &Transfer, idx: u32| {
            let start = free[t.from.index()].max(free[t.to.index()]);
            let completion = start + t.gap + t.latency;
            debug_assert_score_not_nan(completion);
            (completion, t.from.index() as u32, t.to.index() as u32, idx)
        };
        let mut heap: BinaryHeap<Reverse<(Time, u32, u32, u32)>> =
            BinaryHeap::with_capacity(transfers.len() + 1);
        for (idx, t) in transfers.iter().enumerate() {
            heap.push(Reverse(key(free, t, idx as u32)));
        }
        let mut out = Vec::with_capacity(transfers.len());
        // Invariant: every pending transfer has exactly one live heap entry,
        // keyed by a lower bound on its current completion (frees only grow).
        while let Some(Reverse(entry)) = heap.pop() {
            telemetry.exchange_pop();
            let idx = entry.3;
            let t = &transfers[idx as usize];
            let current = key(free, t, idx);
            debug_assert!(current >= entry, "completion keys never decrease");
            if current != entry {
                // Stale: an endpoint's interface moved since the push.
                telemetry.exchange_reinsert();
                heap.push(Reverse(current));
                continue;
            }
            // Fresh minimum over lower bounds of everything pending: this is
            // the oracle's earliest-completion pick, tie-break included.
            telemetry.exchange_commit();
            let start = free[t.from.index()].max(free[t.to.index()]);
            let nic_release = start + t.gap;
            let arrival = nic_release + t.latency;
            free[t.from.index()] = nic_release;
            free[t.to.index()] = nic_release;
            last_arrival[t.to.index()] = last_arrival[t.to.index()].max(arrival);
            out.push(TimedTransfer {
                from: t.from,
                to: t.to,
                payload: t.payload,
                start,
                arrival,
            });
        }
        debug_assert_eq!(out.len(), transfers.len());
        ExchangeSchedule {
            transfers: out,
            interface_free: free.clone(),
            last_arrival: last_arrival.clone(),
        }
    }

    /// The original `O(T²)` earliest-completion-first scan, retained as the
    /// **differential oracle** for [`ScheduleEngine::schedule_transfers`]:
    /// the proptests assert the heap implementation is byte-identical to this
    /// one on random transfer sets, and the scaling figure measures the two
    /// against each other. Prefer `schedule_transfers` everywhere else.
    pub fn schedule_transfers_quadratic(&mut self, set: &TransferSet) -> ExchangeSchedule {
        let release = vec![Time::ZERO; set.num_clusters()];
        self.schedule_transfers_quadratic_from(set, &release)
    }

    /// [`ScheduleEngine::schedule_transfers_quadratic`] with per-cluster
    /// release times — the oracle twin of
    /// [`ScheduleEngine::schedule_transfers_from`].
    pub fn schedule_transfers_quadratic_from(
        &mut self,
        set: &TransferSet,
        release: &[Time],
    ) -> ExchangeSchedule {
        let n = set.num_clusters();
        assert_eq!(release.len(), n, "one release time per cluster");
        let EngineState {
            ready: free,
            arrival: last_arrival,
            telemetry,
            ..
        } = &mut self.state;
        free.clear();
        free.extend_from_slice(release);
        last_arrival.clear();
        last_arrival.resize(n, Time::ZERO);
        let mut remaining: Vec<u32> = (0..set.transfers.len() as u32).collect();
        let mut out = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best_slot = 0usize;
            let mut best_key = (Time::INFINITY, u32::MAX, u32::MAX, u32::MAX);
            for (slot, &idx) in remaining.iter().enumerate() {
                telemetry.exchange_oracle_scan();
                let t = &set.transfers[idx as usize];
                let start = free[t.from.index()].max(free[t.to.index()]);
                let completion = start + t.gap + t.latency;
                debug_assert_score_not_nan(completion);
                let key = (completion, t.from.index() as u32, t.to.index() as u32, idx);
                if key < best_key {
                    best_key = key;
                    best_slot = slot;
                }
            }
            let idx = remaining.swap_remove(best_slot);
            let t = &set.transfers[idx as usize];
            let start = free[t.from.index()].max(free[t.to.index()]);
            let nic_release = start + t.gap;
            let arrival = nic_release + t.latency;
            free[t.from.index()] = nic_release;
            free[t.to.index()] = nic_release;
            last_arrival[t.to.index()] = last_arrival[t.to.index()].max(arrival);
            out.push(TimedTransfer {
                from: t.from,
                to: t.to,
                payload: t.payload,
                start,
                arrival,
            });
        }
        ExchangeSchedule {
            transfers: out,
            interface_free: free.clone(),
            last_arrival: last_arrival.clone(),
        }
    }

    /// The **batch-shift** exchange scheduler: earliest-completion-first with
    /// the same committed-timing arithmetic as
    /// [`ScheduleEngine::schedule_transfers`], but with the selection order
    /// relaxed at float ties — the `fast-math` trade that replaces the lazy
    /// heap's per-transfer re-keying with per-cluster batch shifts.
    ///
    /// The lazy-invalidation heap keys every pending *transfer*; on a dense
    /// set each commit moves two interfaces and thereby stales `Θ(n)` keys,
    /// which is where its observed `O(T^{3/2})` re-key bill comes from. This
    /// scheduler instead keys every *cluster*: per cluster a queue of its
    /// incident transfers sorted by the static `g + L` (each transfer sits in
    /// both endpoints' queues), and a global lazy heap whose cluster entry
    /// carries the bound `fl(free[c] + (g+L)_head)` — a lower bound on every
    /// completion incident to `c` because rounded addition is monotone. A
    /// commit now stales exactly its two endpoints' entries, so re-keying is
    /// `O(1)` heap operations per commit instead of `Θ(n)`.
    ///
    /// A surfaced head is committed only when its popped cluster is the
    /// **governing** endpoint (`free[c] ≥ free[other]`, making the bound the
    /// head's exact completion). A non-governing head is **deferred**: its
    /// completion is set by the partner, and the partner's queue still holds
    /// the same transfer behind a bound that lower-bounds it, so this queue
    /// simply steps past it — no per-transfer heap entry at all. When
    /// governance *flipped* between the two queues' encounters (both have
    /// stepped past it, neither may commit it) the transfer is **adopted**
    /// by the now-governing partner: pushed onto that cluster's side
    /// min-heap of adopted transfers, keyed by the same `(g + L, idx)` the
    /// static queues sort by. A cluster's head is the lexicographic minimum
    /// over its static-queue suffix and its adopted heap — exactly the head
    /// a sorted re-insertion would have produced, so the commit order is
    /// unchanged — but the hop costs `O(log)` instead of the `Θ(queue)`
    /// memmove of a sorted `Vec::insert`. On dense sets governance flips
    /// ~√n times per transfer, so that memmove was the `O(T^{1.3})` term of
    /// the previous implementation; the flip-free bound family retires it.
    /// Deferrals and adoptions are counted together by
    /// `EngineTelemetry::exchange_migrations`; each extra hop of one
    /// transfer requires an intervening governance flip (i.e. a commit
    /// touching its endpoints), which bounds hops by incident commits.
    /// Cluster entries are **versioned** instead of re-keyed: every event
    /// that can move a cluster's bound pushes a fresh entry and bumps the
    /// version, and a popped superseded entry dies in `O(1)` — no re-key
    /// traffic at all. The pop counts stay 2.7× below the lazy heap at 64
    /// clusters widening to 5.4× at 400, pinned exactly by
    /// `crates/bench/tests/exchange_regression.rs`.
    ///
    /// **Why this is `fast-math`:** the cluster bound rounds as
    /// `fl(free + fl(g + L))` while the oracle completion rounds as
    /// `fl(fl(start + g) + L)` — the two may disagree by an ulp, and at exact
    /// float ties the pop order here follows heap keys, not the oracle's
    /// `(completion, from, to, idx)` tuple. Either way two near-equal
    /// completions can commit in swapped order, after which the schedules
    /// genuinely diverge (interface occupancy differs, not just an ulp). On
    /// continuously-distributed inputs ties have probability ~0 and the
    /// conformance property test holds makespans to a tight relative
    /// tolerance against the byte-exact heap, which remains the default path
    /// and the semantic oracle.
    #[cfg(feature = "fast-math")]
    pub fn schedule_transfers_batch_shift(&mut self, set: &TransferSet) -> ExchangeSchedule {
        let release = vec![Time::ZERO; set.num_clusters()];
        self.schedule_transfers_batch_shift_from(set, &release)
    }

    /// [`ScheduleEngine::schedule_transfers_batch_shift`] with per-cluster
    /// release times — the relaxed sibling of
    /// [`ScheduleEngine::schedule_transfers_from`].
    #[cfg(feature = "fast-math")]
    pub fn schedule_transfers_batch_shift_from(
        &mut self,
        set: &TransferSet,
        release: &[Time],
    ) -> ExchangeSchedule {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = set.num_clusters();
        assert_eq!(release.len(), n, "one release time per cluster");
        let EngineState {
            ready: free,
            arrival: last_arrival,
            telemetry,
            ..
        } = &mut self.state;
        free.clear();
        free.extend_from_slice(release);
        last_arrival.clear();
        last_arrival.resize(n, Time::ZERO);
        let transfers = set.transfers();

        // Per-cluster queues of incident transfers, ascending by the static
        // `(g + L, idx)`; a cursor retires committed (or migrated) heads.
        let mut queues: Vec<Vec<(Time, u32)>> = vec![Vec::new(); n];
        for (idx, t) in transfers.iter().enumerate() {
            let gl = t.gap + t.latency;
            debug_assert_score_not_nan(gl);
            queues[t.from.index()].push((gl, idx as u32));
            if t.to != t.from {
                queues[t.to.index()].push((gl, idx as u32));
            }
        }
        for queue in &mut queues {
            queue.sort_unstable_by(|a, b| a.partial_cmp(b).expect("g+L is never NaN"));
        }
        let mut cursor = vec![0u32; n];
        let mut done = vec![false; transfers.len()];
        // Set once a queue first steps past this transfer: exactly one live
        // copy remains from then on (the partner's static slot, or whichever
        // adopted heap it last hopped to), so a later non-governing
        // encounter must move it rather than defer again.
        let mut deferred = vec![false; transfers.len()];
        // Per-cluster min-heaps of adopted transfers — heads whose governance
        // flipped to this cluster after both static copies were stepped
        // past — keyed by the static queues' own `(g + L, idx)` order, so
        // merging with the static suffix reproduces the sorted-queue head
        // exactly while an adoption costs `O(log)` instead of a `Θ(queue)`
        // sorted insert.
        let mut adopted: Vec<BinaryHeap<Reverse<(Time, u32)>>> = vec![BinaryHeap::new(); n];

        // One *live* heap entry per non-drained cluster, keyed by the exact
        // current bound `fl(free[c] + (g+L)_head)`. Every event that can move
        // a cluster's bound — a commit touching it, a deferral advancing its
        // cursor, a re-homed transfer joining its queue — bumps the cluster's
        // version and pushes a fresh entry; a popped entry whose version is
        // superseded is dead and discards in O(1), so nothing is ever
        // re-keyed.
        let mut version = vec![0u32; n];
        let mut heap: BinaryHeap<Reverse<(Time, u32, u32)>> =
            BinaryHeap::with_capacity(n + transfers.len() / 4 + 1);
        // Skips committed heads and returns the cluster's current head —
        // the `(g + L, idx)` minimum over the static-queue suffix and the
        // adopted heap — plus whether it lives in the adopted heap (the
        // caller needs to know which side to step past).
        let head_of = |queues: &[Vec<(Time, u32)>],
                       cursor: &mut [u32],
                       adopted: &mut [BinaryHeap<Reverse<(Time, u32)>>],
                       done: &[bool],
                       c: usize| {
            let queue = &queues[c];
            let mut at = cursor[c] as usize;
            while at < queue.len() && done[queue[at].1 as usize] {
                at += 1;
            }
            cursor[c] = at as u32;
            while let Some(&Reverse(e)) = adopted[c].peek() {
                if done[e.1 as usize] {
                    adopted[c].pop();
                } else {
                    break;
                }
            }
            let fixed = (at < queue.len()).then(|| queue[at]);
            let extra = adopted[c].peek().map(|&Reverse(e)| e);
            match (fixed, extra) {
                (Some(f), Some(e)) if e < f => Some((e.0, e.1, true)),
                (Some(f), _) => Some((f.0, f.1, false)),
                (None, Some(e)) => Some((e.0, e.1, true)),
                (None, None) => None,
            }
        };
        for (c, &free_c) in free.iter().enumerate() {
            if let Some((gl, _, _)) = head_of(&queues, &mut cursor, &mut adopted, &done, c) {
                heap.push(Reverse((free_c + gl, c as u32, 0)));
            }
        }

        let mut out = Vec::with_capacity(transfers.len());
        while out.len() < transfers.len() {
            let Reverse((key, c, ver)) = heap
                .pop()
                .expect("every pending transfer keeps a live cluster entry");
            telemetry.exchange_pop();
            let c = c as usize;
            if ver != version[c] {
                // Superseded by a fresher bound for this cluster.
                continue;
            }
            let Some((gl, idx, from_adopted)) =
                head_of(&queues, &mut cursor, &mut adopted, &done, c)
            else {
                // Queue drained by the partners' commits: entry retires.
                continue;
            };
            debug_assert!(
                free[c] + gl == key,
                "a current-version key is the exact bound"
            );
            let t = &transfers[idx as usize];
            let other = if t.from.index() == c { t.to } else { t.from };
            let o = other.index();
            if free[c] < free[o] {
                // Not the governing endpoint: the head's completion is set by
                // `other`, so this cluster steps past it. First encounter:
                // the partner's queue still holds it behind a valid lower
                // bound — defer, no traffic for the transfer itself. Later
                // encounters (single live copy): the now-governing partner
                // adopts it — an `O(log)` heap push in place of the old
                // sorted `Vec::insert`.
                telemetry.exchange_migration();
                if from_adopted {
                    adopted[c].pop();
                } else {
                    cursor[c] += 1;
                }
                if deferred[idx as usize] {
                    // `deferred` stays set: the adopted copy is the only
                    // live one, so any further flip must move it again.
                    adopted[o].push(Reverse((gl, idx)));
                    version[o] += 1;
                    if let Some((gl, _, _)) = head_of(&queues, &mut cursor, &mut adopted, &done, o)
                    {
                        heap.push(Reverse((free[o] + gl, o as u32, version[o])));
                    }
                } else {
                    deferred[idx as usize] = true;
                }
                version[c] += 1;
                if let Some((gl, _, _)) = head_of(&queues, &mut cursor, &mut adopted, &done, c) {
                    heap.push(Reverse((free[c] + gl, c as u32, version[c])));
                }
                continue;
            }
            // Governing and current: the bound IS the head's completion, and
            // every other pending transfer sits behind a bound no smaller —
            // commit it. Committed timings use the oracle's arithmetic
            // verbatim.
            if from_adopted {
                adopted[c].pop();
            } else {
                cursor[c] += 1;
            }
            telemetry.exchange_commit();
            done[idx as usize] = true;
            let start = free[t.from.index()].max(free[t.to.index()]);
            let nic_release = start + t.gap;
            let arrival = nic_release + t.latency;
            free[t.from.index()] = nic_release;
            free[t.to.index()] = nic_release;
            last_arrival[t.to.index()] = last_arrival[t.to.index()].max(arrival);
            out.push(TimedTransfer {
                from: t.from,
                to: t.to,
                payload: t.payload,
                start,
                arrival,
            });
            for e in [t.from.index(), t.to.index()] {
                version[e] += 1;
                if let Some((gl, _, _)) = head_of(&queues, &mut cursor, &mut adopted, &done, e) {
                    heap.push(Reverse((free[e] + gl, e as u32, version[e])));
                }
            }
        }
        ExchangeSchedule {
            transfers: out,
            interface_free: free.clone(),
            last_arrival: last_arrival.clone(),
        }
    }

    /// Makespans of every heuristic in `kinds` on `problem`, written into a
    /// caller-owned buffer; allocation-free once the engine is warm.
    pub fn makespans_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        self.state.prepare_tx(problem);
        for &kind in kinds {
            out.push(self.makespan_prepared(problem, kind));
        }
    }
}

/// Schedules `problem` with every heuristic in `kinds`, sharding the heuristics
/// across scoped worker threads.
///
/// Heuristics are independent, so the result is **bit-identical** to the
/// sequential [`ScheduleEngine::schedule_all`] for any thread count. Each
/// shard runs the batched entry point (one transfer-matrix build per shard,
/// not per heuristic) on an engine checked out of a process-wide pool, so
/// repeated sharded calls reuse warm buffers exactly like a long-lived
/// sequential engine. When the machine offers no parallelism (or a single
/// shard would cover everything) no thread is spawned at all — the call
/// degrades to the sequential fast path on the caller's shared engine, which
/// is what makes the sharded entry point safe to call unconditionally.
pub fn schedule_all_sharded(problem: &BroadcastProblem, kinds: &[HeuristicKind]) -> Vec<Schedule> {
    let chunk = shard_chunk_size(kinds.len());
    if chunk >= kinds.len() {
        return with_shared_engine(|engine| engine.schedule_all(problem, kinds));
    }
    let mut out: Vec<Option<Schedule>> = (0..kinds.len()).map(|_| None).collect();
    std::thread::scope(|scope| {
        for (kind_chunk, out_chunk) in kinds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut engine = pool_checkout();
                let mut buf = Vec::with_capacity(kind_chunk.len());
                engine.schedule_all_into(problem, kind_chunk, &mut buf);
                for (slot, schedule) in out_chunk.iter_mut().zip(buf) {
                    *slot = Some(schedule);
                }
                pool_return(engine);
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("every kind was scheduled by its shard"))
        .collect()
}

/// Makespans of every heuristic in `kinds`, sharded across scoped worker
/// threads like [`schedule_all_sharded`]; bit-identical to the sequential
/// [`ScheduleEngine::makespans_into`] for any thread count.
pub fn makespans_sharded(problem: &BroadcastProblem, kinds: &[HeuristicKind]) -> Vec<Time> {
    let chunk = shard_chunk_size(kinds.len());
    if chunk >= kinds.len() {
        return with_shared_engine(|engine| {
            let mut out = Vec::new();
            engine.makespans_into(problem, kinds, &mut out);
            out
        });
    }
    let mut out = vec![Time::ZERO; kinds.len()];
    std::thread::scope(|scope| {
        for (kind_chunk, out_chunk) in kinds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut engine = pool_checkout();
                let mut buf = Vec::with_capacity(kind_chunk.len());
                engine.makespans_into(problem, kind_chunk, &mut buf);
                out_chunk.copy_from_slice(&buf);
                pool_return(engine);
            });
        }
    });
    out
}

fn shard_chunk_size(kinds: usize) -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(kinds)
        .max(1);
    kinds.div_ceil(threads).max(1)
}

/// Idle engines kept for the sharded entry points. Bounded by the shard
/// fan-out (one engine per worker thread alive at a time), so the pool never
/// holds more engines than the machine has threads to run them.
static ENGINE_POOL: std::sync::Mutex<Vec<ScheduleEngine>> = std::sync::Mutex::new(Vec::new());

fn pool_checkout() -> ScheduleEngine {
    ENGINE_POOL
        .lock()
        .map(|mut pool| pool.pop())
        .ok()
        .flatten()
        .unwrap_or_default()
}

fn pool_return(engine: ScheduleEngine) {
    if let Ok(mut pool) = ENGINE_POOL.lock() {
        let cap = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if pool.len() < cap {
            pool.push(engine);
        }
    }
}

thread_local! {
    static SHARED_ENGINE: RefCell<ScheduleEngine> = RefCell::new(ScheduleEngine::new());
}

/// Runs `f` with this thread's shared engine — the buffer-reusing fast path
/// behind [`HeuristicKind::schedule`] and the [`crate::heuristics::Heuristic`]
/// impls.
pub fn with_shared_engine<R>(f: impl FnOnce(&mut ScheduleEngine) -> R) -> R {
    SHARED_ENGINE.with(|engine| f(&mut engine.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::GridGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    fn random_grid_for(clusters: usize, seed: u64) -> Grid {
        GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed))
    }

    fn assert_events_bit_identical(warm: &[ScheduleEvent], cold: &[ScheduleEvent], what: &str) {
        assert_eq!(warm.len(), cold.len(), "{what}: event count");
        for (i, (w, c)) in warm.iter().zip(cold).enumerate() {
            assert_eq!(w.sender, c.sender, "{what}: sender of event {i}");
            assert_eq!(w.receiver, c.receiver, "{what}: receiver of event {i}");
            assert_eq!(
                w.start.as_secs().to_bits(),
                c.start.as_secs().to_bits(),
                "{what}: start of event {i}"
            );
            assert_eq!(
                w.arrival.as_secs().to_bits(),
                c.arrival.as_secs().to_bits(),
                "{what}: arrival of event {i}"
            );
        }
    }

    /// Commit logging must not change the schedule: same rounds, same floats,
    /// and the log records exactly the committed sequence.
    #[test]
    fn logged_run_matches_plain_run_bit_for_bit() {
        let problem = random_problem(23, 5);
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let plain = engine.schedule(&problem, kind);
            let (logged, log) = engine.schedule_logged(&problem, kind);
            assert_events_bit_identical(&logged.events, &plain.events, kind.name());
            assert_eq!(log.kind(), kind);
            assert!(log.compatible_with(&problem));
            assert_eq!(log.commits().len() + 1, problem.num_clusters());
            for (c, e) in log.commits().iter().zip(&plain.events) {
                assert_eq!(c.sender as usize, e.sender.index(), "{kind}");
                assert_eq!(c.receiver as usize, e.receiver.index(), "{kind}");
                assert_eq!(c.start.as_secs().to_bits(), e.start.as_secs().to_bits());
                assert_eq!(c.arrival.as_secs().to_bits(), e.arrival.as_secs().to_bits());
            }
        }
    }

    /// The tentpole invariant at engine level: a warm replay of a baseline
    /// log under a perturbed problem is bit-identical to a cold run on that
    /// problem — for every policy, every candidate-row width, and a
    /// perturbation mix covering worsening, improving and mixed deltas
    /// (single link, whole uplink, site span, dropped relay).
    #[test]
    fn warm_replay_is_bit_identical_to_cold_for_every_policy() {
        let grid = random_grid_for(23, 9);
        let root = ClusterId(0);
        let message = MessageSize::from_mib(1);
        let base = BroadcastProblem::from_grid(&grid, root, message);
        let cases: Vec<Vec<Perturbation>> = vec![
            vec![Perturbation::DegradeLink {
                from: ClusterId(3),
                to: ClusterId(11),
                factor: 4.0,
            }],
            vec![Perturbation::DegradeUplink {
                cluster: ClusterId(7),
                factor: 2.5,
            }],
            // Improving: forces the checked mode (and divergence) for the
            // minimising policies too.
            vec![Perturbation::DegradeLink {
                from: ClusterId(0),
                to: ClusterId(1),
                factor: 0.25,
            }],
            vec![Perturbation::DegradeSite {
                first: ClusterId(4),
                span: 3,
                factor: 8.0,
            }],
            vec![Perturbation::DropRelay {
                cluster: ClusterId(13),
            }],
            // Mixed-direction chain.
            vec![
                Perturbation::DegradeUplink {
                    cluster: ClusterId(2),
                    factor: 3.0,
                },
                Perturbation::DegradeLink {
                    from: ClusterId(5),
                    to: ClusterId(6),
                    factor: 0.5,
                },
            ],
        ];
        for k in [1usize, 2, 4, 16] {
            let mut engine = ScheduleEngine::with_k_best(k);
            for kind in HeuristicKind::all() {
                let (_, log) = engine.schedule_logged(&base, kind);
                for (ci, perturbations) in cases.iter().enumerate() {
                    let mut proot = root;
                    let mut cur = grid.clone();
                    for p in perturbations {
                        if let Some(g) = p.apply(&cur, &mut proot) {
                            cur = g;
                        }
                    }
                    let perturbed = BroadcastProblem::from_grid(&cur, proot, message);
                    let cold = engine.schedule(&perturbed, kind);
                    let warm = engine.reschedule_perturbed(&perturbed, &log, perturbations);
                    assert_events_bit_identical(
                        &warm.events,
                        &cold.events,
                        &format!("{kind} K={k} case={ci}"),
                    );
                    assert_eq!(
                        warm.makespan().as_secs().to_bits(),
                        cold.makespan().as_secs().to_bits(),
                        "{kind} K={k} case={ci}"
                    );
                }
            }
        }
    }

    /// A log whose identity no longer matches the problem (here: the root
    /// moved) is not replayable; the warm entry point must fall back to a
    /// cold run and still return the bit-identical result.
    #[test]
    fn incompatible_log_falls_back_to_cold_run() {
        let grid = random_grid_for(12, 3);
        let message = MessageSize::from_mib(1);
        let base = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
        let perturbations = vec![Perturbation::AlternateRoot { root: ClusterId(5) }];
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let (_, log) = engine.schedule_logged(&base, kind);
            let perturbed = BroadcastProblem::from_grid(&grid, ClusterId(5), message);
            let cold = engine.schedule(&perturbed, kind);
            let warm = engine.reschedule_perturbed(&perturbed, &log, &perturbations);
            assert_events_bit_identical(&warm.events, &cold.events, kind.name());
        }
    }

    /// An unperturbed replay is a pure prefix replay: every commit verbatim,
    /// nothing repaired, nothing recomputed.
    #[cfg(feature = "telemetry")]
    #[test]
    fn clean_replay_replays_every_commit_verbatim() {
        let grid = random_grid_for(17, 21);
        let message = MessageSize::from_mib(1);
        let base = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let (_, log) = engine.schedule_logged(&base, kind);
            engine.take_telemetry();
            let warm = engine.reschedule_perturbed(&base, &log, &[]);
            let t = engine.take_telemetry();
            assert_eq!(t.replayed_commits, warm.events.len() as u64, "{kind}");
            assert_eq!(t.repaired_commits, 0, "{kind}");
            assert_eq!(t.recomputed_commits, 0, "{kind}");
        }
    }

    /// Deletes `failed`'s row and column from `problem` with the monotone
    /// cluster-id remap (ids above `failed` shift down by one).
    fn reduced_excluding(problem: &BroadcastProblem, failed: ClusterId) -> BroadcastProblem {
        use gridcast_topology::SquareMatrix;
        let n = problem.num_clusters();
        let keep: Vec<usize> = (0..n).filter(|&c| c != failed.index()).collect();
        let m = keep.len();
        let mut latency = SquareMatrix::filled(m, Time::ZERO);
        let mut gap = SquareMatrix::filled(m, Time::ZERO);
        let mut intra = Vec::with_capacity(m);
        for (i, &a) in keep.iter().enumerate() {
            intra.push(problem.intra_time(ClusterId(a)));
            for (j, &b) in keep.iter().enumerate() {
                latency[(i, j)] = problem.latency(ClusterId(a), ClusterId(b));
                gap[(i, j)] = problem.gap(ClusterId(a), ClusterId(b));
            }
        }
        let root = keep
            .iter()
            .position(|&c| c == problem.root.index())
            .expect("root survives");
        BroadcastProblem::from_parts(ClusterId(root), problem.message, latency, gap, intra)
    }

    /// Conformance contract of the warm-start entry point: with an empty
    /// committed prefix and `resume_at == 0`, `reschedule_excluding` is
    /// bit-identical (modulo the monotone id remap) to a cold engine run on
    /// the reduced problem with the failed cluster deleted — for every
    /// heuristic and every possible failed cluster.
    #[test]
    fn reschedule_excluding_matches_cold_run_on_reduced_problem() {
        for (clusters, seed) in [(9usize, 11u64), (17, 23)] {
            let problem = random_problem(clusters, seed);
            let mut engine = ScheduleEngine::new();
            for kind in HeuristicKind::all() {
                for f in 1..clusters {
                    let failed = ClusterId(f);
                    let warm = engine.reschedule_excluding(&problem, kind, failed, &[], Time::ZERO);
                    let reduced = reduced_excluding(&problem, failed);
                    let cold = engine.schedule(&reduced, kind);
                    assert!(cold.validate(&reduced).is_ok());
                    let remap = |c: ClusterId| {
                        if c.index() < f {
                            c.index()
                        } else {
                            c.index() + 1
                        }
                    };
                    assert_eq!(warm.events.len(), cold.events.len(), "{kind} failed={f}");
                    for (w, c) in warm.events.iter().zip(&cold.events) {
                        assert_eq!(w.sender.index(), remap(c.sender), "{kind} failed={f}");
                        assert_eq!(w.receiver.index(), remap(c.receiver), "{kind} failed={f}");
                        assert_eq!(
                            w.start.as_secs().to_bits(),
                            c.start.as_secs().to_bits(),
                            "{kind} failed={f}"
                        );
                        assert_eq!(
                            w.arrival.as_secs().to_bits(),
                            c.arrival.as_secs().to_bits(),
                            "{kind} failed={f}"
                        );
                    }
                    assert_eq!(
                        warm.makespan_excluding(failed).as_secs().to_bits(),
                        cold.makespan().as_secs().to_bits(),
                        "{kind} failed={f}"
                    );
                }
            }
        }
    }

    /// Every surviving cluster is covered exactly once by the spliced
    /// schedule, repair sends start no earlier than `resume_at`, causality
    /// holds across the splice boundary, and the failed cluster appears in
    /// no repair event.
    #[test]
    fn reschedule_excluding_splices_consistent_repairs() {
        let problem = random_problem(14, 7);
        let mut engine = ScheduleEngine::new();
        for kind in HeuristicKind::all() {
            let full = engine.schedule(&problem, kind);
            // Crash a relay (an interior sender) at the median arrival time.
            let mut arrivals: Vec<Time> = full.events.iter().map(|e| e.arrival).collect();
            arrivals.sort();
            let crash_at = arrivals[arrivals.len() / 2];
            let failed = full
                .events
                .iter()
                .map(|e| e.sender)
                .find(|&s| s != problem.root)
                .unwrap_or(full.events.last().unwrap().receiver);
            let committed: Vec<ScheduleEvent> = full
                .events
                .iter()
                .copied()
                .filter(|e| e.arrival <= crash_at)
                .collect();
            let n_committed = committed.len();
            let spliced = engine.reschedule_excluding(&problem, kind, failed, &committed, crash_at);
            // The committed prefix is preserved verbatim.
            assert_eq!(&spliced.events[..n_committed], &committed[..], "{kind}");
            let mut received = vec![0usize; problem.num_clusters()];
            let mut ready = vec![Time::INFINITY; problem.num_clusters()];
            ready[problem.root.index()] = Time::ZERO;
            for (idx, e) in spliced.events.iter().enumerate() {
                if idx >= n_committed {
                    assert_ne!(e.sender, failed, "{kind}: dead cluster transmits");
                    assert_ne!(e.receiver, failed, "{kind}: repair delivers to the dead");
                    assert!(
                        e.start >= crash_at,
                        "{kind}: repair starts before detection"
                    );
                }
                assert!(
                    ready[e.sender.index()].is_finite() && e.start >= ready[e.sender.index()],
                    "{kind}: causality violated at event {idx}"
                );
                received[e.receiver.index()] += 1;
                ready[e.receiver.index()] = e.arrival;
            }
            for (c, &count) in received.iter().enumerate() {
                if c == problem.root.index() {
                    assert_eq!(count, 0, "{kind}");
                } else if c == failed.index() {
                    // The prefix may have delivered to the relay before it
                    // died; the repair never does (asserted above).
                    assert!(count <= 1, "{kind}");
                } else {
                    assert_eq!(count, 1, "{kind}: cluster {c} coverage");
                }
            }
        }
    }

    /// The acceptance scenario: when a relay dies mid-broadcast after
    /// delivering to part of its subtree, resplicing onto the surviving
    /// prefix strictly beats a naive from-scratch restart at the crash
    /// instant — the survivors it already fed act as extra repair senders.
    #[test]
    fn resplice_strictly_beats_naive_restart() {
        let problem = random_problem(20, 5);
        let mut engine = ScheduleEngine::new();
        let mut strict_wins = 0usize;
        for kind in HeuristicKind::all() {
            let full = engine.schedule(&problem, kind);
            let Some(relay) = full
                .events
                .iter()
                .map(|e| e.sender)
                .find(|&s| s != problem.root)
            else {
                continue;
            };
            // Crash right after the relay's first delivery completes, so at
            // least one of its children survives holding the message.
            let crash_at = full
                .events
                .iter()
                .find(|e| e.sender == relay)
                .expect("relay sends")
                .arrival;
            let committed: Vec<ScheduleEvent> = full
                .events
                .iter()
                .copied()
                .filter(|e| e.arrival <= crash_at)
                .collect();
            assert!(
                committed.iter().any(|e| e.sender != problem.root),
                "{kind}: prefix must contain a relay delivery"
            );
            let resplice = engine
                .reschedule_excluding(&problem, kind, relay, &committed, crash_at)
                .makespan_excluding(relay);
            let naive = engine
                .reschedule_excluding(&problem, kind, relay, &[], crash_at)
                .makespan_excluding(relay);
            assert!(
                resplice <= naive,
                "{kind}: resplice {resplice} worse than naive restart {naive}"
            );
            if resplice < naive {
                strict_wins += 1;
            }
        }
        assert!(
            strict_wins > 0,
            "resplice never strictly beat the naive restart on any heuristic"
        );
    }

    #[test]
    fn engine_reuse_is_deterministic() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(12, 3);
        let first = engine.schedule(&p, HeuristicKind::EcefLaMax);
        // Interleave other problems and heuristics, then repeat.
        let q = random_problem(30, 4);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&q, kind);
            assert!(s.validate(&q).is_ok(), "{kind}");
        }
        let second = engine.schedule(&p, HeuristicKind::EcefLaMax);
        assert_eq!(first, second);
    }

    #[test]
    fn makespan_matches_schedule() {
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 5, 17, 40] {
            let p = random_problem(clusters, clusters as u64);
            for kind in HeuristicKind::all() {
                let schedule = engine.schedule(&p, kind);
                let fast = engine.makespan(&p, kind);
                assert_eq!(schedule.makespan(), fast, "{kind} on {clusters}");
            }
        }
    }

    #[test]
    fn schedule_all_covers_every_kind_in_order() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(9, 1);
        let kinds = HeuristicKind::all();
        let schedules = engine.schedule_all(&p, &kinds);
        assert_eq!(schedules.len(), kinds.len());
        for (kind, schedule) in kinds.iter().zip(&schedules) {
            assert_eq!(schedule.heuristic, kind.name());
            assert!(schedule.validate(&p).is_ok());
        }
        // The batched buffer variant agrees.
        let mut buffer = Vec::new();
        engine.schedule_all_into(&p, &kinds, &mut buffer);
        assert_eq!(buffer, schedules);
        let mut spans = Vec::new();
        engine.makespans_into(&p, &kinds, &mut spans);
        let expected: Vec<_> = schedules.iter().map(|s| s.makespan()).collect();
        assert_eq!(spans, expected);
    }

    #[test]
    fn sharded_batches_are_bit_identical_to_sequential() {
        let kinds = HeuristicKind::all();
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 7, 33, 80] {
            let p = random_problem(clusters, 1000 + clusters as u64);
            let sequential = engine.schedule_all(&p, &kinds);
            let sharded = schedule_all_sharded(&p, &kinds);
            assert_eq!(sequential, sharded, "{clusters} clusters");
            let spans = makespans_sharded(&p, &kinds);
            let expected: Vec<_> = sequential.iter().map(|s| s.makespan()).collect();
            assert!(
                spans
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| a.as_secs().to_bits() == b.as_secs().to_bits()),
                "makespans diverge at {clusters} clusters"
            );
        }
    }

    #[test]
    fn candidate_row_width_is_a_pure_performance_knob() {
        // Schedules are byte-identical for any K ≥ 1: the row head is exact
        // between commits and the rescan fallback rebuilds exact rows, so
        // shrinking or growing the row only moves work between repairs and
        // rescans. This is what licenses the engine_scaling K sweep.
        let mut reference = ScheduleEngine::new();
        assert_eq!(reference.k_best_for(64), adaptive_k_best(64));
        assert_eq!(adaptive_k_best(100_000), 8);
        assert!(adaptive_k_best(100_000) <= DEFAULT_K_BEST);
        // The per-policy table is ordered: Static ≤ Gradual ≤ Steep at every
        // size, and the Steep column is `adaptive_k_best` itself.
        for n in [1usize, 100, 193, 257, 513, 769, 1000, 100_000] {
            let widths = [
                adaptive_k_best_for(RowDecay::Static, n),
                adaptive_k_best_for(RowDecay::Gradual, n),
                adaptive_k_best_for(RowDecay::Steep, n),
            ];
            assert!(widths[0] >= 1 && widths[0] <= widths[1] && widths[1] <= widths[2]);
            assert_eq!(widths[2], adaptive_k_best(n));
        }
        for clusters in [2usize, 13, 48, 96] {
            let p = random_problem(clusters, 7000 + clusters as u64);
            for k in [1usize, 2, 8, 32] {
                let mut probe = ScheduleEngine::with_k_best(k);
                assert_eq!(probe.k_best_for(clusters), k);
                for kind in HeuristicKind::all() {
                    let a = reference.schedule(&p, kind);
                    let b = probe.schedule(&p, kind);
                    assert_eq!(a, b, "{kind} diverges at K={k} on {clusters} clusters");
                    for (x, y) in a.events.iter().zip(&b.events) {
                        assert_eq!(x.start.as_secs().to_bits(), y.start.as_secs().to_bits());
                        assert_eq!(x.arrival.as_secs().to_bits(), y.arrival.as_secs().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn shared_read_paths_are_sync_and_engines_are_send() {
        // The what-if worker pool shares `&Grid`/`&BroadcastProblem` across
        // scoped threads and moves warm engines into workers; this pins the
        // auto-trait surface those pools rely on (a policy gaining an
        // un-Send/un-Sync field would fail to compile here first).
        fn shared<T: Sync + Send>() {}
        fn movable<T: Send>() {}
        shared::<gridcast_topology::Grid>();
        shared::<BroadcastProblem>();
        shared::<Schedule>();
        shared::<EdgeCosts>();
        shared::<TransferSet>();
        movable::<ScheduleEngine>();
    }

    #[test]
    fn uniform_edge_costs_reproduce_the_plain_path_bit_for_bit() {
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 9, 33] {
            let p = random_problem(clusters, 100 + clusters as u64);
            let costs = EdgeCosts::uniform(&p);
            for kind in HeuristicKind::all() {
                let plain = engine.schedule(&p, kind);
                let costed = engine.schedule_costed(&p, &costs, kind);
                assert_eq!(plain, costed, "{kind} on {clusters} clusters");
                for (a, b) in plain.events.iter().zip(&costed.events) {
                    assert_eq!(a.start.as_secs().to_bits(), b.start.as_secs().to_bits());
                    assert_eq!(a.arrival.as_secs().to_bits(), b.arrival.as_secs().to_bits());
                }
            }
        }
    }

    #[test]
    fn per_edge_costs_change_committed_timings() {
        let p = random_problem(6, 42);
        // Double every gap: the committed schedule must slow down accordingly.
        let n = p.num_clusters();
        let mut costs = EdgeCosts::uniform(&p);
        for s in 0..n {
            for r in 0..n {
                costs.gap[s * n + r] = costs.gap[s * n + r] * 2.0;
            }
        }
        let mut engine = ScheduleEngine::new();
        let plain = engine.schedule(&p, HeuristicKind::Ecef);
        let costed = engine.schedule_costed(&p, &costs, HeuristicKind::Ecef);
        assert!(costed.makespan() > plain.makespan());
    }

    #[test]
    fn transfer_scheduler_serialises_interfaces_and_respects_gap_sums() {
        // Three clusters, two transfers sharing cluster 0's interface: they
        // must not overlap, and the second starts when the first's gap ends.
        let mut set = TransferSet::new(3);
        let mk = |from: usize, to: usize, gap_ms: f64, lat_ms: f64| Transfer {
            from: ClusterId(from),
            to: ClusterId(to),
            payload: MessageSize::from_kib(1),
            gap: Time::from_millis(gap_ms),
            latency: Time::from_millis(lat_ms),
        };
        set.push(mk(0, 1, 10.0, 1.0));
        set.push(mk(0, 2, 10.0, 5.0));
        let mut engine = ScheduleEngine::new();
        let schedule = engine.schedule_transfers(&set);
        assert_eq!(schedule.transfers.len(), 2);
        // Earliest completion first: 0→1 (11 ms) before 0→2 (15 ms).
        assert_eq!(schedule.transfers[0].to, ClusterId(1));
        assert_eq!(schedule.transfers[1].start, Time::from_millis(10.0));
        assert_eq!(schedule.transfers[1].arrival, Time::from_millis(25.0));
        assert_eq!(schedule.interface_free[0], Time::from_millis(20.0));
        // Receivers' interfaces were occupied too.
        assert_eq!(schedule.interface_free[1], Time::from_millis(10.0));
        assert_eq!(schedule.last_arrival[1], Time::from_millis(11.0));
        let local = [Time::from_millis(3.0), Time::ZERO, Time::ZERO];
        assert_eq!(
            schedule.makespan_with_local(&local),
            Time::from_millis(25.0)
        );
    }

    #[test]
    fn transfer_scheduler_is_deterministic_across_insertion_orders() {
        let p = random_problem(8, 7);
        let n = p.num_clusters();
        let mut forward = TransferSet::new(n);
        let mut reversed = Vec::new();
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    continue;
                }
                let t = Transfer {
                    from: ClusterId(s),
                    to: ClusterId(r),
                    payload: p.message,
                    gap: p.gap(ClusterId(s), ClusterId(r)),
                    latency: p.latency(ClusterId(s), ClusterId(r)),
                };
                forward.push(t);
                reversed.push(t);
            }
        }
        let mut backward = TransferSet::new(n);
        for t in reversed.into_iter().rev() {
            backward.push(t);
        }
        let mut engine = ScheduleEngine::new();
        let a = engine.schedule_transfers(&forward);
        let b = engine.schedule_transfers(&backward);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.interface_free, b.interface_free);
    }

    #[test]
    fn transfer_heap_is_byte_identical_to_the_quadratic_oracle() {
        // Mixed payload sizes on a random grid: the lazy-invalidation heap
        // must reproduce the O(T²) oracle exactly — same commit order, same
        // float bit patterns.
        for clusters in [2usize, 5, 11, 23] {
            let p = random_problem(clusters, 300 + clusters as u64);
            let mut set = TransferSet::new(clusters);
            for s in 0..clusters {
                for r in 0..clusters {
                    if s == r {
                        continue;
                    }
                    let payload = MessageSize::from_kib(1 + ((s * 7 + r * 3) % 64) as u64);
                    set.push(Transfer {
                        from: ClusterId(s),
                        to: ClusterId(r),
                        payload,
                        gap: p.gap(ClusterId(s), ClusterId(r)) * (1.0 + (r % 5) as f64 * 0.1),
                        latency: p.latency(ClusterId(s), ClusterId(r)),
                    });
                }
            }
            let mut engine = ScheduleEngine::new();
            let fast = engine.schedule_transfers(&set);
            let oracle = engine.schedule_transfers_quadratic(&set);
            assert_eq!(fast.transfers.len(), oracle.transfers.len());
            for (a, b) in fast.transfers.iter().zip(&oracle.transfers) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.start.as_secs().to_bits(), b.start.as_secs().to_bits());
                assert_eq!(a.arrival.as_secs().to_bits(), b.arrival.as_secs().to_bits());
            }
            assert_eq!(fast.interface_free, oracle.interface_free);
            assert_eq!(fast.last_arrival, oracle.last_arrival);
        }
    }

    #[test]
    fn release_times_gate_the_exchange_and_both_paths_agree() {
        let mut set = TransferSet::new(3);
        let mk = |from: usize, to: usize, gap_ms: f64, lat_ms: f64| Transfer {
            from: ClusterId(from),
            to: ClusterId(to),
            payload: MessageSize::from_kib(1),
            gap: Time::from_millis(gap_ms),
            latency: Time::from_millis(lat_ms),
        };
        set.push(mk(0, 1, 10.0, 1.0));
        set.push(mk(2, 1, 4.0, 1.0));
        let release = [Time::from_millis(50.0), Time::ZERO, Time::ZERO];
        let mut engine = ScheduleEngine::new();
        let fast = engine.schedule_transfers_from(&set, &release);
        let oracle = engine.schedule_transfers_quadratic_from(&set, &release);
        assert_eq!(fast, oracle);
        // Cluster 2 is free immediately; cluster 0's send waits for its
        // release.
        assert_eq!(fast.transfers[0].from, ClusterId(2));
        assert_eq!(fast.transfers[0].start, Time::ZERO);
        assert_eq!(fast.transfers[1].from, ClusterId(0));
        assert_eq!(fast.transfers[1].start, Time::from_millis(50.0));
    }

    #[test]
    fn events_accessor_exposes_last_run() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(6, 9);
        let schedule = engine.schedule(&p, HeuristicKind::Fef);
        assert_eq!(engine.events(), schedule.events.as_slice());
    }

    #[test]
    fn two_cluster_problems_work() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(2, 5);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&p, kind);
            assert_eq!(s.num_transfers(), 1, "{kind}");
        }
    }

    #[test]
    fn lookahead_workspace_rows_and_cursors() {
        let mut ws = LookaheadWorkspace::default();
        let vals = [5.0, 1.0, 3.0];
        ws.build_rows(3, false, |_, k| Time::from_millis(vals[k]));
        // Ascending by key: 1 (1ms), 2 (3ms), 0 (5ms) for every row.
        assert_eq!(ws.first_alive(0, |_| true), Some(1));
        // Rejections advance the cursor permanently.
        assert_eq!(ws.first_alive(1, |k| k != 1), Some(2));
        assert_eq!(ws.first_alive(1, |_| true), Some(2));
        ws.build_rows(3, true, |_, k| Time::from_millis(vals[k]));
        assert_eq!(ws.first_alive(2, |_| true), Some(0));
        // Exhausted rows yield None.
        assert_eq!(ws.first_alive(0, |_| false), None);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_are_consistent() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(60, 11);
        engine.take_telemetry();
        for kind in HeuristicKind::all() {
            let _ = engine.schedule(&p, kind);
        }
        let t = engine.take_telemetry();
        // 7 heuristics x 59 transfers each.
        assert_eq!(t.rounds, 7 * 59);
        // Every invalidation is resolved exactly one way.
        assert_eq!(
            t.invalidations,
            t.second_best_hits + t.promotions + t.rescans
        );
        // Time-sensitive policies on a 60-cluster grid invalidate plenty, and
        // the runner-up entry must absorb most of it.
        assert!(t.invalidations > 0);
        assert!(
            t.repair_rate() >= 0.5,
            "runner-up repairs only {:.1}% of invalidations",
            t.repair_rate() * 100.0
        );
        // Telemetry resets on take.
        assert_eq!(engine.telemetry(), EngineTelemetry::default());
    }

    /// Conformance suite for the feature-gated batch-shift exchange
    /// scheduler. Its relaxation is selection-order-only: committed timings
    /// use the oracle arithmetic verbatim, so on inputs without float ties
    /// (continuously-distributed gaps and latencies make ties probability ~0)
    /// it must agree with the byte-exact heap to tight relative tolerance.
    #[cfg(feature = "fast-math")]
    mod batch_shift {
        use super::*;
        use proptest::prelude::*;
        use rand::Rng;

        /// Relative-tolerance comparison for committed times. 1e-9 is far
        /// looser than the ulp-level divergence the bound rounding can cause
        /// (~1e-16 relative) and far tighter than any genuine reordering of
        /// non-tied transfers would produce.
        fn rel_close(a: Time, b: Time) -> bool {
            let (a, b) = (a.as_secs(), b.as_secs());
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-9)
        }

        fn assert_conformant(fast: &ExchangeSchedule, oracle: &ExchangeSchedule) {
            assert_eq!(fast.transfers.len(), oracle.transfers.len());
            // Same transfers committed (selection order may differ): compare
            // the per-ordered-pair commit counts.
            let count = |s: &ExchangeSchedule| {
                let mut m = std::collections::BTreeMap::new();
                for t in &s.transfers {
                    *m.entry((t.from.index(), t.to.index())).or_insert(0usize) += 1;
                }
                m
            };
            assert_eq!(count(fast), count(oracle));
            for (a, b) in fast.interface_free.iter().zip(&oracle.interface_free) {
                assert!(rel_close(*a, *b), "interface_free diverged: {a} vs {b}");
            }
            for (a, b) in fast.last_arrival.iter().zip(&oracle.last_arrival) {
                assert!(rel_close(*a, *b), "last_arrival diverged: {a} vs {b}");
            }
        }

        #[test]
        fn dense_all_to_all_matches_the_heap() {
            // The workload the batch-shift path exists for: every ordered
            // pair transfers, so a transfer-keyed heap stales Θ(n) entries
            // per commit while cluster keys re-key in O(1).
            use rand::SeedableRng;
            for (clusters, seed) in [(8usize, 0u64), (16, 1), (24, 2)] {
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut set = TransferSet::new(clusters);
                for s in 0..clusters {
                    for r in 0..clusters {
                        if s == r {
                            continue;
                        }
                        set.push(Transfer {
                            from: ClusterId(s),
                            to: ClusterId(r),
                            payload: MessageSize::from_kib(1 + rng.gen_range_u64(0, 512)),
                            gap: Time::from_millis(0.01 + 50.0 * rng.gen_f64()),
                            latency: Time::from_millis(0.01 + 100.0 * rng.gen_f64()),
                        });
                    }
                }
                let mut engine = ScheduleEngine::new();
                let fast = engine.schedule_transfers_batch_shift(&set);
                let oracle = engine.schedule_transfers(&set);
                assert_conformant(&fast, &oracle);
                let local = vec![Time::from_millis(1.0); clusters];
                assert!(rel_close(
                    fast.makespan_with_local(&local),
                    oracle.makespan_with_local(&local),
                ));
            }
        }

        proptest! {
            /// Random transfer sets — duplicate pairs allowed, random
            /// release times included — stay conformant with the heap.
            #[test]
            fn random_sets_are_conformant(
                clusters in 2usize..=48,
                transfers in 1usize..=256,
                seed in proptest::prelude::any::<u64>(),
                release_sel in 0u8..=1,
            ) {
                use rand::SeedableRng;
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut set = TransferSet::new(clusters);
                for _ in 0..transfers {
                    let from = rng.gen_range_u64(0, clusters as u64) as usize;
                    let mut to = rng.gen_range_u64(0, clusters as u64 - 1) as usize;
                    if to >= from {
                        to += 1;
                    }
                    set.push(Transfer {
                        from: ClusterId(from),
                        to: ClusterId(to),
                        payload: MessageSize::from_kib(1 + rng.gen_range_u64(0, 512)),
                        gap: Time::from_millis(0.01 + 50.0 * rng.gen_f64()),
                        latency: Time::from_millis(0.01 + 100.0 * rng.gen_f64()),
                    });
                }
                let release: Vec<Time> = (0..clusters)
                    .map(|_| if release_sel == 1 {
                        Time::from_millis(20.0 * rng.gen_f64())
                    } else {
                        Time::ZERO
                    })
                    .collect();
                let mut engine = ScheduleEngine::new();
                let fast = engine.schedule_transfers_batch_shift_from(&set, &release);
                let oracle = engine.schedule_transfers_from(&set, &release);
                prop_assert_eq!(fast.transfers.len(), oracle.transfers.len());
                for (a, b) in fast.interface_free.iter().zip(&oracle.interface_free) {
                    prop_assert!(rel_close(*a, *b), "interface_free diverged: {} vs {}", a, b);
                }
                for (a, b) in fast.last_arrival.iter().zip(&oracle.last_arrival) {
                    prop_assert!(rel_close(*a, *b), "last_arrival diverged: {} vs {}", a, b);
                }
                let local = vec![Time::ZERO; clusters];
                prop_assert!(rel_close(
                    fast.makespan_with_local(&local),
                    oracle.makespan_with_local(&local),
                ));
            }
        }
    }
}
