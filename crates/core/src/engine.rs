//! The pattern-agnostic scheduling engine behind every heuristic.
//!
//! Every heuristic of the paper instantiates the same A/B-set formalism: pick a
//! (sender ∈ A, receiver ∈ B) pair, commit the transfer, repeat. The seed
//! implementation re-ran that loop — including a full `O(|A|·|B|)` rescan of
//! every candidate pair — inside each heuristic. [`ScheduleEngine`] extracts the
//! loop once and reduces a heuristic to a [`SelectionPolicy`]: a scoring rule
//! for candidate edges plus an optional receiver-level lookahead hook.
//!
//! ## Incremental candidate maintenance
//!
//! The engine maintains, for every receiver still in B, the best known sender
//! (lexicographically smallest `(edge score, sender id)` over A). After a
//! commit only two things change:
//!
//! * the committed **receiver** joined A — it is offered as a candidate sender
//!   to every remaining receiver in `O(1)` each;
//! * the committed **sender**'s ready time grew — receivers whose cached best
//!   sender is that cluster are rescanned. The rescan walks senders in ready
//!   order through a lazily-invalidated **binary heap** of ready times and
//!   stops as soon as the next ready time exceeds the best score found, which
//!   is sound for every time-sensitive policy because an edge score is bounded
//!   below by its sender's ready time.
//!
//! Policies whose scores do not depend on ready times (Flat Tree, FEF) declare
//! [`SelectionPolicy::sender_time_sensitive`] `false` and never trigger
//! rescans. Together with the sorted-lookahead workspaces of the ECEF policies
//! this brings a full schedule to `O(n² log n)` from the seed's `O(n³)` (and
//! worse with lookahead).
//!
//! All engine buffers are reused across rounds, heuristics and problems: after
//! warm-up, a call to [`ScheduleEngine::makespan`] performs **zero heap
//! allocations** (asserted by `tests/alloc_probe.rs`).
//!
//! Tie-breaking replicates the seed heuristics exactly — byte-identical
//! schedules are asserted by `tests/proptest_invariants.rs` — so the engine is
//! a drop-in replacement, not a numerical approximation.
//!
//! One theoretical corner is out of scope of that guarantee: for the lookahead
//! ECEF variants the engine resolves each receiver's best sender on the edge
//! score alone and adds `F_j` afterwards, while the original loop compared the
//! rounded sums `fl((RT_i + g_ij + L_ij) + F_j)`. The selected *objective
//! value* is always identical (rounding is monotone), but if two senders'
//! distinct edge scores are absorbed to the exact same sum by a much larger
//! `F_j` (a sub-ulp coincidence that requires `|e₁−e₂| < ulp(e+F)`), the two
//! implementations may pick different — equally scoring — senders. Continuous
//! random instances hit this with probability ~0, and exact score ties (the
//! case that actually occurs, e.g. symmetric grids) break identically on both
//! paths.

use crate::heuristics::HeuristicKind;
use crate::{BroadcastProblem, Schedule, ScheduleEvent};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Read-only view of the engine state handed to policies.
#[derive(Clone, Copy)]
pub struct EngineView<'a> {
    problem: &'a BroadcastProblem,
    in_a: &'a [bool],
    ready: &'a [Time],
}

impl<'a> EngineView<'a> {
    /// The problem being scheduled.
    #[inline]
    pub fn problem(&self) -> &'a BroadcastProblem {
        self.problem
    }

    /// Ready time `RT_i` of a cluster in set A.
    #[inline]
    pub fn ready_time(&self, cluster: ClusterId) -> Time {
        self.ready[cluster.index()]
    }

    /// Whether the cluster is in set A (holds the message).
    #[inline]
    pub fn is_in_a(&self, cluster: ClusterId) -> bool {
        self.in_a[cluster.index()]
    }

    /// Whether the cluster is still in set B (waiting).
    #[inline]
    pub fn in_b(&self, cluster: ClusterId) -> bool {
        !self.in_a[cluster.index()]
    }

    /// `RT_i + g_ij + L_ij`: completion estimate of a hypothetical transfer.
    #[inline]
    pub fn completion_estimate(&self, sender: ClusterId, receiver: ClusterId) -> Time {
        self.ready_time(sender) + self.problem.transfer(sender, receiver)
    }
}

/// Direction of the cross-receiver objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Pick the receiver with the smallest objective (ECEF family, FEF).
    Minimize,
    /// Pick the receiver with the largest objective (BottomUp's max-min rule).
    Maximize,
}

/// Tie-breaking across receivers whose objectives compare equal.
///
/// The variants reproduce the iteration orders of the original nested-loop
/// implementations, which is what makes engine schedules byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the smallest receiver id, then the smallest sender id (the
    /// receiver-outer/sender-inner loops of the ECEF family and BottomUp).
    ReceiverThenSender,
    /// Prefer the smallest sender id, then the smallest receiver id (FEF's
    /// sender-outer/receiver-inner loop).
    SenderThenReceiver,
}

/// A scheduling heuristic reduced to its selection rule.
///
/// Per round the engine selects the receiver optimising
/// `best_over_senders(edge_score) + receiver_bias`, paired with the sender
/// achieving that best edge score (smallest score, then smallest sender id).
pub trait SelectionPolicy {
    /// Display name recorded in produced [`Schedule`]s.
    fn name(&self) -> &str;

    /// Called once before each schedule; (re)build per-problem workspaces.
    fn reset(&mut self, problem: &BroadcastProblem) {
        let _ = problem;
    }

    /// Score of the candidate edge `sender → receiver`; lower is better.
    ///
    /// Time-sensitive policies must guarantee
    /// `edge_score(s, r) >= view.ready_time(s)` — the engine's pruned rescans
    /// rely on that bound.
    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time;

    /// Receiver-level additive term (the lookahead `F_j`); defaults to zero.
    fn receiver_bias(&mut self, view: &EngineView<'_>, receiver: ClusterId) -> Time {
        let _ = (view, receiver);
        Time::ZERO
    }

    /// Whether the cross-receiver objective is minimised or maximised.
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    /// Tie-break rule across receivers with equal objectives.
    fn tie_break(&self) -> TieBreak {
        TieBreak::ReceiverThenSender
    }

    /// Whether [`SelectionPolicy::edge_score`] depends on sender ready times.
    /// When `false` the engine skips ready-time invalidation entirely.
    fn sender_time_sensitive(&self) -> bool {
        true
    }

    /// Notification that `sender → receiver` was committed (B shrank by
    /// `receiver`); policies use it to advance incremental lookahead state.
    fn on_commit(&mut self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) {
        let _ = (view, sender, receiver);
    }
}

/// Candidate `(objective, receiver, sender)` comparison.
fn candidate_improves(
    objective: Objective,
    tie: TieBreak,
    new: (Time, u32, u32),
    cur: (Time, u32, u32),
) -> bool {
    use std::cmp::Ordering;
    let ord = match objective {
        Objective::Minimize => new.0.cmp(&cur.0),
        Objective::Maximize => cur.0.cmp(&new.0),
    };
    match ord {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => match tie {
            TieBreak::ReceiverThenSender => (new.1, new.2) < (cur.1, cur.2),
            TieBreak::SenderThenReceiver => (new.2, new.1) < (cur.2, cur.1),
        },
    }
}

/// Reusable buffers of one engine; split from the policy store so the two can
/// be borrowed independently.
#[derive(Debug, Default)]
struct EngineState {
    in_a: Vec<bool>,
    ready: Vec<Time>,
    events: Vec<ScheduleEvent>,
    /// Clusters still in B (unordered; positions tracked by `recv_pos`).
    receivers: Vec<u32>,
    recv_pos: Vec<u32>,
    /// Per-receiver cached lexicographic minimum of `(edge_score, sender id)`.
    best_sender: Vec<u32>,
    best_score: Vec<Time>,
    /// Min-heap of `(ready time, cluster)` entries for senders in A; entries
    /// are lazily invalidated (valid iff the stored time equals the cluster's
    /// current ready time).
    heap: BinaryHeap<Reverse<(Time, u32)>>,
    /// Scratch for valid heap entries popped during a pruned rescan.
    scratch: Vec<(Time, u32)>,
    /// Scratch for makespan computation without building a [`Schedule`].
    arrival: Vec<Time>,
    busy: Vec<Time>,
}

impl EngineState {
    fn reset(&mut self, problem: &BroadcastProblem) {
        let n = problem.num_clusters();
        let root = problem.root.index();
        self.in_a.clear();
        self.in_a.resize(n, false);
        self.in_a[root] = true;
        self.ready.clear();
        self.ready.resize(n, Time::ZERO);
        self.events.clear();
        self.events.reserve(n.saturating_sub(1));
        self.receivers.clear();
        self.recv_pos.clear();
        self.recv_pos.resize(n, u32::MAX);
        for c in 0..n {
            if c != root {
                self.recv_pos[c] = self.receivers.len() as u32;
                self.receivers.push(c as u32);
            }
        }
        self.best_sender.clear();
        self.best_sender.resize(n, u32::MAX);
        self.best_score.clear();
        self.best_score.resize(n, Time::INFINITY);
        self.heap.clear();
        self.heap.reserve(2 * n + 2);
        self.heap.push(Reverse((Time::ZERO, root as u32)));
        self.scratch.clear();
        self.scratch.reserve(n);
    }

    fn init_caches(&mut self, problem: &BroadcastProblem, policy: &mut dyn SelectionPolicy) {
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
        };
        let root = problem.root;
        for &r in &self.receivers {
            self.best_sender[r as usize] = root.index() as u32;
            self.best_score[r as usize] = policy.edge_score(&view, root, ClusterId(r as usize));
        }
    }

    fn select(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
    ) -> (ClusterId, ClusterId) {
        let objective = policy.objective();
        let tie = policy.tie_break();
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
        };
        let mut best: Option<(Time, u32, u32)> = None;
        for i in 0..self.receivers.len() {
            let r = self.receivers[i];
            let bias = policy.receiver_bias(&view, ClusterId(r as usize));
            let candidate = (
                self.best_score[r as usize] + bias,
                r,
                self.best_sender[r as usize],
            );
            if best.is_none_or(|cur| candidate_improves(objective, tie, candidate, cur)) {
                best = Some(candidate);
            }
        }
        let (_, r, s) = best.expect("set B is non-empty while the schedule is incomplete");
        (ClusterId(s as usize), ClusterId(r as usize))
    }

    /// Recomputes the cached best sender of `receiver` by walking A in ready
    /// order through the heap, pruning once the next ready time exceeds the
    /// best score found so far.
    fn rescan(&mut self, problem: &BroadcastProblem, policy: &dyn SelectionPolicy, receiver: u32) {
        let EngineState {
            in_a,
            ready,
            heap,
            scratch,
            best_sender,
            best_score,
            ..
        } = self;
        let view = EngineView {
            problem,
            in_a,
            ready,
        };
        scratch.clear();
        let mut best: Option<(Time, u32)> = None;
        while let Some(&Reverse((t, s))) = heap.peek() {
            if let Some((score, _)) = best {
                if t > score {
                    break;
                }
            }
            heap.pop();
            // Stale entry: the cluster's ready time moved since it was pushed.
            if ready[s as usize] != t || !in_a[s as usize] {
                continue;
            }
            scratch.push((t, s));
            let score =
                policy.edge_score(&view, ClusterId(s as usize), ClusterId(receiver as usize));
            if best.is_none_or(|(bs, bid)| (score, s) < (bs, bid)) {
                best = Some((score, s));
            }
        }
        for &(t, s) in scratch.iter() {
            heap.push(Reverse((t, s)));
        }
        let (score, s) = best.expect("set A is never empty");
        best_score[receiver as usize] = score;
        best_sender[receiver as usize] = s;
    }

    fn commit(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
        sender: ClusterId,
        receiver: ClusterId,
    ) {
        let (s, r) = (sender.index(), receiver.index());
        debug_assert!(self.in_a[s] && !self.in_a[r]);
        let start = self.ready[s];
        let arrival = start + problem.transfer(sender, receiver);
        self.events.push(ScheduleEvent {
            sender,
            receiver,
            start,
            arrival,
        });
        self.ready[s] = start + problem.gap(sender, receiver);
        self.ready[r] = arrival;
        self.in_a[r] = true;
        // Remove the receiver from B (swap-remove keeps the list compact).
        let pos = self.recv_pos[r] as usize;
        let last = *self.receivers.last().expect("receiver is in B");
        self.receivers.swap_remove(pos);
        if pos < self.receivers.len() {
            self.recv_pos[last as usize] = pos as u32;
        }
        self.recv_pos[r] = u32::MAX;
        // Both touched clusters get fresh heap entries; old ones go stale.
        self.heap.push(Reverse((self.ready[s], s as u32)));
        self.heap.push(Reverse((self.ready[r], r as u32)));

        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
        };
        policy.on_commit(&view, sender, receiver);

        // Incremental cache maintenance: the new sender is offered everywhere;
        // receivers that relied on the committed sender are rescanned.
        let sensitive = policy.sender_time_sensitive();
        for i in 0..self.receivers.len() {
            let j = self.receivers[i];
            if sensitive && self.best_sender[j as usize] == s as u32 {
                self.rescan(problem, policy, j);
            } else {
                let view = EngineView {
                    problem,
                    in_a: &self.in_a,
                    ready: &self.ready,
                };
                let score = policy.edge_score(&view, receiver, ClusterId(j as usize));
                if (score, r as u32) < (self.best_score[j as usize], self.best_sender[j as usize]) {
                    self.best_score[j as usize] = score;
                    self.best_sender[j as usize] = r as u32;
                }
            }
        }
    }

    fn run(&mut self, problem: &BroadcastProblem, policy: &mut dyn SelectionPolicy) {
        self.reset(problem);
        policy.reset(problem);
        self.init_caches(problem, policy);
        let n = problem.num_clusters();
        while self.events.len() + 1 < n {
            let (sender, receiver) = self.select(problem, policy);
            self.commit(problem, policy, sender, receiver);
        }
    }

    /// Makespan of the events currently in the buffer, computed exactly like
    /// [`Schedule::from_events`] but without allocating a [`Schedule`].
    fn makespan_of_events(&mut self, problem: &BroadcastProblem) -> Time {
        let n = problem.num_clusters();
        self.arrival.clear();
        self.arrival.resize(n, Time::ZERO);
        self.busy.clear();
        self.busy.resize(n, Time::ZERO);
        for event in &self.events {
            self.arrival[event.receiver.index()] = event.arrival;
            let send_end = event.start + problem.gap(event.sender, event.receiver);
            let cell = &mut self.busy[event.sender.index()];
            *cell = (*cell).max(send_end);
        }
        let mut makespan = Time::ZERO;
        for i in 0..n {
            let coordinator_free = self.arrival[i].max(self.busy[i]);
            makespan = makespan.max(coordinator_free + problem.intra_time(ClusterId(i)));
        }
        makespan
    }
}

/// The reusable, pattern-agnostic scheduling engine.
///
/// One engine owns the A/B bookkeeping buffers and one policy instance per
/// [`HeuristicKind`] (created lazily), so repeated scheduling — Monte-Carlo
/// sweeps, benches, serving many requests — performs no per-round allocations
/// and reuses every buffer across heuristics and problems.
///
/// ```
/// use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
/// use gridcast_plogp::MessageSize;
/// use gridcast_topology::{grid5000_table3, ClusterId};
///
/// let grid = grid5000_table3();
/// let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
/// let mut engine = ScheduleEngine::new();
/// let schedules = engine.schedule_all(&problem, &HeuristicKind::all());
/// assert_eq!(schedules.len(), 7);
/// for s in &schedules {
///     assert!(s.validate(&problem).is_ok());
/// }
/// ```
#[derive(Default)]
pub struct ScheduleEngine {
    state: EngineState,
    policies: [Option<Box<dyn SelectionPolicy>>; HeuristicKind::COUNT],
}

impl ScheduleEngine {
    /// Creates an engine with empty buffers.
    pub fn new() -> Self {
        ScheduleEngine::default()
    }

    /// Schedules `problem` with the built-in policy for `kind`.
    pub fn schedule(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Schedule {
        let ScheduleEngine { state, policies } = self;
        let policy = policies[kind.slot()].get_or_insert_with(|| kind.new_policy());
        state.run(problem, policy.as_mut());
        Schedule::from_events(problem, kind.name(), state.events.clone())
    }

    /// Schedules `problem` with a caller-provided policy.
    pub fn schedule_with(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
    ) -> Schedule {
        self.state.run(problem, policy);
        Schedule::from_events(problem, policy.name().to_owned(), self.state.events.clone())
    }

    /// Makespan of `kind` on `problem` without materialising a [`Schedule`];
    /// allocation-free once the engine is warm.
    pub fn makespan(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Time {
        let ScheduleEngine { state, policies } = self;
        let policy = policies[kind.slot()].get_or_insert_with(|| kind.new_policy());
        state.run(problem, policy.as_mut());
        state.makespan_of_events(problem)
    }

    /// The events of the most recent run, without allocation.
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.state.events
    }

    /// Schedules `problem` with every heuristic in `kinds`, reusing the state
    /// buffers across heuristics. This is the batched entry point used by the
    /// Monte-Carlo runner and the benches.
    pub fn schedule_all(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
    ) -> Vec<Schedule> {
        let mut out = Vec::with_capacity(kinds.len());
        self.schedule_all_into(problem, kinds, &mut out);
        out
    }

    /// Like [`ScheduleEngine::schedule_all`], writing into a caller-owned
    /// buffer (cleared first) so sweeps can reuse the output allocation too.
    pub fn schedule_all_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Schedule>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        for &kind in kinds {
            out.push(self.schedule(problem, kind));
        }
    }

    /// Makespans of every heuristic in `kinds` on `problem`, written into a
    /// caller-owned buffer; allocation-free once the engine is warm.
    pub fn makespans_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        for &kind in kinds {
            out.push(self.makespan(problem, kind));
        }
    }
}

thread_local! {
    static SHARED_ENGINE: RefCell<ScheduleEngine> = RefCell::new(ScheduleEngine::new());
}

/// Runs `f` with this thread's shared engine — the buffer-reusing fast path
/// behind [`HeuristicKind::schedule`] and the [`crate::heuristics::Heuristic`]
/// impls.
pub fn with_shared_engine<R>(f: impl FnOnce(&mut ScheduleEngine) -> R) -> R {
    SHARED_ENGINE.with(|engine| f(&mut engine.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::GridGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    #[test]
    fn engine_reuse_is_deterministic() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(12, 3);
        let first = engine.schedule(&p, HeuristicKind::EcefLaMax);
        // Interleave other problems and heuristics, then repeat.
        let q = random_problem(30, 4);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&q, kind);
            assert!(s.validate(&q).is_ok(), "{kind}");
        }
        let second = engine.schedule(&p, HeuristicKind::EcefLaMax);
        assert_eq!(first, second);
    }

    #[test]
    fn makespan_matches_schedule() {
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 5, 17, 40] {
            let p = random_problem(clusters, clusters as u64);
            for kind in HeuristicKind::all() {
                let schedule = engine.schedule(&p, kind);
                let fast = engine.makespan(&p, kind);
                assert_eq!(schedule.makespan(), fast, "{kind} on {clusters}");
            }
        }
    }

    #[test]
    fn schedule_all_covers_every_kind_in_order() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(9, 1);
        let kinds = HeuristicKind::all();
        let schedules = engine.schedule_all(&p, &kinds);
        assert_eq!(schedules.len(), kinds.len());
        for (kind, schedule) in kinds.iter().zip(&schedules) {
            assert_eq!(schedule.heuristic, kind.name());
            assert!(schedule.validate(&p).is_ok());
        }
        // The batched buffer variant agrees.
        let mut buffer = Vec::new();
        engine.schedule_all_into(&p, &kinds, &mut buffer);
        assert_eq!(buffer, schedules);
        let mut spans = Vec::new();
        engine.makespans_into(&p, &kinds, &mut spans);
        let expected: Vec<_> = schedules.iter().map(|s| s.makespan()).collect();
        assert_eq!(spans, expected);
    }

    #[test]
    fn events_accessor_exposes_last_run() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(6, 9);
        let schedule = engine.schedule(&p, HeuristicKind::Fef);
        assert_eq!(engine.events(), schedule.events.as_slice());
    }

    #[test]
    fn two_cluster_problems_work() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(2, 5);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&p, kind);
            assert_eq!(s.num_transfers(), 1, "{kind}");
        }
    }
}
