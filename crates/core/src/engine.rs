//! The pattern-agnostic scheduling engine behind every heuristic.
//!
//! Every heuristic of the paper instantiates the same A/B-set formalism: pick a
//! (sender ∈ A, receiver ∈ B) pair, commit the transfer, repeat. The seed
//! implementation re-ran that loop — including a full `O(|A|·|B|)` rescan of
//! every candidate pair — inside each heuristic. [`ScheduleEngine`] extracts the
//! loop once and reduces a heuristic to a [`SelectionPolicy`]: a scoring rule
//! for candidate edges plus an optional receiver-level lookahead hook.
//!
//! ## Incremental candidate maintenance
//!
//! The engine maintains, for every receiver still in B, a row of up to
//! [`DEFAULT_K_BEST`] cached sender candidates sorted by `(edge score, sender id)`,
//! plus a **floor** entry bounding every sender outside the row. The row's
//! head is kept *exact* at all times — its stored score always equals the
//! sender's current edge score, and it is the lexicographic minimum over all
//! of A — because the selection must stay byte-identical to the paper's
//! nested loops. The remaining cached scores are *lower bounds* on their
//! senders' current scores. All three invariants lean on the monotonicity
//! contract of [`SelectionPolicy::edge_score`]: a time-sensitive score never
//! *decreases* when the sender's ready time grows.
//!
//! After a commit only two things change:
//!
//! * the committed **receiver** joined A — it is offered as a candidate to
//!   every remaining receiver in `O(K_BEST)` each: inserted into the row at
//!   its sorted position (folding any displaced last entry into the floor) or
//!   tightening the floor directly;
//! * the committed **sender**'s ready time grew — receivers whose cached best
//!   sender is that cluster are *repaired* in `O(K_BEST)`: the head is
//!   refreshed and bubbled to its sorted position, surfacing runners-up until
//!   the head is fresh. A fresh head underruns every cached lower bound, so it
//!   is the exact minimum over the row; if it also beats the floor it is the
//!   global minimum (a **second-best hit** when the old best held on, a
//!   **promotion** when a runner-up took over) and the repair is done. Only
//!   when the whole row deteriorated past the floor does the engine fall back
//!   to a **rescan**.
//!
//! All rescans triggered by one commit share a single pruned walk over the
//! senders in ready order (a sorted array kept incrementally — ready times
//! only grow, so a commit re-sorts with one bubble pass and one insert).
//! Each pending receiver retires from the walk as soon as the next ready time
//! plus its static score offset ([`SelectionPolicy::edge_score_offset`])
//! exceeds its provisional `(K_BEST+1)`-smallest score — sound because an
//! edge score is bounded below by its sender's ready time plus that offset —
//! and leaves with an exact rebuilt row and floor.
//!
//! Policies whose scores do not depend on ready times (Flat Tree, FEF) declare
//! [`SelectionPolicy::sender_time_sensitive`] `false` and never trigger
//! repairs. Together with the shared sorted-lookahead rows of
//! [`LookaheadWorkspace`] this brings a full schedule to `O(n² log n)` from the
//! seed's `O(n³)` (and worse with lookahead), with the rescan term — the
//! remaining super-quadratic contribution — amortised away by the runner-up
//! repairs (`benches/engine_scaling.rs` counts them; on Table-2 grids the
//! repair rate is >99% at 100 clusters and still ~89% at 1000 — see the
//! committed `BENCH_engine_scaling.json`).
//!
//! All engine buffers are reused across rounds, heuristics and problems: after
//! warm-up, a call to [`ScheduleEngine::makespan`] performs **zero heap
//! allocations** (asserted by `tests/alloc_probe.rs`). The
//! [`EngineTelemetry`] counters compile to nothing unless the crate's
//! `telemetry` feature is enabled.
//!
//! Tie-breaking replicates the seed heuristics exactly — byte-identical
//! schedules are asserted by `tests/proptest_invariants.rs` — so the engine is
//! a drop-in replacement, not a numerical approximation.
//!
//! One theoretical corner is out of scope of that guarantee: for the lookahead
//! ECEF variants the engine resolves each receiver's best sender on the edge
//! score alone and adds `F_j` afterwards, while the original loop compared the
//! rounded sums `fl((RT_i + g_ij + L_ij) + F_j)`. The selected *objective
//! value* is always identical (rounding is monotone), but if two senders'
//! distinct edge scores are absorbed to the exact same sum by a much larger
//! `F_j` (a sub-ulp coincidence that requires `|e₁−e₂| < ulp(e+F)`), the two
//! implementations may pick different — equally scoring — senders. Continuous
//! random instances hit this with probability ~0, and exact score ties (the
//! case that actually occurs, e.g. symmetric grids) break identically on both
//! paths.

use crate::heuristics::HeuristicKind;
use crate::{BroadcastProblem, Schedule, ScheduleEvent};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid};
use std::cell::RefCell;

/// Asserts (in debug builds) that a policy score is not NaN.
///
/// [`Time`] forbids NaN at *construction*, but its `Add`/`Sub` operators work
/// on raw `f64` for speed — so `INF − INF` or `0 × INF` arithmetic inside a
/// policy can smuggle a NaN into the engine, where `total_cmp` sorts it
/// *above* `+∞` and silently corrupts the k-best rows (a NaN head would never
/// be displaced). Problems with infinite sentinel edges (e.g.
/// [`ScatterProblem::as_broadcast_problem`](crate::ScatterProblem::as_broadcast_problem))
/// are exactly the inputs that can trip this, so every score entering the
/// candidate cache or the selection scan passes through this check.
#[inline]
fn debug_assert_score_not_nan(score: Time) {
    debug_assert!(
        !score.as_secs().is_nan(),
        "selection produced a NaN score (INF − INF or 0 × INF in a policy?)"
    );
}

/// Sentinel sender id meaning "no cached entry".
const NO_SENDER: u32 = u32::MAX;

/// Default number of cached sender candidates per receiver (the best entry
/// plus `K − 1` runners-up). Small enough that a repair's insertion shuffles
/// stay within a couple of cache lines per row, large enough that most
/// invalidations find their new best among the cached entries instead of
/// falling back to a ready-order rescan (Table-2 repair rate: >99% at 100
/// clusters, ~89% at 1000).
///
/// The row width is a **pure performance knob**: schedules are byte-identical
/// for any `K ≥ 1` (the row head is kept exact and rescans rebuild exact
/// rows), so [`ScheduleEngine::with_k_best`] can probe other widths — the
/// `engine_scaling` bench sweeps K ∈ {8, 16, 32} at 500/1000 clusters and
/// records the per-K repair rates that will decide the adaptive-K question.
pub const DEFAULT_K_BEST: usize = 16;

/// Runtime candidate-row width with the documented default — a newtype so
/// `EngineState` keeps deriving `Default`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KBest(usize);

impl Default for KBest {
    fn default() -> Self {
        KBest(DEFAULT_K_BEST)
    }
}

/// Read-only view of the engine state handed to policies.
#[derive(Clone, Copy)]
pub struct EngineView<'a> {
    problem: &'a BroadcastProblem,
    in_a: &'a [bool],
    ready: &'a [Time],
    /// Flat sender-major copy of `g_ij + L_ij`, prebuilt per run so a
    /// completion estimate costs one memory read instead of two matrix
    /// lookups.
    tx: &'a [Time],
    n: usize,
}

impl<'a> EngineView<'a> {
    /// The problem being scheduled.
    #[inline]
    pub fn problem(&self) -> &'a BroadcastProblem {
        self.problem
    }

    /// Ready time `RT_i` of a cluster in set A.
    #[inline]
    pub fn ready_time(&self, cluster: ClusterId) -> Time {
        self.ready[cluster.index()]
    }

    /// Whether the cluster is in set A (holds the message).
    #[inline]
    pub fn is_in_a(&self, cluster: ClusterId) -> bool {
        self.in_a[cluster.index()]
    }

    /// Whether the cluster is still in set B (waiting).
    #[inline]
    pub fn in_b(&self, cluster: ClusterId) -> bool {
        !self.in_a[cluster.index()]
    }

    /// `RT_i + g_ij + L_ij`: completion estimate of a hypothetical transfer.
    #[inline]
    pub fn completion_estimate(&self, sender: ClusterId, receiver: ClusterId) -> Time {
        self.ready[sender.index()] + self.tx[sender.index() * self.n + receiver.index()]
    }
}

/// Direction of the cross-receiver objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Pick the receiver with the smallest objective (ECEF family, FEF).
    Minimize,
    /// Pick the receiver with the largest objective (BottomUp's max-min rule).
    Maximize,
}

/// Tie-breaking across receivers whose objectives compare equal.
///
/// The variants reproduce the iteration orders of the original nested-loop
/// implementations, which is what makes engine schedules byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TieBreak {
    /// Prefer the smallest receiver id, then the smallest sender id (the
    /// receiver-outer/sender-inner loops of the ECEF family and BottomUp).
    ReceiverThenSender,
    /// Prefer the smallest sender id, then the smallest receiver id (FEF's
    /// sender-outer/receiver-inner loop).
    SenderThenReceiver,
}

/// Flat, cache-friendly per-receiver candidate rows with monotone cursors,
/// owned by the engine and shared by every [`SelectionPolicy`].
///
/// The ECEF lookahead variants need, per receiver `j`, the remaining cluster
/// minimising (or maximising) a static key `g_jk + L_jk (+ T_k)`. Each policy
/// used to carry its own `n × n` row matrix; the engine now owns a single flat
/// buffer that the active policy rebuilds at [`SelectionPolicy::reset`] — one
/// allocation reused across all heuristics, problems and rounds. Row `j`
/// occupies `rows[j·n .. (j+1)·n]` and is sorted by the policy's key; because
/// set B only ever shrinks, a per-receiver cursor that skips departed clusters
/// serves each lookup in amortised `O(1)`.
#[derive(Debug, Default)]
pub struct LookaheadWorkspace {
    rows: Vec<u32>,
    cursor: Vec<u32>,
    /// Scratch of `(key, id)` pairs: keys are computed once per row instead of
    /// `O(log n)` times inside the sort comparator (the matrix lookups, not the
    /// comparisons, dominate the rebuild).
    scratch: Vec<(Time, u32)>,
    stride: usize,
}

impl LookaheadWorkspace {
    /// Rebuilds the rows for an `n`-cluster problem: row `j` holds every
    /// cluster id sorted by `key(j, k)` — ascending, or descending when
    /// `descending` — with ties broken by cluster id for determinism.
    pub fn build_rows(
        &mut self,
        n: usize,
        descending: bool,
        mut key: impl FnMut(usize, usize) -> Time,
    ) {
        self.stride = n;
        self.rows.clear();
        self.rows.reserve(n * n);
        self.cursor.clear();
        self.cursor.resize(n, 0);
        for j in 0..n {
            self.scratch.clear();
            self.scratch.reserve(n);
            for k in 0..n {
                self.scratch.push((key(j, k), k as u32));
            }
            if descending {
                self.scratch
                    .sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            } else {
                self.scratch.sort_unstable();
            }
            self.rows.extend(self.scratch.iter().map(|&(_, k)| k));
        }
    }

    /// First entry of row `j` for which `alive` holds, advancing the cursor
    /// permanently past rejected entries (callers must only reject entries
    /// that can never become alive again — set B only shrinks).
    #[inline]
    pub fn first_alive(&mut self, j: usize, mut alive: impl FnMut(usize) -> bool) -> Option<usize> {
        let row = &self.rows[j * self.stride..(j + 1) * self.stride];
        let cursor = &mut self.cursor[j];
        while (*cursor as usize) < row.len() {
            let k = row[*cursor as usize] as usize;
            if alive(k) {
                return Some(k);
            }
            *cursor += 1;
        }
        None
    }
}

/// Per-edge payload sizes and transfer costs, overriding the uniform-message
/// matrices of a [`BroadcastProblem`] so committed transfers can carry
/// **receiver-specific blocks** — the relayed scatters and pair exchanges of
/// [`patterns`](crate::patterns).
///
/// The broadcast engine prices every edge for the problem's single message
/// size. Personalised patterns break that assumption: a scatter edge carries
/// the receiver's aggregate block (and a relayed edge a whole concatenation of
/// blocks), so `g` must be evaluated per edge, for the payload that edge
/// actually moves. `EdgeCosts` is that evaluation, flat and sender-major like
/// the engine's own `tx` matrix; [`ScheduleEngine::schedule_with_costs`] runs
/// the ordinary round loop against it. With
/// [`EdgeCosts::uniform`] the engine's behaviour — schedules, floating-point
/// times, tie-breaks — is **byte-identical** to the uncosted path (asserted by
/// the workspace parity proptests), so the broadcast fast path pays nothing
/// for the generality.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeCosts {
    n: usize,
    payload: Vec<MessageSize>,
    gap: Vec<Time>,
    latency: Vec<Time>,
}

impl EdgeCosts {
    /// Prices every directed edge of `grid` for the payload returned by
    /// `payload(sender, receiver)`: the gap is `g_{s,r}(payload)` and the
    /// latency the link latency. Diagonal entries are zero.
    pub fn priced_by_grid(
        grid: &Grid,
        mut payload: impl FnMut(ClusterId, ClusterId) -> MessageSize,
    ) -> Self {
        let n = grid.num_clusters();
        let mut costs = EdgeCosts {
            n,
            payload: Vec::with_capacity(n * n),
            gap: Vec::with_capacity(n * n),
            latency: Vec::with_capacity(n * n),
        };
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    costs.payload.push(MessageSize::ZERO);
                    costs.gap.push(Time::ZERO);
                    costs.latency.push(Time::ZERO);
                } else {
                    let m = payload(ClusterId(s), ClusterId(r));
                    costs.payload.push(m);
                    costs.gap.push(grid.gap(ClusterId(s), ClusterId(r), m));
                    costs.latency.push(grid.latency(ClusterId(s), ClusterId(r)));
                }
            }
        }
        costs
    }

    /// The degenerate uniform-payload case: every edge carries the problem's
    /// message and costs exactly what the problem's matrices say. Scheduling
    /// with these costs reproduces the plain engine path bit for bit.
    pub fn uniform(problem: &BroadcastProblem) -> Self {
        let n = problem.num_clusters();
        let mut costs = EdgeCosts {
            n,
            payload: Vec::with_capacity(n * n),
            gap: Vec::with_capacity(n * n),
            latency: Vec::with_capacity(n * n),
        };
        for s in 0..n {
            for r in 0..n {
                let payload = if s == r {
                    MessageSize::ZERO
                } else {
                    problem.message
                };
                costs.payload.push(payload);
                costs.gap.push(problem.gap(ClusterId(s), ClusterId(r)));
                costs
                    .latency
                    .push(problem.latency(ClusterId(s), ClusterId(r)));
            }
        }
        costs
    }

    /// Number of clusters the cost matrix covers.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.n
    }

    /// Payload carried by the directed edge `from → to`.
    #[inline]
    pub fn payload(&self, from: ClusterId, to: ClusterId) -> MessageSize {
        self.payload[from.index() * self.n + to.index()]
    }

    /// Gap `g_{from,to}(payload)` of the edge.
    #[inline]
    pub fn gap(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap[from.index() * self.n + to.index()]
    }

    /// Latency of the edge.
    #[inline]
    pub fn latency(&self, from: ClusterId, to: ClusterId) -> Time {
        self.latency[from.index() * self.n + to.index()]
    }

    /// Full transfer time `g(payload) + L` of the edge.
    #[inline]
    pub fn transfer(&self, from: ClusterId, to: ClusterId) -> Time {
        self.gap(from, to) + self.latency(from, to)
    }
}

/// One point-to-point transfer of a [`TransferSet`]: a payload moving between
/// two cluster coordinators, with its wide-area gap and latency already priced
/// for that payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Transfer {
    /// Sending cluster.
    pub from: ClusterId,
    /// Receiving cluster.
    pub to: ClusterId,
    /// Bytes this transfer moves (e.g. one cluster pair's personalised data).
    pub payload: MessageSize,
    /// Interface occupancy `g_{from,to}(payload)` on **both** endpoints.
    pub gap: Time,
    /// Link latency `L_{from,to}`.
    pub latency: Time,
}

/// A set of independent point-to-point transfers to place on the clusters'
/// single network interfaces — the many-transfer sibling of the engine's A/B
/// broadcast loop, used for personalised exchanges where every cluster both
/// sends and receives many times (an all-to-all decomposes into one transfer
/// per ordered cluster pair; see
/// [`alltoall_schedule`](crate::patterns::alltoall_schedule)).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TransferSet {
    n: usize,
    transfers: Vec<Transfer>,
}

impl TransferSet {
    /// An empty set over `n` clusters.
    pub fn new(n: usize) -> Self {
        TransferSet {
            n,
            transfers: Vec::new(),
        }
    }

    /// Adds a transfer to the set.
    pub fn push(&mut self, transfer: Transfer) {
        assert!(
            transfer.from.index() < self.n && transfer.to.index() < self.n,
            "transfer endpoints outside the cluster set"
        );
        assert_ne!(
            transfer.from, transfer.to,
            "a cluster never sends to itself"
        );
        self.transfers.push(transfer);
    }

    /// Number of clusters the set spans.
    pub fn num_clusters(&self) -> usize {
        self.n
    }

    /// The transfers, in insertion order.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }
}

/// A committed transfer of an [`ExchangeSchedule`], with its timing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimedTransfer {
    /// Sending cluster.
    pub from: ClusterId,
    /// Receiving cluster.
    pub to: ClusterId,
    /// Bytes moved.
    pub payload: MessageSize,
    /// When the sender's interface starts pushing (both interfaces are then
    /// occupied until `start + gap`).
    pub start: Time,
    /// When the receiver holds the payload: `start + gap + latency`.
    pub arrival: Time,
}

/// The timed placement of a [`TransferSet`] produced by
/// [`ScheduleEngine::schedule_transfers`].
#[derive(Debug, Clone, PartialEq)]
pub struct ExchangeSchedule {
    /// The transfers in the order they were committed.
    pub transfers: Vec<TimedTransfer>,
    /// Per cluster: when its network interface is free for good (all sends
    /// and receives drained).
    pub interface_free: Vec<Time>,
    /// Per cluster: arrival time of the last payload it receives.
    pub last_arrival: Vec<Time>,
}

impl ExchangeSchedule {
    /// Completion time of each cluster once a per-cluster local phase of
    /// `local[i]` (e.g. the intra-cluster all-to-all) runs after its last
    /// wide-area send or receive.
    pub fn completion_with_local(&self, local: &[Time]) -> Vec<Time> {
        assert_eq!(local.len(), self.interface_free.len());
        self.interface_free
            .iter()
            .zip(&self.last_arrival)
            .zip(local)
            .map(|((&nic, &arr), &l)| nic.max(arr) + l)
            .collect()
    }

    /// The exchange makespan: the latest per-cluster completion.
    pub fn makespan_with_local(&self, local: &[Time]) -> Time {
        self.completion_with_local(local)
            .into_iter()
            .max()
            .unwrap_or(Time::ZERO)
    }
}

/// Counters describing how the engine's incremental cache behaved.
///
/// All counters are cumulative across runs of one [`ScheduleEngine`]; sample
/// them with [`ScheduleEngine::telemetry`] or [`ScheduleEngine::take_telemetry`].
/// Recording is compiled in only with the crate's `telemetry` feature — without
/// it every recording call is an empty inline function and the counters stay
/// zero, so the hot path pays nothing.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EngineTelemetry {
    /// Rounds executed (one committed transfer each).
    pub rounds: u64,
    /// Best-sender invalidations: a committed sender's ready time grew while it
    /// was some receiver's cached best sender.
    pub invalidations: u64,
    /// Invalidations repaired in `O(1)` because the refreshed score still beat
    /// the runner-up floor.
    pub second_best_hits: u64,
    /// Invalidations repaired in `O(1)` by promoting a fresh runner-up to best.
    pub promotions: u64,
    /// Invalidations that fell back to a pruned ready-order rescan.
    pub rescans: u64,
    /// Senders examined by the shared rescan walks (the dominant rescan cost;
    /// the name survives from the binary-heap implementation this replaced).
    pub heap_pops: u64,
    /// Transfers committed by the exchange scheduler
    /// ([`ScheduleEngine::schedule_transfers`]).
    pub exchange_commits: u64,
    /// Heap entries popped by the exchange scheduler: one fresh pop per commit
    /// plus one per stale entry. `exchange_pops − exchange_commits` is the
    /// lazy-invalidation overhead; the complexity regression test pins it.
    pub exchange_pops: u64,
    /// Stale exchange-heap entries re-keyed and re-inserted after a pop found
    /// their stored completion outdated (an endpoint's interface moved).
    pub exchange_reinserts: u64,
    /// Candidate completions evaluated by the retained O(T²) oracle scan
    /// ([`ScheduleEngine::schedule_transfers_quadratic`]).
    pub exchange_oracle_scans: u64,
}

impl EngineTelemetry {
    /// Invalidations repaired from the runner-up entry without a rescan
    /// (second-best hits plus promotions).
    pub fn repaired_from_second_best(&self) -> u64 {
        self.second_best_hits + self.promotions
    }

    /// Fraction of invalidations repaired without a rescan (1.0 when no
    /// invalidation occurred).
    pub fn repair_rate(&self) -> f64 {
        if self.invalidations == 0 {
            1.0
        } else {
            self.repaired_from_second_best() as f64 / self.invalidations as f64
        }
    }

    #[inline]
    fn round(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.rounds += 1;
        }
    }

    #[inline]
    fn invalidation(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.invalidations += 1;
        }
    }

    #[inline]
    fn second_best_hit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.second_best_hits += 1;
        }
    }

    #[inline]
    fn promotion(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.promotions += 1;
        }
    }

    #[inline]
    fn rescan(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.rescans += 1;
        }
    }

    #[inline]
    fn heap_pop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.heap_pops += 1;
        }
    }

    #[inline]
    fn exchange_commit(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_commits += 1;
        }
    }

    #[inline]
    fn exchange_pop(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_pops += 1;
        }
    }

    #[inline]
    fn exchange_reinsert(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_reinserts += 1;
        }
    }

    #[inline]
    fn exchange_oracle_scan(&mut self) {
        #[cfg(feature = "telemetry")]
        {
            self.exchange_oracle_scans += 1;
        }
    }
}

/// A scheduling heuristic reduced to its selection rule.
///
/// Per round the engine selects the receiver optimising
/// `best_over_senders(edge_score) + receiver_bias`, paired with the sender
/// achieving that best edge score (smallest score, then smallest sender id).
///
/// Policies are `Send` so a warm [`ScheduleEngine`] (which owns one boxed
/// policy per heuristic) can move into a worker thread — the engine-pool
/// shape the sharded batch runners and the simulator's what-if pool build on.
/// Policy state is per-engine scratch, never shared, so this costs
/// implementations nothing.
pub trait SelectionPolicy: Send {
    /// Display name recorded in produced [`Schedule`]s.
    fn name(&self) -> &str;

    /// Called once before each schedule; (re)build per-problem state. Policies
    /// that need per-receiver sorted candidate rows build them into the
    /// engine-owned `workspace` instead of carrying their own buffers.
    fn reset(&mut self, problem: &BroadcastProblem, workspace: &mut LookaheadWorkspace) {
        let _ = (problem, workspace);
    }

    /// Score of the candidate edge `sender → receiver`; lower is better.
    ///
    /// Time-sensitive policies must guarantee two things the engine's
    /// incremental cache relies on:
    ///
    /// * `edge_score(s, r) >= view.ready_time(s)` — the pruned rescans stop
    ///   walking the ready-ordered senders on this bound;
    /// * the score depends on mutable engine state only through the sender's
    ///   ready time and never *decreases* when that ready time grows — the
    ///   runner-up (second-best) floor invariant depends on this monotonicity.
    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time;

    /// Receiver-level additive term (the lookahead `F_j`); defaults to zero.
    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        let _ = (view, workspace, receiver);
        Time::ZERO
    }

    /// Whether [`SelectionPolicy::receiver_bias`] can be non-zero. When
    /// `false` the engine skips bias evaluation in the selection scan
    /// entirely.
    fn uses_receiver_bias(&self) -> bool {
        true
    }

    /// Batched form of [`SelectionPolicy::receiver_bias`]: fill `out` with the
    /// bias of every receiver in `receivers`, in order. Called once per round
    /// — policies with per-receiver bias state should override it with a
    /// monomorphic loop so the per-receiver virtual dispatch of the default
    /// disappears from the selection hot path.
    fn receiver_biases(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receivers: &[u32],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        for &r in receivers {
            out.push(self.receiver_bias(view, workspace, ClusterId(r as usize)));
        }
    }

    /// Whether the cross-receiver objective is minimised or maximised.
    fn objective(&self) -> Objective {
        Objective::Minimize
    }

    /// Tie-break rule across receivers with equal objectives.
    fn tie_break(&self) -> TieBreak {
        TieBreak::ReceiverThenSender
    }

    /// Whether [`SelectionPolicy::edge_score`] depends on sender ready times.
    /// When `false` the engine skips ready-time invalidation entirely.
    fn sender_time_sensitive(&self) -> bool {
        true
    }

    /// A static per-receiver bound `c_j` tightening the generic
    /// `edge_score(s, r) >= ready_time(s)` contract to
    /// `edge_score(s, r) >= ready_time(s) + c_j` for **every** possible sender
    /// — e.g. the receiver's cheapest incoming transfer for completion-time
    /// scores. The engine adds it to the walked ready time when pruning
    /// rescans, retiring receivers from the ready-order walk much earlier.
    ///
    /// `min_incoming_transfer` is `min_{k != receiver} (g_kj + L_kj)`,
    /// precomputed by the engine in one sequential pass per problem —
    /// completion-estimate scores can simply return it instead of re-scanning
    /// a matrix column per receiver.
    ///
    /// The inequality must hold under *rounded* float arithmetic: the engine
    /// evaluates the bound as the single rounded sum `fl(t + c_j)`, which is
    /// dominated by any score of the shape `fl(t + x)` with `x >= c_j`
    /// (rounded addition is monotone). A `c_j` that is itself a rounded sum of
    /// score components is **not** automatically safe — addition is not
    /// associative under rounding. Only consulted for time-sensitive
    /// policies; defaults to zero (no tightening).
    fn edge_score_offset(
        &self,
        problem: &BroadcastProblem,
        receiver: ClusterId,
        min_incoming_transfer: Time,
    ) -> Time {
        let _ = (problem, receiver, min_incoming_transfer);
        Time::ZERO
    }

    /// Notification that `sender → receiver` was committed (B shrank by
    /// `receiver`); policies use it to advance incremental lookahead state
    /// held in their own buffers or in the shared `workspace`.
    fn on_commit(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        sender: ClusterId,
        receiver: ClusterId,
    ) {
        let _ = (view, workspace, sender, receiver);
    }
}

/// Candidate `(objective, receiver, sender)` comparison.
fn candidate_improves(
    objective: Objective,
    tie: TieBreak,
    new: (Time, u32, u32),
    cur: (Time, u32, u32),
) -> bool {
    use std::cmp::Ordering;
    let ord = match objective {
        Objective::Minimize => new.0.cmp(&cur.0),
        Objective::Maximize => cur.0.cmp(&new.0),
    };
    match ord {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => match tie {
            TieBreak::ReceiverThenSender => (new.1, new.2) < (cur.1, cur.2),
            TieBreak::SenderThenReceiver => (new.2, new.1) < (cur.2, cur.1),
        },
    }
}

/// Reusable buffers of one engine; split from the policy store so the two can
/// be borrowed independently.
///
/// ## Cache invariants (time-sensitive policies)
///
/// Per receiver `j` still in B the engine caches up to [`DEFAULT_K_BEST`] candidate
/// senders in the flat row `cand_*[j·K_BEST ..]` (lexicographically sorted by
/// `(score, sender id)`), plus a **floor** entry. Between commits:
///
/// 1. **Head is exact**: the row's first entry is the current lexicographic
///    minimum of `(edge_score(s, j), s)` over all `s ∈ A`, and its stored
///    score equals the sender's *current* edge score.
/// 2. **Cached scores are lower bounds**: every row entry's stored score is
///    `<=` its sender's current edge score (scores only grow — the
///    monotonicity contract of [`SelectionPolicy::edge_score`]).
/// 3. **The floor bounds everyone else**: every sender in A that is *not* in
///    the row currently satisfies
///    `(edge_score(s, j), s) >= (floor_score[j], floor_sender[j])`
///    lexicographically (`(∞, NO_SENDER)` when the row holds all of A).
///
/// Together these make an invalidation repairable in `O(K_BEST)`: refresh the
/// grown head, bubble it to its sorted position, refresh whichever cached
/// entry surfaces until the head is fresh, and accept it iff it still beats
/// the floor — only then is a ready-order rescan needed.
#[derive(Debug, Default)]
struct EngineState {
    in_a: Vec<bool>,
    ready: Vec<Time>,
    events: Vec<ScheduleEvent>,
    /// Clusters still in B (unordered; positions tracked by `recv_pos`).
    receivers: Vec<u32>,
    recv_pos: Vec<u32>,
    /// Flat per-receiver candidate rows (`K_BEST` slots each), lex-sorted by
    /// `(score, sender)`; see the invariants above.
    cand_score: Vec<Time>,
    cand_sender: Vec<u32>,
    cand_len: Vec<u32>,
    /// Dense mirrors of each row's head entry: the per-round `select` scan and
    /// the invalidation test stream these contiguously instead of striding
    /// through the rows.
    best_score: Vec<Time>,
    best_sender: Vec<u32>,
    /// Per-receiver floor entry bounding every sender outside the row.
    floor_score: Vec<Time>,
    floor_sender: Vec<u32>,
    /// Senders in A, sorted ascending by `(ready time, id)`. Ready times only
    /// grow, so a commit maintains the order with one bubble-right pass for
    /// the sender and one sorted insert for the new receiver; rescans then
    /// walk a contiguous, always-valid array instead of a lazily-invalidated
    /// heap.
    order: Vec<u32>,
    /// Position of each sender in `order` (`u32::MAX` while still in B).
    order_pos: Vec<u32>,
    /// Receivers of the current commit that could not be repaired and await
    /// the shared rescan walk.
    pending: Vec<u32>,
    /// Per-receiver static score offsets (`SelectionPolicy::edge_score_offset`)
    /// sharpening the walk's retirement bound.
    score_offset: Vec<Time>,
    /// Per-pending-receiver top `K_BEST + 1` buffers of the shared walk.
    tops: Vec<(Time, u32)>,
    topn: Vec<u32>,
    /// Scratch for makespan computation without building a [`Schedule`].
    arrival: Vec<Time>,
    busy: Vec<Time>,
    /// Shared sorted-candidate rows for lookahead policies.
    lookahead: LookaheadWorkspace,
    /// Per-round receiver-bias buffer filled by the policy's batched hook.
    bias_buf: Vec<Time>,
    /// Flat sender-major `g_ij + L_ij` combined per problem for the view's
    /// one-read completion estimates. Built from the problem's uniform-message
    /// matrices by [`EngineState::prepare_tx`], or from per-edge payload
    /// prices by [`EngineState::prepare_costs`] — the round loop itself is
    /// payload-agnostic and only ever reads these flat copies.
    tx: Vec<Time>,
    /// Flat sender-major gap matrix paired with `tx`: the interface occupancy
    /// a commit charges the sender. Identical to the problem's gap matrix on
    /// the uniform path, per-edge payload-priced on the costed path.
    gp: Vec<Time>,
    /// Per-receiver column minima of `tx` (cheapest incoming transfer),
    /// handed to [`SelectionPolicy::edge_score_offset`].
    min_in: Vec<Time>,
    /// Candidate-row width `K` ([`DEFAULT_K_BEST`] unless overridden via
    /// [`ScheduleEngine::with_k_best`]); a pure performance knob — schedules
    /// stay byte-identical for any `K ≥ 1`.
    k_best: KBest,
    telemetry: EngineTelemetry,
}

impl EngineState {
    fn reset(&mut self, problem: &BroadcastProblem) {
        let n = problem.num_clusters();
        let root = problem.root.index();
        self.in_a.clear();
        self.in_a.resize(n, false);
        self.in_a[root] = true;
        self.ready.clear();
        self.ready.resize(n, Time::ZERO);
        self.events.clear();
        self.events.reserve(n.saturating_sub(1));
        self.receivers.clear();
        self.recv_pos.clear();
        self.recv_pos.resize(n, u32::MAX);
        for c in 0..n {
            if c != root {
                self.recv_pos[c] = self.receivers.len() as u32;
                self.receivers.push(c as u32);
            }
        }
        let k = self.k_best.0;
        self.cand_score.clear();
        self.cand_score.resize(n * k, Time::INFINITY);
        self.cand_sender.clear();
        self.cand_sender.resize(n * k, NO_SENDER);
        self.cand_len.clear();
        self.cand_len.resize(n, 0);
        self.floor_score.clear();
        self.floor_score.resize(n, Time::INFINITY);
        self.floor_sender.clear();
        self.floor_sender.resize(n, NO_SENDER);
        self.best_score.clear();
        self.best_score.resize(n, Time::INFINITY);
        self.best_sender.clear();
        self.best_sender.resize(n, NO_SENDER);
        self.order.clear();
        self.order.reserve(n);
        self.order.push(root as u32);
        self.order_pos.clear();
        self.order_pos.resize(n, u32::MAX);
        self.order_pos[root] = 0;
        self.pending.clear();
        self.pending.reserve(n);
        self.bias_buf.clear();
        self.bias_buf.reserve(n);
        debug_assert_eq!(
            self.tx.len(),
            n * n,
            "prepare_tx must run before the round loop"
        );
        debug_assert_eq!(
            self.gp.len(),
            n * n,
            "prepare_tx must run before the round loop"
        );
        self.tops.clear();
        self.tops.reserve(n * (k + 1));
        self.topn.clear();
        self.topn.reserve(n);
    }

    fn init_caches(&mut self, problem: &BroadcastProblem, policy: &mut dyn SelectionPolicy) {
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            tx: &self.tx,
            n: problem.num_clusters(),
        };
        let root = problem.root;
        let k = self.k_best.0;
        for &r in &self.receivers {
            let row = r as usize * k;
            self.cand_sender[row] = root.index() as u32;
            self.cand_score[row] = policy.edge_score(&view, root, ClusterId(r as usize));
            debug_assert_score_not_nan(self.cand_score[row]);
            self.cand_len[r as usize] = 1;
            self.best_score[r as usize] = self.cand_score[row];
            self.best_sender[r as usize] = self.cand_sender[row];
            // A is the singleton {root}: the row holds all of A, so the floor
            // bounds nothing.
            self.floor_score[r as usize] = Time::INFINITY;
            self.floor_sender[r as usize] = NO_SENDER;
        }
        self.score_offset.clear();
        self.score_offset.resize(problem.num_clusters(), Time::ZERO);
        if policy.sender_time_sensitive() {
            for &r in &self.receivers {
                self.score_offset[r as usize] = policy.edge_score_offset(
                    problem,
                    ClusterId(r as usize),
                    self.min_in[r as usize],
                );
            }
        }
    }

    fn select(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
    ) -> (ClusterId, ClusterId) {
        let objective = policy.objective();
        let tie = policy.tie_break();
        let EngineState {
            in_a,
            ready,
            receivers,
            best_score,
            best_sender,
            lookahead,
            bias_buf,
            tx,
            ..
        } = self;
        let view = EngineView {
            problem,
            in_a,
            ready,
            tx,
            n: problem.num_clusters(),
        };
        let biased = policy.uses_receiver_bias();
        if biased {
            policy.receiver_biases(&view, lookahead, receivers, bias_buf);
        }
        let mut best: Option<(Time, u32, u32)> = None;
        for (i, &r) in receivers.iter().enumerate() {
            let bias = if biased { bias_buf[i] } else { Time::ZERO };
            let candidate = (best_score[r as usize] + bias, r, best_sender[r as usize]);
            debug_assert_score_not_nan(candidate.0);
            if best.is_none_or(|cur| candidate_improves(objective, tie, candidate, cur)) {
                best = Some(candidate);
            }
        }
        let (_, r, s) = best.expect("set B is non-empty while the schedule is incomplete");
        (ClusterId(s as usize), ClusterId(r as usize))
    }

    /// Rebuilds the candidate rows (and floors) of every receiver in
    /// `pending` with **one shared walk** over A in ready order (the sorted
    /// `order` array — contiguous and always valid, so the walk is a plain
    /// scan). All rescans triggered by one commit share that scan; each
    /// receiver still gets its exact top `K_BEST + 1` entries (the last one
    /// becomes the floor). The walk prunes once the next ready time exceeds
    /// every pending receiver's `(K_BEST + 1)`-smallest score found so far —
    /// any unwalked sender scores at least its ready time, so it cannot enter
    /// a row or lower a floor.
    fn rescan_pending(&mut self, problem: &BroadcastProblem, policy: &dyn SelectionPolicy) {
        let k = self.k_best.0;
        let stride = k + 1;
        let EngineState {
            in_a,
            ready,
            order,
            cand_score,
            cand_sender,
            cand_len,
            best_score,
            best_sender,
            floor_score,
            floor_sender,
            pending,
            score_offset,
            tops,
            topn,
            tx,
            telemetry,
            ..
        } = self;
        let view = EngineView {
            problem,
            in_a,
            ready,
            tx,
            n: problem.num_clusters(),
        };
        let m = pending.len();
        tops.clear();
        tops.resize(m * stride, (Time::INFINITY, NO_SENDER));
        topn.clear();
        topn.resize(m, 0);
        // Receivers in `pending[..live]` are still collecting entries; a
        // receiver whose buffer is full and whose floor is below the walk's
        // ready time can never be affected again (scores are bounded below by
        // ready times, which the walk visits in ascending order) and is
        // retired to the tail, so each receiver pays exactly its own window.
        let mut live = m;
        'walk: for &s in order.iter() {
            let t = ready[s as usize];
            telemetry.heap_pop();
            let mut p = 0;
            while p < live {
                let filled = topn[p] as usize;
                // Any unwalked sender scores at least `fl(t + c_j)` (rounded
                // float addition is monotone in both operands): retire the
                // receiver once that strictly exceeds its provisional floor.
                // The sum must be computed exactly as written — a rearranged
                // `t > floor - c_j` is not float-equivalent and could retire
                // one sender too early.
                if filled == stride
                    && t + score_offset[pending[p] as usize] > tops[p * stride + k].0
                {
                    live -= 1;
                    pending.swap(p, live);
                    topn.swap(p, live);
                    for slot in 0..stride {
                        tops.swap(p * stride + slot, live * stride + slot);
                    }
                    continue;
                }
                let score =
                    policy.edge_score(&view, ClusterId(s as usize), ClusterId(pending[p] as usize));
                debug_assert_score_not_nan(score);
                let entry = (score, s);
                let row = &mut tops[p * stride..(p + 1) * stride];
                if filled < stride {
                    let mut slot = filled;
                    while slot > 0 && row[slot - 1] > entry {
                        row[slot] = row[slot - 1];
                        slot -= 1;
                    }
                    row[slot] = entry;
                    topn[p] = (filled + 1) as u32;
                } else if entry < row[k] {
                    let mut slot = k;
                    while slot > 0 && row[slot - 1] > entry {
                        row[slot] = row[slot - 1];
                        slot -= 1;
                    }
                    row[slot] = entry;
                }
                p += 1;
            }
            if live == 0 {
                break 'walk;
            }
        }
        for p in 0..m {
            telemetry.rescan();
            let filled = topn[p] as usize;
            debug_assert!(filled > 0, "set A is never empty");
            let j = pending[p] as usize;
            let keep = filled.min(k);
            for (slot, &(score, s)) in tops[p * stride..p * stride + keep].iter().enumerate() {
                cand_score[j * k + slot] = score;
                cand_sender[j * k + slot] = s;
            }
            cand_len[j] = keep as u32;
            best_score[j] = cand_score[j * k];
            best_sender[j] = cand_sender[j * k];
            if filled == stride {
                floor_score[j] = tops[p * stride + k].0;
                floor_sender[j] = tops[p * stride + k].1;
            } else {
                // The row holds all of A: nothing to bound.
                floor_score[j] = Time::INFINITY;
                floor_sender[j] = NO_SENDER;
            }
        }
        pending.clear();
    }

    /// Repairs `receiver`'s cache after its best sender `s` grew its ready
    /// time: refresh the head entry, bubble it to its sorted position, and
    /// keep refreshing whichever cached entry surfaces until the head is
    /// fresh. The fresh head is the exact minimum over the row's senders
    /// (cached scores are lower bounds, so a fresh head underruns them all);
    /// it is the global minimum iff it still beats the floor. Returns `false`
    /// when it does not and only a ready-order rescan can restore the
    /// invariants.
    #[inline]
    fn repair_invalidated(
        &mut self,
        problem: &BroadcastProblem,
        policy: &dyn SelectionPolicy,
        receiver: u32,
        s: u32,
    ) -> bool {
        let j = receiver as usize;
        let k = self.k_best.0;
        let len = self.cand_len[j] as usize;
        let row = &mut self.cand_score[j * k..j * k + len];
        let senders = &mut self.cand_sender[j * k..j * k + len];
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            tx: &self.tx,
            n: problem.num_clusters(),
        };
        debug_assert_eq!(senders[0], s);
        // Refresh the head until it is exact: recompute its score, and if it
        // grew, bubble the entry to its lex position and look again. Every
        // refreshed entry is exact as of now, so each is refreshed at most
        // once and the loop ends within `len` iterations.
        loop {
            let head = (row[0], senders[0]);
            let current = policy.edge_score(&view, ClusterId(senders[0] as usize), ClusterId(j));
            debug_assert_score_not_nan(current);
            if current == row[0] {
                break;
            }
            debug_assert!(current > row[0], "edge scores never decrease");
            let grown = (current, head.1);
            let mut slot = 0;
            while slot + 1 < len && (row[slot + 1], senders[slot + 1]) < grown {
                row[slot] = row[slot + 1];
                senders[slot] = senders[slot + 1];
                slot += 1;
            }
            row[slot] = grown.0;
            senders[slot] = grown.1;
        }
        if (row[0], senders[0]) <= (self.floor_score[j], self.floor_sender[j]) {
            self.best_score[j] = self.cand_score[j * k];
            self.best_sender[j] = self.cand_sender[j * k];
            if self.best_sender[j] == s {
                self.telemetry.second_best_hit();
            } else {
                self.telemetry.promotion();
            }
            return true;
        }
        false
    }

    /// Offers the freshly-joined sender `new_sender` to `receiver` in
    /// `O(K_BEST)`: it is inserted into the candidate row at its lex position
    /// (the overflowing last entry, a valid lower bound for its sender, is
    /// folded into the floor) or, failing that, tightens the floor directly.
    #[inline]
    fn offer(
        &mut self,
        problem: &BroadcastProblem,
        policy: &dyn SelectionPolicy,
        receiver: u32,
        new_sender: u32,
    ) {
        let j = receiver as usize;
        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            tx: &self.tx,
            n: problem.num_clusters(),
        };
        let score = policy.edge_score(&view, ClusterId(new_sender as usize), ClusterId(j));
        debug_assert_score_not_nan(score);
        let entry = (score, new_sender);
        let k = self.k_best.0;
        let len = self.cand_len[j] as usize;
        let row = &mut self.cand_score[j * k..(j + 1) * k];
        let senders = &mut self.cand_sender[j * k..(j + 1) * k];
        if len < k {
            // Room in the row: plain sorted insert.
            let mut slot = len;
            while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                row[slot] = row[slot - 1];
                senders[slot] = senders[slot - 1];
                slot -= 1;
            }
            row[slot] = entry.0;
            senders[slot] = entry.1;
            self.cand_len[j] = (len + 1) as u32;
            if slot == 0 {
                self.best_score[j] = entry.0;
                self.best_sender[j] = entry.1;
            }
        } else if entry < (row[k - 1], senders[k - 1]) {
            // Displace the last entry; its cached score is a valid lower bound
            // for its sender, so folding it into the floor keeps invariant 3.
            let dropped = (row[k - 1], senders[k - 1]);
            let mut slot = k - 1;
            while slot > 0 && (row[slot - 1], senders[slot - 1]) > entry {
                row[slot] = row[slot - 1];
                senders[slot] = senders[slot - 1];
                slot -= 1;
            }
            row[slot] = entry.0;
            senders[slot] = entry.1;
            if slot == 0 {
                self.best_score[j] = entry.0;
                self.best_sender[j] = entry.1;
            }
            if dropped < (self.floor_score[j], self.floor_sender[j]) {
                self.floor_score[j] = dropped.0;
                self.floor_sender[j] = dropped.1;
            }
        } else if entry < (self.floor_score[j], self.floor_sender[j]) {
            // Outside the row: the floor must keep bounding it.
            self.floor_score[j] = entry.0;
            self.floor_sender[j] = entry.1;
        }
    }

    /// Restores `order` after `s`'s ready time grew: bubble it right past the
    /// senders that now sort before it. The walked distance is the number of
    /// overtaken senders — typically a handful, and each step is one `u32`
    /// move.
    #[inline]
    fn reposition_sender(&mut self, s: usize) {
        let key = (self.ready[s], s as u32);
        let mut pos = self.order_pos[s] as usize;
        debug_assert_eq!(self.order[pos], s as u32);
        while pos + 1 < self.order.len() {
            let next = self.order[pos + 1];
            if (self.ready[next as usize], next) < key {
                self.order[pos] = next;
                self.order_pos[next as usize] = pos as u32;
                pos += 1;
            } else {
                break;
            }
        }
        self.order[pos] = s as u32;
        self.order_pos[s] = pos as u32;
    }

    /// Inserts the freshly-joined sender `r` into `order` at its sorted
    /// position (its arrival time usually sorts near the end, so the shifted
    /// tail is short).
    #[inline]
    fn insert_sender(&mut self, r: usize) {
        let key = (self.ready[r], r as u32);
        let idx = self
            .order
            .binary_search_by(|&c| (self.ready[c as usize], c).cmp(&key))
            .unwrap_err();
        self.order.insert(idx, r as u32);
        for pos in idx..self.order.len() {
            self.order_pos[self.order[pos] as usize] = pos as u32;
        }
    }

    fn commit(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
        sender: ClusterId,
        receiver: ClusterId,
    ) {
        let (s, r) = (sender.index(), receiver.index());
        debug_assert!(self.in_a[s] && !self.in_a[r]);
        self.telemetry.round();
        let n = problem.num_clusters();
        let start = self.ready[s];
        // Committed timings read the flat `tx`/`gp` copies, not the problem
        // matrices: on the uniform path they hold the exact same floats, and
        // on the costed path they carry the per-edge payload prices.
        let arrival = start + self.tx[s * n + r];
        self.events.push(ScheduleEvent {
            sender,
            receiver,
            start,
            arrival,
        });
        self.ready[s] = start + self.gp[s * n + r];
        self.ready[r] = arrival;
        self.in_a[r] = true;
        // Remove the receiver from B (swap-remove keeps the list compact).
        let pos = self.recv_pos[r] as usize;
        let last = *self.receivers.last().expect("receiver is in B");
        self.receivers.swap_remove(pos);
        if pos < self.receivers.len() {
            self.recv_pos[last as usize] = pos as u32;
        }
        self.recv_pos[r] = u32::MAX;
        // Keep the ready-order array sorted: the sender's ready time grew (it
        // bubbles right), the receiver enters A at its sorted position.
        self.reposition_sender(s);
        self.insert_sender(r);

        let view = EngineView {
            problem,
            in_a: &self.in_a,
            ready: &self.ready,
            tx: &self.tx,
            n: problem.num_clusters(),
        };
        policy.on_commit(&view, &mut self.lookahead, sender, receiver);

        // Incremental cache maintenance. Receivers that relied on the committed
        // sender are repaired against their cached runners-up; the few that
        // cannot be repaired are collected and rebuilt by one shared walk in
        // ready order (which already sees the freshly-joined sender).
        // Everyone else is offered the new sender in O(K_BEST).
        let sensitive = policy.sender_time_sensitive();
        debug_assert!(self.pending.is_empty());
        for i in 0..self.receivers.len() {
            let j = self.receivers[i];
            if sensitive && self.best_sender[j as usize] == s as u32 {
                self.telemetry.invalidation();
                if self.repair_invalidated(problem, policy, j, s as u32) {
                    self.offer(problem, policy, j, r as u32);
                } else {
                    self.pending.push(j);
                }
            } else {
                self.offer(problem, policy, j, r as u32);
            }
        }
        if !self.pending.is_empty() {
            self.rescan_pending(problem, policy);
        }
    }

    /// (Re)builds the flat combined `g + L` matrix for `problem`. Called once
    /// per problem by the public entry points — the batched ones share one
    /// build across all heuristics instead of paying the `O(n²)` pass per
    /// run.
    /// Fills the flat `tx`/`gp` copies (and the `min_in` column minima) the
    /// round loop reads, from a per-edge `(gap, latency)` source. The transfer
    /// is computed as the single rounded sum `fl(gap + latency)` exactly like
    /// the problem's own accessor, so both callers produce bit-identical
    /// matrices from identical inputs.
    fn fill_matrices(
        &mut self,
        n: usize,
        mut edge: impl FnMut(ClusterId, ClusterId) -> (Time, Time),
    ) {
        self.tx.clear();
        self.tx.reserve(n * n);
        self.gp.clear();
        self.gp.reserve(n * n);
        self.min_in.clear();
        self.min_in.resize(n, Time::INFINITY);
        for s in 0..n {
            for r in 0..n {
                let (gap, latency) = edge(ClusterId(s), ClusterId(r));
                let t = gap + latency;
                self.tx.push(t);
                self.gp.push(gap);
                // Column minima (diagonal excluded — a cluster never sends to
                // itself) feed the policies' static score offsets.
                if s != r && t < self.min_in[r] {
                    self.min_in[r] = t;
                }
            }
        }
    }

    fn prepare_tx(&mut self, problem: &BroadcastProblem) {
        let n = problem.num_clusters();
        self.fill_matrices(n, |s, r| (problem.gap(s, r), problem.latency(s, r)));
    }

    /// The per-edge-payload sibling of [`EngineState::prepare_tx`]: the flat
    /// `tx`/`gp` copies the round loop reads are filled from `costs` instead
    /// of the problem's uniform-message matrices, so each committed transfer
    /// is priced for the receiver-specific block its edge carries.
    fn prepare_costs(&mut self, problem: &BroadcastProblem, costs: &EdgeCosts) {
        let n = problem.num_clusters();
        assert_eq!(
            costs.num_clusters(),
            n,
            "edge-cost matrix dimension mismatch"
        );
        self.fill_matrices(n, |s, r| (costs.gap(s, r), costs.latency(s, r)));
    }

    fn run(&mut self, problem: &BroadcastProblem, policy: &mut dyn SelectionPolicy) {
        self.reset(problem);
        policy.reset(problem, &mut self.lookahead);
        self.init_caches(problem, policy);
        let n = problem.num_clusters();
        while self.events.len() + 1 < n {
            let (sender, receiver) = self.select(problem, policy);
            self.commit(problem, policy, sender, receiver);
        }
    }

    /// Folds the events currently in the buffer into the reusable
    /// `arrival`/`busy` buffers using the engine's flat `gp` matrix: per
    /// cluster, when its payload arrived and until when its interface is
    /// occupied by outgoing gaps. The single event-fold behind
    /// [`EngineState::makespan_of_events`] and
    /// [`EngineState::schedule_of_events`].
    fn fold_events(&mut self, n: usize) {
        self.arrival.clear();
        self.arrival.resize(n, Time::ZERO);
        self.busy.clear();
        self.busy.resize(n, Time::ZERO);
        for event in &self.events {
            self.arrival[event.receiver.index()] = event.arrival;
            let send_end = event.start + self.gp[event.sender.index() * n + event.receiver.index()];
            let cell = &mut self.busy[event.sender.index()];
            *cell = (*cell).max(send_end);
        }
    }

    /// Makespan of the events currently in the buffer, computed exactly like
    /// [`Schedule::from_events`] but without allocating a [`Schedule`].
    fn makespan_of_events(&mut self, problem: &BroadcastProblem) -> Time {
        let n = problem.num_clusters();
        self.fold_events(n);
        let mut makespan = Time::ZERO;
        for i in 0..n {
            let coordinator_free = self.arrival[i].max(self.busy[i]);
            makespan = makespan.max(coordinator_free + problem.intra_time(ClusterId(i)));
        }
        makespan
    }

    /// Builds a [`Schedule`] from the events currently in the buffer,
    /// computing per-cluster completion times with the engine's flat `gp`
    /// matrix — the one schedule builder behind every engine entry point. On
    /// the uniform path `gp` equals the problem's gap matrix bit for bit, so
    /// this matches [`Schedule::from_events`]; on the costed path it prices
    /// what the committed edges actually carried, which the problem's own
    /// matrix cannot.
    fn schedule_of_events(&mut self, problem: &BroadcastProblem, heuristic: &str) -> Schedule {
        let n = problem.num_clusters();
        self.fold_events(n);
        let cluster_completion = (0..n)
            .map(|i| self.arrival[i].max(self.busy[i]) + problem.intra_time(ClusterId(i)))
            .collect();
        Schedule {
            root: problem.root,
            events: self.events.clone(),
            cluster_completion,
            heuristic: heuristic.to_owned(),
        }
    }
}

/// The reusable, pattern-agnostic scheduling engine.
///
/// One engine owns the A/B bookkeeping buffers and one policy instance per
/// [`HeuristicKind`] (created lazily), so repeated scheduling — Monte-Carlo
/// sweeps, benches, serving many requests — performs no per-round allocations
/// and reuses every buffer across heuristics and problems.
///
/// ```
/// use gridcast_core::{BroadcastProblem, HeuristicKind, ScheduleEngine};
/// use gridcast_plogp::MessageSize;
/// use gridcast_topology::{grid5000_table3, ClusterId};
///
/// let grid = grid5000_table3();
/// let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
/// let mut engine = ScheduleEngine::new();
/// let schedules = engine.schedule_all(&problem, &HeuristicKind::all());
/// assert_eq!(schedules.len(), 7);
/// for s in &schedules {
///     assert!(s.validate(&problem).is_ok());
/// }
/// ```
#[derive(Default)]
pub struct ScheduleEngine {
    state: EngineState,
    policies: [Option<Box<dyn SelectionPolicy>>; HeuristicKind::COUNT],
}

impl ScheduleEngine {
    /// Creates an engine with empty buffers.
    pub fn new() -> Self {
        ScheduleEngine::default()
    }

    /// Creates an engine whose candidate rows hold `k` entries instead of
    /// [`DEFAULT_K_BEST`].
    ///
    /// The row width is a **pure performance knob**: the head invariant and
    /// the rescan fallback keep schedules byte-identical for any `k ≥ 1`
    /// (asserted by the engine's parity tests) — only the repair rate, and
    /// with it the rescan work, changes. The `engine_scaling` bench uses this
    /// to probe K ∈ {8, 16, 32} at 500/1000 clusters for the adaptive-K
    /// telemetry.
    pub fn with_k_best(k: usize) -> Self {
        assert!(k >= 1, "the candidate row needs at least the head entry");
        let mut engine = ScheduleEngine::default();
        engine.state.k_best = KBest(k);
        engine
    }

    /// The candidate-row width `K` this engine runs with.
    pub fn k_best(&self) -> usize {
        self.state.k_best.0
    }

    /// Schedules `problem` with the built-in policy for `kind`.
    pub fn schedule(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Schedule {
        self.state.prepare_tx(problem);
        self.schedule_prepared(problem, kind)
    }

    /// Like [`ScheduleEngine::schedule`], but assumes [`EngineState::prepare_tx`]
    /// already ran for this problem (the batched entry points build the
    /// transfer matrix once and schedule every heuristic against it).
    fn schedule_prepared(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Schedule {
        let ScheduleEngine { state, policies } = self;
        let policy = policies[kind.slot()].get_or_insert_with(|| kind.new_policy());
        state.run(problem, policy.as_mut());
        state.schedule_of_events(problem, kind.name())
    }

    /// Schedules `problem` with a caller-provided policy.
    pub fn schedule_with(
        &mut self,
        problem: &BroadcastProblem,
        policy: &mut dyn SelectionPolicy,
    ) -> Schedule {
        self.state.prepare_tx(problem);
        self.state.run(problem, policy);
        self.state.schedule_of_events(problem, policy.name())
    }

    /// Schedules `problem` with the built-in policy for `kind`, pricing every
    /// edge by the per-edge payload `costs` instead of the problem's
    /// uniform-message matrices: every completion estimate served by the
    /// [`EngineView`], every committed timing and the returned schedule's
    /// completion times use the costed `g(payload) + L`.
    ///
    /// Caveat shared with [`ScheduleEngine::schedule_with_costs`]: a policy
    /// component that reads the problem's raw matrices directly — the
    /// lookahead `F_j` rows of the ECEF-LA family are built from them — still
    /// sees the uniform prices, so those kinds score on mixed prices. The
    /// relay policies of [`patterns`](crate::patterns) only consult the view
    /// and are fully costed.
    ///
    /// With [`EdgeCosts::uniform`] this is byte-identical to
    /// [`ScheduleEngine::schedule`] — the broadcast fast path is the
    /// degenerate case, not a separate code path (the round loop only ever
    /// reads the flat matrices this entry point fills).
    pub fn schedule_costed(
        &mut self,
        problem: &BroadcastProblem,
        costs: &EdgeCosts,
        kind: HeuristicKind,
    ) -> Schedule {
        let ScheduleEngine { state, policies } = self;
        let policy = policies[kind.slot()].get_or_insert_with(|| kind.new_policy());
        state.prepare_costs(problem, costs);
        state.run(problem, policy.as_mut());
        state.schedule_of_events(problem, kind.name())
    }

    /// [`ScheduleEngine::schedule_costed`] with a caller-provided policy —
    /// the entry point behind the relay-capable scatter orderings of
    /// [`patterns`](crate::patterns).
    ///
    /// Policies still receive the original `problem` through the
    /// [`EngineView`], but every completion estimate served by the view (and
    /// every committed timing) is payload-priced; a policy that reads the
    /// problem's raw matrices directly sees the uniform prices instead.
    pub fn schedule_with_costs(
        &mut self,
        problem: &BroadcastProblem,
        costs: &EdgeCosts,
        policy: &mut dyn SelectionPolicy,
    ) -> Schedule {
        self.state.prepare_costs(problem, costs);
        self.state.run(problem, policy);
        self.state.schedule_of_events(problem, policy.name())
    }

    /// Makespan of `kind` on `problem` without materialising a [`Schedule`];
    /// allocation-free once the engine is warm.
    pub fn makespan(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Time {
        self.state.prepare_tx(problem);
        self.makespan_prepared(problem, kind)
    }

    /// [`ScheduleEngine::makespan`] without the per-problem transfer-matrix
    /// build; see [`ScheduleEngine::schedule_prepared`].
    fn makespan_prepared(&mut self, problem: &BroadcastProblem, kind: HeuristicKind) -> Time {
        let ScheduleEngine { state, policies } = self;
        let policy = policies[kind.slot()].get_or_insert_with(|| kind.new_policy());
        state.run(problem, policy.as_mut());
        state.makespan_of_events(problem)
    }

    /// The events of the most recent run, without allocation.
    pub fn events(&self) -> &[ScheduleEvent] {
        &self.state.events
    }

    /// The cumulative cache telemetry of this engine. Counters only advance
    /// when the crate is built with the `telemetry` feature.
    pub fn telemetry(&self) -> EngineTelemetry {
        self.state.telemetry
    }

    /// Returns the cumulative telemetry and resets the counters to zero —
    /// convenient for per-batch deltas in benches.
    pub fn take_telemetry(&mut self) -> EngineTelemetry {
        std::mem::take(&mut self.state.telemetry)
    }

    /// Schedules `problem` with every heuristic in `kinds`, reusing the state
    /// buffers across heuristics. This is the batched entry point used by the
    /// Monte-Carlo runner and the benches.
    pub fn schedule_all(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
    ) -> Vec<Schedule> {
        let mut out = Vec::with_capacity(kinds.len());
        self.schedule_all_into(problem, kinds, &mut out);
        out
    }

    /// Like [`ScheduleEngine::schedule_all`], writing into a caller-owned
    /// buffer (cleared first) so sweeps can reuse the output allocation too.
    pub fn schedule_all_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Schedule>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        self.state.prepare_tx(problem);
        for &kind in kinds {
            out.push(self.schedule_prepared(problem, kind));
        }
    }

    /// Places every transfer of `set` on the clusters' network interfaces with
    /// the greedy **earliest-completion-first** rule: each round commits the
    /// pending transfer whose completion `max(free_src, free_dst) + g + L` is
    /// smallest (ties broken by `(from, to, insertion index)`), occupying both
    /// endpoints' interfaces for the gap — the single-port model every
    /// heuristic of the paper assumes, now applied to exchanges where a
    /// cluster sends *and* receives many payloads instead of receiving once.
    ///
    /// The result is deterministic for any insertion order of equal
    /// transfers.
    ///
    /// Implementation: a **lazy-invalidation heap** over completion keys.
    /// Interface free times only *grow*, so every stored key is a lower
    /// bound on its transfer's current completion; a popped entry whose key
    /// still matches its recomputed completion is therefore the exact global
    /// minimum — ties and floats identical to the oracle — and a stale entry
    /// (one of its endpoints moved since the push) is re-keyed and
    /// re-inserted. Only entries whose bound the rising global minimum has
    /// actually passed are ever touched, so the work is `O((T + R) log T)`
    /// with `R` the re-key count: `O(T log T)` on sparse exchanges (every
    /// pending transfer incident to ≤ a few commits), and on **dense**
    /// all-to-all sets the observed `R ≈ 0.85·n·T = O(T^{3/2})` — still a
    /// 16× reduction over the `O(T²)` oracle scan at 200 clusters, widening
    /// to 32× at 400 (byte-exact float semantics rule out batch-shifting a
    /// cluster's bounds: rounded completions are not order-stable under a
    /// common shift, so each surfaced bound must be verified individually).
    /// The old scan is retained as
    /// [`ScheduleEngine::schedule_transfers_quadratic`], the differential
    /// oracle the proptests hold this implementation **byte-identical** to,
    /// and the telemetry counters (`exchange_pops`, `exchange_reinserts`) pin
    /// the work in `crates/bench/tests/exchange_regression.rs`.
    pub fn schedule_transfers(&mut self, set: &TransferSet) -> ExchangeSchedule {
        let release = vec![Time::ZERO; set.num_clusters()];
        self.schedule_transfers_from(set, &release)
    }

    /// [`ScheduleEngine::schedule_transfers`] with per-cluster **release
    /// times**: cluster `i`'s interface only becomes available at
    /// `release[i]` (every transfer touching it starts no earlier). This is
    /// how the allgather charges each coordinator's local gather lead-in
    /// before its wide-area exchange begins.
    pub fn schedule_transfers_from(
        &mut self,
        set: &TransferSet,
        release: &[Time],
    ) -> ExchangeSchedule {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let n = set.num_clusters();
        assert_eq!(release.len(), n, "one release time per cluster");
        let EngineState {
            ready: free,
            arrival: last_arrival,
            telemetry,
            ..
        } = &mut self.state;
        free.clear();
        free.extend_from_slice(release);
        last_arrival.clear();
        last_arrival.resize(n, Time::ZERO);
        let transfers = set.transfers();
        // The key replicates the oracle's comparison tuple exactly, including
        // the float evaluation order of the completion.
        let key = |free: &[Time], t: &Transfer, idx: u32| {
            let start = free[t.from.index()].max(free[t.to.index()]);
            let completion = start + t.gap + t.latency;
            debug_assert_score_not_nan(completion);
            (completion, t.from.index() as u32, t.to.index() as u32, idx)
        };
        let mut heap: BinaryHeap<Reverse<(Time, u32, u32, u32)>> =
            BinaryHeap::with_capacity(transfers.len() + 1);
        for (idx, t) in transfers.iter().enumerate() {
            heap.push(Reverse(key(free, t, idx as u32)));
        }
        let mut out = Vec::with_capacity(transfers.len());
        // Invariant: every pending transfer has exactly one live heap entry,
        // keyed by a lower bound on its current completion (frees only grow).
        while let Some(Reverse(entry)) = heap.pop() {
            telemetry.exchange_pop();
            let idx = entry.3;
            let t = &transfers[idx as usize];
            let current = key(free, t, idx);
            debug_assert!(current >= entry, "completion keys never decrease");
            if current != entry {
                // Stale: an endpoint's interface moved since the push.
                telemetry.exchange_reinsert();
                heap.push(Reverse(current));
                continue;
            }
            // Fresh minimum over lower bounds of everything pending: this is
            // the oracle's earliest-completion pick, tie-break included.
            telemetry.exchange_commit();
            let start = free[t.from.index()].max(free[t.to.index()]);
            let nic_release = start + t.gap;
            let arrival = nic_release + t.latency;
            free[t.from.index()] = nic_release;
            free[t.to.index()] = nic_release;
            last_arrival[t.to.index()] = last_arrival[t.to.index()].max(arrival);
            out.push(TimedTransfer {
                from: t.from,
                to: t.to,
                payload: t.payload,
                start,
                arrival,
            });
        }
        debug_assert_eq!(out.len(), transfers.len());
        ExchangeSchedule {
            transfers: out,
            interface_free: free.clone(),
            last_arrival: last_arrival.clone(),
        }
    }

    /// The original `O(T²)` earliest-completion-first scan, retained as the
    /// **differential oracle** for [`ScheduleEngine::schedule_transfers`]:
    /// the proptests assert the heap implementation is byte-identical to this
    /// one on random transfer sets, and the scaling figure measures the two
    /// against each other. Prefer `schedule_transfers` everywhere else.
    pub fn schedule_transfers_quadratic(&mut self, set: &TransferSet) -> ExchangeSchedule {
        let release = vec![Time::ZERO; set.num_clusters()];
        self.schedule_transfers_quadratic_from(set, &release)
    }

    /// [`ScheduleEngine::schedule_transfers_quadratic`] with per-cluster
    /// release times — the oracle twin of
    /// [`ScheduleEngine::schedule_transfers_from`].
    pub fn schedule_transfers_quadratic_from(
        &mut self,
        set: &TransferSet,
        release: &[Time],
    ) -> ExchangeSchedule {
        let n = set.num_clusters();
        assert_eq!(release.len(), n, "one release time per cluster");
        let EngineState {
            ready: free,
            arrival: last_arrival,
            telemetry,
            ..
        } = &mut self.state;
        free.clear();
        free.extend_from_slice(release);
        last_arrival.clear();
        last_arrival.resize(n, Time::ZERO);
        let mut remaining: Vec<u32> = (0..set.transfers.len() as u32).collect();
        let mut out = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            let mut best_slot = 0usize;
            let mut best_key = (Time::INFINITY, u32::MAX, u32::MAX, u32::MAX);
            for (slot, &idx) in remaining.iter().enumerate() {
                telemetry.exchange_oracle_scan();
                let t = &set.transfers[idx as usize];
                let start = free[t.from.index()].max(free[t.to.index()]);
                let completion = start + t.gap + t.latency;
                debug_assert_score_not_nan(completion);
                let key = (completion, t.from.index() as u32, t.to.index() as u32, idx);
                if key < best_key {
                    best_key = key;
                    best_slot = slot;
                }
            }
            let idx = remaining.swap_remove(best_slot);
            let t = &set.transfers[idx as usize];
            let start = free[t.from.index()].max(free[t.to.index()]);
            let nic_release = start + t.gap;
            let arrival = nic_release + t.latency;
            free[t.from.index()] = nic_release;
            free[t.to.index()] = nic_release;
            last_arrival[t.to.index()] = last_arrival[t.to.index()].max(arrival);
            out.push(TimedTransfer {
                from: t.from,
                to: t.to,
                payload: t.payload,
                start,
                arrival,
            });
        }
        ExchangeSchedule {
            transfers: out,
            interface_free: free.clone(),
            last_arrival: last_arrival.clone(),
        }
    }

    /// Makespans of every heuristic in `kinds` on `problem`, written into a
    /// caller-owned buffer; allocation-free once the engine is warm.
    pub fn makespans_into(
        &mut self,
        problem: &BroadcastProblem,
        kinds: &[HeuristicKind],
        out: &mut Vec<Time>,
    ) {
        out.clear();
        out.reserve(kinds.len());
        self.state.prepare_tx(problem);
        for &kind in kinds {
            out.push(self.makespan_prepared(problem, kind));
        }
    }
}

/// Schedules `problem` with every heuristic in `kinds`, sharding the heuristics
/// across scoped worker threads (one fresh [`ScheduleEngine`] per thread).
///
/// Heuristics are independent, so the result is **bit-identical** to the
/// sequential [`ScheduleEngine::schedule_all`] for any thread count. Worth it
/// for large problems (hundreds of clusters), where one heuristic takes long
/// enough to amortise thread spawning; small problems should prefer the
/// sequential, buffer-reusing entry point.
pub fn schedule_all_sharded(problem: &BroadcastProblem, kinds: &[HeuristicKind]) -> Vec<Schedule> {
    let mut out: Vec<Option<Schedule>> = (0..kinds.len()).map(|_| None).collect();
    let chunk = shard_chunk_size(kinds.len());
    std::thread::scope(|scope| {
        for (kind_chunk, out_chunk) in kinds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut engine = ScheduleEngine::new();
                for (&kind, slot) in kind_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = Some(engine.schedule(problem, kind));
                }
            });
        }
    });
    out.into_iter()
        .map(|s| s.expect("every kind was scheduled by its shard"))
        .collect()
}

/// Makespans of every heuristic in `kinds`, sharded across scoped worker
/// threads like [`schedule_all_sharded`]; bit-identical to the sequential
/// [`ScheduleEngine::makespans_into`] for any thread count.
pub fn makespans_sharded(problem: &BroadcastProblem, kinds: &[HeuristicKind]) -> Vec<Time> {
    let mut out = vec![Time::ZERO; kinds.len()];
    let chunk = shard_chunk_size(kinds.len());
    std::thread::scope(|scope| {
        for (kind_chunk, out_chunk) in kinds.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut engine = ScheduleEngine::new();
                for (&kind, slot) in kind_chunk.iter().zip(out_chunk.iter_mut()) {
                    *slot = engine.makespan(problem, kind);
                }
            });
        }
    });
    out
}

fn shard_chunk_size(kinds: usize) -> usize {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(kinds)
        .max(1);
    kinds.div_ceil(threads).max(1)
}

thread_local! {
    static SHARED_ENGINE: RefCell<ScheduleEngine> = RefCell::new(ScheduleEngine::new());
}

/// Runs `f` with this thread's shared engine — the buffer-reusing fast path
/// behind [`HeuristicKind::schedule`] and the [`crate::heuristics::Heuristic`]
/// impls.
pub fn with_shared_engine<R>(f: impl FnOnce(&mut ScheduleEngine) -> R) -> R {
    SHARED_ENGINE.with(|engine| f(&mut engine.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::GridGenerator;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    #[test]
    fn engine_reuse_is_deterministic() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(12, 3);
        let first = engine.schedule(&p, HeuristicKind::EcefLaMax);
        // Interleave other problems and heuristics, then repeat.
        let q = random_problem(30, 4);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&q, kind);
            assert!(s.validate(&q).is_ok(), "{kind}");
        }
        let second = engine.schedule(&p, HeuristicKind::EcefLaMax);
        assert_eq!(first, second);
    }

    #[test]
    fn makespan_matches_schedule() {
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 5, 17, 40] {
            let p = random_problem(clusters, clusters as u64);
            for kind in HeuristicKind::all() {
                let schedule = engine.schedule(&p, kind);
                let fast = engine.makespan(&p, kind);
                assert_eq!(schedule.makespan(), fast, "{kind} on {clusters}");
            }
        }
    }

    #[test]
    fn schedule_all_covers_every_kind_in_order() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(9, 1);
        let kinds = HeuristicKind::all();
        let schedules = engine.schedule_all(&p, &kinds);
        assert_eq!(schedules.len(), kinds.len());
        for (kind, schedule) in kinds.iter().zip(&schedules) {
            assert_eq!(schedule.heuristic, kind.name());
            assert!(schedule.validate(&p).is_ok());
        }
        // The batched buffer variant agrees.
        let mut buffer = Vec::new();
        engine.schedule_all_into(&p, &kinds, &mut buffer);
        assert_eq!(buffer, schedules);
        let mut spans = Vec::new();
        engine.makespans_into(&p, &kinds, &mut spans);
        let expected: Vec<_> = schedules.iter().map(|s| s.makespan()).collect();
        assert_eq!(spans, expected);
    }

    #[test]
    fn sharded_batches_are_bit_identical_to_sequential() {
        let kinds = HeuristicKind::all();
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 7, 33, 80] {
            let p = random_problem(clusters, 1000 + clusters as u64);
            let sequential = engine.schedule_all(&p, &kinds);
            let sharded = schedule_all_sharded(&p, &kinds);
            assert_eq!(sequential, sharded, "{clusters} clusters");
            let spans = makespans_sharded(&p, &kinds);
            let expected: Vec<_> = sequential.iter().map(|s| s.makespan()).collect();
            assert!(
                spans
                    .iter()
                    .zip(&expected)
                    .all(|(a, b)| a.as_secs().to_bits() == b.as_secs().to_bits()),
                "makespans diverge at {clusters} clusters"
            );
        }
    }

    #[test]
    fn candidate_row_width_is_a_pure_performance_knob() {
        // Schedules are byte-identical for any K ≥ 1: the row head is exact
        // between commits and the rescan fallback rebuilds exact rows, so
        // shrinking or growing the row only moves work between repairs and
        // rescans. This is what licenses the engine_scaling K sweep.
        let mut reference = ScheduleEngine::new();
        assert_eq!(reference.k_best(), DEFAULT_K_BEST);
        for clusters in [2usize, 13, 48, 96] {
            let p = random_problem(clusters, 7000 + clusters as u64);
            for k in [1usize, 2, 8, 32] {
                let mut probe = ScheduleEngine::with_k_best(k);
                assert_eq!(probe.k_best(), k);
                for kind in HeuristicKind::all() {
                    let a = reference.schedule(&p, kind);
                    let b = probe.schedule(&p, kind);
                    assert_eq!(a, b, "{kind} diverges at K={k} on {clusters} clusters");
                    for (x, y) in a.events.iter().zip(&b.events) {
                        assert_eq!(x.start.as_secs().to_bits(), y.start.as_secs().to_bits());
                        assert_eq!(x.arrival.as_secs().to_bits(), y.arrival.as_secs().to_bits());
                    }
                }
            }
        }
    }

    #[test]
    fn shared_read_paths_are_sync_and_engines_are_send() {
        // The what-if worker pool shares `&Grid`/`&BroadcastProblem` across
        // scoped threads and moves warm engines into workers; this pins the
        // auto-trait surface those pools rely on (a policy gaining an
        // un-Send/un-Sync field would fail to compile here first).
        fn shared<T: Sync + Send>() {}
        fn movable<T: Send>() {}
        shared::<gridcast_topology::Grid>();
        shared::<BroadcastProblem>();
        shared::<Schedule>();
        shared::<EdgeCosts>();
        shared::<TransferSet>();
        movable::<ScheduleEngine>();
    }

    #[test]
    fn uniform_edge_costs_reproduce_the_plain_path_bit_for_bit() {
        let mut engine = ScheduleEngine::new();
        for clusters in [2usize, 9, 33] {
            let p = random_problem(clusters, 100 + clusters as u64);
            let costs = EdgeCosts::uniform(&p);
            for kind in HeuristicKind::all() {
                let plain = engine.schedule(&p, kind);
                let costed = engine.schedule_costed(&p, &costs, kind);
                assert_eq!(plain, costed, "{kind} on {clusters} clusters");
                for (a, b) in plain.events.iter().zip(&costed.events) {
                    assert_eq!(a.start.as_secs().to_bits(), b.start.as_secs().to_bits());
                    assert_eq!(a.arrival.as_secs().to_bits(), b.arrival.as_secs().to_bits());
                }
            }
        }
    }

    #[test]
    fn per_edge_costs_change_committed_timings() {
        let p = random_problem(6, 42);
        // Double every gap: the committed schedule must slow down accordingly.
        let n = p.num_clusters();
        let mut costs = EdgeCosts::uniform(&p);
        for s in 0..n {
            for r in 0..n {
                costs.gap[s * n + r] = costs.gap[s * n + r] * 2.0;
            }
        }
        let mut engine = ScheduleEngine::new();
        let plain = engine.schedule(&p, HeuristicKind::Ecef);
        let costed = engine.schedule_costed(&p, &costs, HeuristicKind::Ecef);
        assert!(costed.makespan() > plain.makespan());
    }

    #[test]
    fn transfer_scheduler_serialises_interfaces_and_respects_gap_sums() {
        // Three clusters, two transfers sharing cluster 0's interface: they
        // must not overlap, and the second starts when the first's gap ends.
        let mut set = TransferSet::new(3);
        let mk = |from: usize, to: usize, gap_ms: f64, lat_ms: f64| Transfer {
            from: ClusterId(from),
            to: ClusterId(to),
            payload: MessageSize::from_kib(1),
            gap: Time::from_millis(gap_ms),
            latency: Time::from_millis(lat_ms),
        };
        set.push(mk(0, 1, 10.0, 1.0));
        set.push(mk(0, 2, 10.0, 5.0));
        let mut engine = ScheduleEngine::new();
        let schedule = engine.schedule_transfers(&set);
        assert_eq!(schedule.transfers.len(), 2);
        // Earliest completion first: 0→1 (11 ms) before 0→2 (15 ms).
        assert_eq!(schedule.transfers[0].to, ClusterId(1));
        assert_eq!(schedule.transfers[1].start, Time::from_millis(10.0));
        assert_eq!(schedule.transfers[1].arrival, Time::from_millis(25.0));
        assert_eq!(schedule.interface_free[0], Time::from_millis(20.0));
        // Receivers' interfaces were occupied too.
        assert_eq!(schedule.interface_free[1], Time::from_millis(10.0));
        assert_eq!(schedule.last_arrival[1], Time::from_millis(11.0));
        let local = [Time::from_millis(3.0), Time::ZERO, Time::ZERO];
        assert_eq!(
            schedule.makespan_with_local(&local),
            Time::from_millis(25.0)
        );
    }

    #[test]
    fn transfer_scheduler_is_deterministic_across_insertion_orders() {
        let p = random_problem(8, 7);
        let n = p.num_clusters();
        let mut forward = TransferSet::new(n);
        let mut reversed = Vec::new();
        for s in 0..n {
            for r in 0..n {
                if s == r {
                    continue;
                }
                let t = Transfer {
                    from: ClusterId(s),
                    to: ClusterId(r),
                    payload: p.message,
                    gap: p.gap(ClusterId(s), ClusterId(r)),
                    latency: p.latency(ClusterId(s), ClusterId(r)),
                };
                forward.push(t);
                reversed.push(t);
            }
        }
        let mut backward = TransferSet::new(n);
        for t in reversed.into_iter().rev() {
            backward.push(t);
        }
        let mut engine = ScheduleEngine::new();
        let a = engine.schedule_transfers(&forward);
        let b = engine.schedule_transfers(&backward);
        assert_eq!(a.transfers, b.transfers);
        assert_eq!(a.interface_free, b.interface_free);
    }

    #[test]
    fn transfer_heap_is_byte_identical_to_the_quadratic_oracle() {
        // Mixed payload sizes on a random grid: the lazy-invalidation heap
        // must reproduce the O(T²) oracle exactly — same commit order, same
        // float bit patterns.
        for clusters in [2usize, 5, 11, 23] {
            let p = random_problem(clusters, 300 + clusters as u64);
            let mut set = TransferSet::new(clusters);
            for s in 0..clusters {
                for r in 0..clusters {
                    if s == r {
                        continue;
                    }
                    let payload = MessageSize::from_kib(1 + ((s * 7 + r * 3) % 64) as u64);
                    set.push(Transfer {
                        from: ClusterId(s),
                        to: ClusterId(r),
                        payload,
                        gap: p.gap(ClusterId(s), ClusterId(r)) * (1.0 + (r % 5) as f64 * 0.1),
                        latency: p.latency(ClusterId(s), ClusterId(r)),
                    });
                }
            }
            let mut engine = ScheduleEngine::new();
            let fast = engine.schedule_transfers(&set);
            let oracle = engine.schedule_transfers_quadratic(&set);
            assert_eq!(fast.transfers.len(), oracle.transfers.len());
            for (a, b) in fast.transfers.iter().zip(&oracle.transfers) {
                assert_eq!(a.from, b.from);
                assert_eq!(a.to, b.to);
                assert_eq!(a.start.as_secs().to_bits(), b.start.as_secs().to_bits());
                assert_eq!(a.arrival.as_secs().to_bits(), b.arrival.as_secs().to_bits());
            }
            assert_eq!(fast.interface_free, oracle.interface_free);
            assert_eq!(fast.last_arrival, oracle.last_arrival);
        }
    }

    #[test]
    fn release_times_gate_the_exchange_and_both_paths_agree() {
        let mut set = TransferSet::new(3);
        let mk = |from: usize, to: usize, gap_ms: f64, lat_ms: f64| Transfer {
            from: ClusterId(from),
            to: ClusterId(to),
            payload: MessageSize::from_kib(1),
            gap: Time::from_millis(gap_ms),
            latency: Time::from_millis(lat_ms),
        };
        set.push(mk(0, 1, 10.0, 1.0));
        set.push(mk(2, 1, 4.0, 1.0));
        let release = [Time::from_millis(50.0), Time::ZERO, Time::ZERO];
        let mut engine = ScheduleEngine::new();
        let fast = engine.schedule_transfers_from(&set, &release);
        let oracle = engine.schedule_transfers_quadratic_from(&set, &release);
        assert_eq!(fast, oracle);
        // Cluster 2 is free immediately; cluster 0's send waits for its
        // release.
        assert_eq!(fast.transfers[0].from, ClusterId(2));
        assert_eq!(fast.transfers[0].start, Time::ZERO);
        assert_eq!(fast.transfers[1].from, ClusterId(0));
        assert_eq!(fast.transfers[1].start, Time::from_millis(50.0));
    }

    #[test]
    fn events_accessor_exposes_last_run() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(6, 9);
        let schedule = engine.schedule(&p, HeuristicKind::Fef);
        assert_eq!(engine.events(), schedule.events.as_slice());
    }

    #[test]
    fn two_cluster_problems_work() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(2, 5);
        for kind in HeuristicKind::all() {
            let s = engine.schedule(&p, kind);
            assert_eq!(s.num_transfers(), 1, "{kind}");
        }
    }

    #[test]
    fn lookahead_workspace_rows_and_cursors() {
        let mut ws = LookaheadWorkspace::default();
        let vals = [5.0, 1.0, 3.0];
        ws.build_rows(3, false, |_, k| Time::from_millis(vals[k]));
        // Ascending by key: 1 (1ms), 2 (3ms), 0 (5ms) for every row.
        assert_eq!(ws.first_alive(0, |_| true), Some(1));
        // Rejections advance the cursor permanently.
        assert_eq!(ws.first_alive(1, |k| k != 1), Some(2));
        assert_eq!(ws.first_alive(1, |_| true), Some(2));
        ws.build_rows(3, true, |_, k| Time::from_millis(vals[k]));
        assert_eq!(ws.first_alive(2, |_| true), Some(0));
        // Exhausted rows yield None.
        assert_eq!(ws.first_alive(0, |_| false), None);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn telemetry_counts_are_consistent() {
        let mut engine = ScheduleEngine::new();
        let p = random_problem(60, 11);
        engine.take_telemetry();
        for kind in HeuristicKind::all() {
            let _ = engine.schedule(&p, kind);
        }
        let t = engine.take_telemetry();
        // 7 heuristics x 59 transfers each.
        assert_eq!(t.rounds, 7 * 59);
        // Every invalidation is resolved exactly one way.
        assert_eq!(
            t.invalidations,
            t.second_best_hits + t.promotions + t.rescans
        );
        // Time-sensitive policies on a 60-cluster grid invalidate plenty, and
        // the runner-up entry must absorb most of it.
        assert!(t.invalidations > 0);
        assert!(
            t.repair_rate() >= 0.5,
            "runner-up repairs only {:.1}% of invalidations",
            t.repair_rate() * 100.0
        );
        // Telemetry resets on take.
        assert_eq!(engine.telemetry(), EngineTelemetry::default());
    }
}
