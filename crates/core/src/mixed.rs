//! The mixed strategy recommended in Section 6.
//!
//! The simulations show that the performance-oriented heuristics (ECEF, ECEF-LA,
//! ECEF-LAt) give the best schedules when the grid has few clusters, but their
//! hit rate degrades as the cluster count grows, while ECEF-LAT's hit rate stays
//! roughly constant. The paper therefore suggests switching heuristic based on
//! the problem size; [`MixedStrategy`] implements exactly that rule.

use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, HeuristicKind, Schedule};
use serde::{Deserialize, Serialize};

/// Heuristic-selection policy switching on the number of clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MixedStrategy {
    /// Largest cluster count for which the performance-oriented heuristic is
    /// used; above it the balanced ECEF-LAT takes over.
    pub small_grid_threshold: usize,
    /// Heuristic used for small grids (the paper suggests ECEF or ECEF-LA).
    pub small_grid_heuristic: HeuristicKind,
    /// Heuristic used for large grids (the paper suggests ECEF-LAT).
    pub large_grid_heuristic: HeuristicKind,
}

impl Default for MixedStrategy {
    fn default() -> Self {
        MixedStrategy {
            small_grid_threshold: 10,
            small_grid_heuristic: HeuristicKind::EcefLa,
            large_grid_heuristic: HeuristicKind::EcefLaMax,
        }
    }
}

impl MixedStrategy {
    /// The heuristic the strategy selects for a grid with `num_clusters`.
    pub fn select(&self, num_clusters: usize) -> HeuristicKind {
        if num_clusters <= self.small_grid_threshold {
            self.small_grid_heuristic
        } else {
            self.large_grid_heuristic
        }
    }
}

impl Heuristic for MixedStrategy {
    fn name(&self) -> &str {
        "Mixed"
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        let kind = self.select(problem.num_clusters());
        let mut schedule = kind.schedule(problem);
        schedule.heuristic = format!("Mixed({})", kind.name());
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn selection_switches_at_the_threshold() {
        let strategy = MixedStrategy::default();
        assert_eq!(strategy.select(2), HeuristicKind::EcefLa);
        assert_eq!(strategy.select(10), HeuristicKind::EcefLa);
        assert_eq!(strategy.select(11), HeuristicKind::EcefLaMax);
        assert_eq!(strategy.select(50), HeuristicKind::EcefLaMax);
    }

    #[test]
    fn schedule_matches_the_selected_heuristic() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let small = GridGenerator::table2().generate(6, &mut rng);
        let large = GridGenerator::table2().generate(30, &mut rng);
        let strategy = MixedStrategy::default();
        let m = MessageSize::from_mib(1);

        let p_small = BroadcastProblem::from_grid(&small, ClusterId(0), m);
        let p_large = BroadcastProblem::from_grid(&large, ClusterId(0), m);

        let s_small = strategy.schedule(&p_small);
        assert_eq!(
            s_small.makespan(),
            HeuristicKind::EcefLa.schedule(&p_small).makespan()
        );
        assert_eq!(s_small.heuristic, "Mixed(ECEF-LA)");
        assert!(s_small.validate(&p_small).is_ok());

        let s_large = strategy.schedule(&p_large);
        assert_eq!(
            s_large.makespan(),
            HeuristicKind::EcefLaMax.schedule(&p_large).makespan()
        );
        assert_eq!(s_large.heuristic, "Mixed(ECEF-LAT)");
        assert!(s_large.validate(&p_large).is_ok());
    }

    #[test]
    fn custom_thresholds_and_heuristics() {
        let strategy = MixedStrategy {
            small_grid_threshold: 4,
            small_grid_heuristic: HeuristicKind::Ecef,
            large_grid_heuristic: HeuristicKind::BottomUp,
        };
        assert_eq!(strategy.select(4), HeuristicKind::Ecef);
        assert_eq!(strategy.select(5), HeuristicKind::BottomUp);
        assert_eq!(strategy.name(), "Mixed");
    }
}
