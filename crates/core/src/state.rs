//! The A/B set formalism shared by every scheduling heuristic.

use crate::{BroadcastProblem, Schedule, ScheduleEvent};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;

/// Incremental scheduling state.
///
/// Following the formalism of Bhat et al. adopted by the paper, clusters are
/// split into set **A** (their coordinator already holds — or is about to hold —
/// the message) and set **B** (still waiting). Each scheduling round commits one
/// transfer from a sender in A to a receiver in B and moves the receiver to A.
///
/// The state also tracks, for every cluster in A, the **ready time**: the
/// earliest instant at which its coordinator can *start a new outgoing transfer*.
/// For a cluster that just received the message this is its arrival time; every
/// committed outgoing transfer then pushes it forward by the link gap, because
/// the coordinator's interface is busy for `g(m)` per message. This single value
/// is exactly the `RT_i` used by the ECEF-family selection formulas.
///
/// All heuristics share this state type, so they differ *only* in how they pick
/// the next (sender, receiver) pair — which is the point of the paper's
/// comparison.
#[derive(Debug, Clone)]
pub struct ScheduleState<'p> {
    problem: &'p BroadcastProblem,
    /// `true` if the cluster is in set A.
    in_a: Vec<bool>,
    /// Ready time of each cluster (meaningful only for clusters in A).
    ready: Vec<Time>,
    /// Committed transfers.
    events: Vec<ScheduleEvent>,
}

impl<'p> ScheduleState<'p> {
    /// Initial state: only the root is in A, with ready time zero.
    pub fn new(problem: &'p BroadcastProblem) -> Self {
        let n = problem.num_clusters();
        let mut in_a = vec![false; n];
        in_a[problem.root.index()] = true;
        ScheduleState {
            problem,
            in_a,
            ready: vec![Time::ZERO; n],
            events: Vec::with_capacity(n.saturating_sub(1)),
        }
    }

    /// The underlying problem.
    #[inline]
    pub fn problem(&self) -> &BroadcastProblem {
        self.problem
    }

    /// Whether every cluster has been scheduled.
    #[inline]
    pub fn is_complete(&self) -> bool {
        self.events.len() + 1 == self.problem.num_clusters()
    }

    /// Clusters currently in set A (senders).
    pub fn set_a(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.in_a
            .iter()
            .enumerate()
            .filter(|(_, &a)| a)
            .map(|(i, _)| ClusterId(i))
    }

    /// Clusters currently in set B (receivers still waiting).
    pub fn set_b(&self) -> impl Iterator<Item = ClusterId> + '_ {
        self.in_a
            .iter()
            .enumerate()
            .filter(|(_, &a)| !a)
            .map(|(i, _)| ClusterId(i))
    }

    /// Whether `cluster` is already in set A.
    #[inline]
    pub fn is_in_a(&self, cluster: ClusterId) -> bool {
        self.in_a[cluster.index()]
    }

    /// The ready time `RT_i` of a cluster in set A: the earliest instant its
    /// coordinator can start a new outgoing transfer.
    #[inline]
    pub fn ready_time(&self, cluster: ClusterId) -> Time {
        self.ready[cluster.index()]
    }

    /// The completion time of a hypothetical transfer `sender → receiver` if it
    /// were committed now: `RT_i + g_ij + L_ij`. This is the quantity minimised
    /// by the ECEF heuristic and reused (plus lookahead) by its derivatives.
    pub fn completion_estimate(&self, sender: ClusterId, receiver: ClusterId) -> Time {
        self.ready_time(sender) + self.problem.transfer(sender, receiver)
    }

    /// Commits the transfer `sender → receiver`, moving the receiver to set A.
    ///
    /// Panics if the sender is not in A or the receiver not in B — heuristics are
    /// expected to respect the formalism.
    pub fn commit(&mut self, sender: ClusterId, receiver: ClusterId) -> ScheduleEvent {
        assert!(self.in_a[sender.index()], "sender {sender} is not in set A");
        assert!(
            !self.in_a[receiver.index()],
            "receiver {receiver} is already in set A"
        );
        let start = self.ready[sender.index()];
        let arrival = start + self.problem.transfer(sender, receiver);
        let event = ScheduleEvent {
            sender,
            receiver,
            start,
            arrival,
        };
        // The sender's interface is busy for the gap of this transfer.
        self.ready[sender.index()] = start + self.problem.gap(sender, receiver);
        // The receiver joins A and may start sending as soon as it holds the
        // message.
        self.in_a[receiver.index()] = true;
        self.ready[receiver.index()] = arrival;
        self.events.push(event);
        event
    }

    /// Finishes scheduling, producing the [`Schedule`]. Panics if some cluster
    /// was never reached (use [`ScheduleState::is_complete`] to check).
    pub fn finish(self, heuristic: impl Into<String>) -> Schedule {
        assert!(
            self.is_complete(),
            "schedule is incomplete: {} of {} clusters reached",
            self.events.len() + 1,
            self.problem.num_clusters()
        );
        Schedule::from_events(self.problem, heuristic, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::SquareMatrix;

    fn problem(n: usize) -> BroadcastProblem {
        let mut latency = SquareMatrix::filled(n, Time::from_millis(1.0));
        let mut gap = SquareMatrix::filled(n, Time::from_millis(10.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; n],
        )
    }

    #[test]
    fn initial_state_has_root_in_a() {
        let p = problem(4);
        let state = ScheduleState::new(&p);
        assert_eq!(state.set_a().collect::<Vec<_>>(), vec![ClusterId(0)]);
        assert_eq!(state.set_b().count(), 3);
        assert!(state.is_in_a(ClusterId(0)));
        assert!(!state.is_in_a(ClusterId(2)));
        assert!(!state.is_complete());
        assert_eq!(state.ready_time(ClusterId(0)), Time::ZERO);
    }

    #[test]
    fn commit_updates_ready_times_and_sets() {
        let p = problem(3);
        let mut state = ScheduleState::new(&p);
        let e1 = state.commit(ClusterId(0), ClusterId(1));
        assert_eq!(e1.start, Time::ZERO);
        assert_eq!(e1.arrival, Time::from_millis(11.0));
        // Root busy until 10 ms; receiver ready at 11 ms.
        assert_eq!(state.ready_time(ClusterId(0)), Time::from_millis(10.0));
        assert_eq!(state.ready_time(ClusterId(1)), Time::from_millis(11.0));
        assert!(state.is_in_a(ClusterId(1)));

        let e2 = state.commit(ClusterId(0), ClusterId(2));
        let eps = Time::from_micros(1.0);
        assert_eq!(e2.start, Time::from_millis(10.0));
        assert!(e2.arrival.approx_eq(Time::from_millis(21.0), eps));
        assert!(state.is_complete());

        let schedule = state.finish("test");
        assert!(schedule.validate(&p).is_ok());
        assert!(schedule.makespan().approx_eq(Time::from_millis(21.0), eps));
    }

    #[test]
    fn completion_estimate_matches_commit() {
        let p = problem(3);
        let mut state = ScheduleState::new(&p);
        let estimate = state.completion_estimate(ClusterId(0), ClusterId(2));
        let event = state.commit(ClusterId(0), ClusterId(2));
        assert_eq!(estimate, event.arrival);
    }

    #[test]
    #[should_panic(expected = "not in set A")]
    fn committing_from_b_panics() {
        let p = problem(3);
        let mut state = ScheduleState::new(&p);
        state.commit(ClusterId(1), ClusterId(2));
    }

    #[test]
    #[should_panic(expected = "already in set A")]
    fn committing_to_a_panics() {
        let p = problem(3);
        let mut state = ScheduleState::new(&p);
        state.commit(ClusterId(0), ClusterId(1));
        state.commit(ClusterId(0), ClusterId(1));
    }

    #[test]
    #[should_panic(expected = "incomplete")]
    fn finishing_incomplete_schedule_panics() {
        let p = problem(3);
        let state = ScheduleState::new(&p);
        let _ = state.finish("incomplete");
    }
}
