//! # gridcast-core
//!
//! The paper's primary contribution: **inter-cluster broadcast scheduling
//! heuristics** for hierarchically structured grids.
//!
//! ## The problem
//!
//! A message held by one *root* cluster coordinator must reach every cluster of
//! the grid; once a cluster coordinator has the message and no longer needs to
//! forward it, it broadcasts it inside its own cluster (taking `T_i(m)` time).
//! Finding the schedule of inter-cluster transfers that minimises the overall
//! makespan is NP-complete, so the library implements the heuristics compared in
//! the paper:
//!
//! | heuristic | origin | selection rule |
//! |-----------|--------|----------------|
//! | Flat Tree | ECO / MagPIe | root sends to every cluster sequentially |
//! | FEF       | Bhat et al.  | smallest outgoing latency edge first |
//! | ECEF      | Bhat et al.  | minimise `RT_i + g_ij + L_ij` |
//! | ECEF-LA   | Bhat et al.  | minimise `RT_i + g_ij + L_ij + F_j`, `F_j = min_k (g_jk + L_jk)` |
//! | ECEF-LAt  | this paper   | `F_j = min_k (g_jk + L_jk + T_k)` |
//! | ECEF-LAT  | this paper   | `F_j = max_k (g_jk + L_jk + T_k)` |
//! | BottomUp  | this paper   | `max_j min_i (g_ij + L_ij + T_j)` |
//!
//! plus an exhaustive branch-and-bound search ([`optimal`]) for small grids and
//! the *mixed strategy* recommended in Section 6 ([`mixed`]).
//!
//! ## The formalism
//!
//! Clusters are split into set **A** (already reached) and set **B** (not yet
//! reached). Each scheduling step picks a sender from A and a receiver from B;
//! the receiver moves to A. [`ScheduleState`] maintains the sets together with
//! per-cluster *ready times* (when the message is available / when the
//! coordinator's network interface is free again), so every heuristic shares the
//! exact same timing semantics and only differs in its selection rule.
//!
//! That selection rule is a [`SelectionPolicy`]; the round loop itself lives in
//! one place, the incremental, allocation-free [`ScheduleEngine`] ([`engine`]),
//! which also drives non-broadcast patterns such as the scatter orderings of
//! [`patterns`]. Heuristic structs and [`HeuristicKind::schedule`] are thin
//! wrappers over the engine.
//!
//! ```
//! use gridcast_core::{BroadcastProblem, HeuristicKind};
//! use gridcast_plogp::MessageSize;
//! use gridcast_topology::{grid5000_table3, ClusterId};
//!
//! let grid = grid5000_table3();
//! let problem = BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1));
//! let flat = HeuristicKind::FlatTree.schedule(&problem);
//! let grid_aware = HeuristicKind::EcefLaMax.schedule(&problem);
//! assert!(grid_aware.makespan() <= flat.makespan());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod engine;
pub mod global_minimum;
pub mod heuristics;
pub mod mixed;
pub mod optimal;
pub mod patterns;
pub mod perturb;
pub mod problem;
pub mod schedule;
pub mod state;

pub use engine::{
    adaptive_k_best, adaptive_k_best_for, makespans_sharded, schedule_all_sharded, CandidateTuple,
    CommitLog, EdgeCosts, EngineTelemetry, EngineView, ExchangeSchedule, LoggedCommit,
    LookaheadWorkspace, Objective, ReplayTraits, RowDecay, ScheduleEngine, SelectionPolicy,
    TieBreak, TimedTransfer, Transfer, TransferSet, DEFAULT_K_BEST,
};
pub use global_minimum::{global_minimum, per_heuristic_makespans};
pub use heuristics::{Heuristic, HeuristicKind};
pub use mixed::MixedStrategy;
pub use optimal::{optimal_schedule, OptimalSearch};
pub use patterns::{
    allgather_estimate, allgather_schedule, alltoall_estimate, alltoall_schedule,
    alltoall_transfer_set, AllGatherSchedule, AllToAllSchedule, RelayEvent, RelayGatherProblem,
    RelayGatherSchedule, RelayOrdering, RelayScatterPolicy, RelayScatterProblem, RelaySchedule,
    ScatterOrdering, ScatterProblem, ScatterTailPolicy,
};
pub use perturb::{DeltaDirection, Perturbation, ReplayDelta, DROP_RELAY_FACTOR};
pub use problem::BroadcastProblem;
pub use schedule::{Schedule, ScheduleError, ScheduleEvent};
pub use state::ScheduleState;
