//! The per-instance "global minimum" used by the paper's hit-rate metric.
//!
//! Figure 4 of the paper compares heuristics by *hit rate*: over 10 000 random
//! instances, how often does a heuristic's makespan match the best makespan found
//! by **any** of the evaluated heuristics on that instance? (The true optimum is
//! too expensive at 50 clusters, so the cross-heuristic minimum stands in for
//! it.) This module computes that reference value.

use crate::{BroadcastProblem, HeuristicKind};
use gridcast_plogp::Time;

/// Schedules `problem` with every heuristic in `kinds` and returns the makespans
/// in the same order.
pub fn per_heuristic_makespans(
    problem: &BroadcastProblem,
    kinds: &[HeuristicKind],
) -> Vec<(HeuristicKind, Time)> {
    kinds
        .iter()
        .map(|&kind| (kind, kind.schedule(problem).makespan()))
        .collect()
}

/// The smallest makespan any of the given heuristics achieves on `problem` — the
/// paper's "global minimum" for one simulation iteration.
pub fn global_minimum(problem: &BroadcastProblem, kinds: &[HeuristicKind]) -> Time {
    per_heuristic_makespans(problem, kinds)
        .into_iter()
        .map(|(_, t)| t)
        .min()
        .unwrap_or(Time::ZERO)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    #[test]
    fn global_minimum_is_the_minimum_of_the_per_heuristic_values() {
        let problem = random_problem(10, 5);
        let kinds = HeuristicKind::all();
        let per = per_heuristic_makespans(&problem, &kinds);
        assert_eq!(per.len(), kinds.len());
        let min = per.iter().map(|&(_, t)| t).min().unwrap();
        assert_eq!(global_minimum(&problem, &kinds), min);
    }

    #[test]
    fn global_minimum_never_below_true_optimum() {
        for seed in 0..5u64 {
            let problem = random_problem(5, seed);
            let optimum = crate::optimal_schedule(&problem).unwrap().makespan();
            let gm = global_minimum(&problem, &HeuristicKind::all());
            assert!(gm >= optimum - gridcast_plogp::Time::from_micros(1.0));
        }
    }

    #[test]
    fn restricting_the_heuristic_set_cannot_lower_the_minimum() {
        let problem = random_problem(12, 7);
        let all = global_minimum(&problem, &HeuristicKind::all());
        let family_only = global_minimum(&problem, &HeuristicKind::ecef_family());
        assert!(family_only >= all);
    }

    #[test]
    fn empty_heuristic_set_yields_zero() {
        let problem = random_problem(3, 1);
        assert_eq!(global_minimum(&problem, &[]), Time::ZERO);
    }
}
