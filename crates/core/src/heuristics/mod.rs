//! The scheduling heuristics compared in the paper.

pub mod bottom_up;
pub mod ecef;
pub mod fef;
pub mod flat_tree;

pub use bottom_up::{BottomUp, BottomUpPolicy};
pub use ecef::{Ecef, EcefPolicy, Lookahead};
pub use fef::{FastestEdgeFirst, FefPolicy};
pub use flat_tree::{FlatTree, FlatTreePolicy};

use crate::engine::{with_shared_engine, SelectionPolicy};
use crate::{BroadcastProblem, Schedule};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A broadcast scheduling heuristic: given a problem instance, produce a
/// complete inter-cluster schedule.
pub trait Heuristic {
    /// The display name used by the paper's figures.
    fn name(&self) -> &str;

    /// Produces a schedule for `problem`.
    fn schedule(&self, problem: &BroadcastProblem) -> Schedule;
}

/// The heuristics evaluated by the paper, as a value type convenient for
/// sweeps, benches and serialisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeuristicKind {
    /// Flat tree (ECO / MagPIe baseline): the root contacts every cluster itself.
    FlatTree,
    /// Fastest Edge First (Bhat et al.): smallest latency edge out of set A.
    Fef,
    /// Early Completion Edge First (Bhat et al.): minimise `RT_i + g_ij + L_ij`.
    Ecef,
    /// ECEF with Bhat's lookahead `F_j = min_k (g_jk + L_jk)`.
    EcefLa,
    /// ECEF-LAt (this paper): lookahead `F_j = min_k (g_jk + L_jk + T_k)`.
    EcefLaMin,
    /// ECEF-LAT (this paper): lookahead `F_j = max_k (g_jk + L_jk + T_k)`.
    EcefLaMax,
    /// BottomUp (this paper): `max_j min_i (g_ij + L_ij + T_j)`.
    BottomUp,
}

impl HeuristicKind {
    /// Number of heuristic kinds (the engine sizes its policy store with it).
    pub const COUNT: usize = 7;

    /// The seven heuristics of Figures 1 and 2, in the paper's legend order.
    pub fn all() -> [HeuristicKind; 7] {
        [
            HeuristicKind::FlatTree,
            HeuristicKind::Fef,
            HeuristicKind::Ecef,
            HeuristicKind::EcefLa,
            HeuristicKind::EcefLaMax,
            HeuristicKind::EcefLaMin,
            HeuristicKind::BottomUp,
        ]
    }

    /// The four ECEF-like heuristics of Figures 3 and 4.
    pub fn ecef_family() -> [HeuristicKind; 4] {
        [
            HeuristicKind::Ecef,
            HeuristicKind::EcefLa,
            HeuristicKind::EcefLaMax,
            HeuristicKind::EcefLaMin,
        ]
    }

    /// Display name matching the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            HeuristicKind::FlatTree => "Flat Tree",
            HeuristicKind::Fef => "FEF",
            HeuristicKind::Ecef => "ECEF",
            HeuristicKind::EcefLa => "ECEF-LA",
            HeuristicKind::EcefLaMin => "ECEF-LAt",
            HeuristicKind::EcefLaMax => "ECEF-LAT",
            HeuristicKind::BottomUp => "BottomUp",
        }
    }

    /// Parses a display name (the exact strings [`HeuristicKind::name`]
    /// produces) back into a kind. Case-sensitive by necessity: the paper's
    /// own "ECEF-LAt" (min lookahead) and "ECEF-LAT" (max lookahead) differ
    /// only in the case of the final letter.
    pub fn from_name(name: &str) -> Option<HeuristicKind> {
        HeuristicKind::all().into_iter().find(|k| k.name() == name)
    }

    /// Schedules `problem` with this heuristic, through the thread's shared
    /// [`crate::ScheduleEngine`] (buffer reuse without explicit engine
    /// management; sweeps should hold their own engine and call
    /// [`crate::ScheduleEngine::schedule_all`]).
    pub fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        with_shared_engine(|engine| engine.schedule(problem, *self))
    }

    /// Builds a fresh boxed [`SelectionPolicy`] implementing this heuristic —
    /// for callers composing their own engine drivers; the engine itself
    /// stores the policies as concrete types so the round loop monomorphizes.
    pub fn new_policy(&self) -> Box<dyn SelectionPolicy> {
        match self {
            HeuristicKind::FlatTree => Box::new(FlatTreePolicy::new()),
            HeuristicKind::Fef => Box::new(FefPolicy),
            HeuristicKind::Ecef => Box::new(EcefPolicy::new(Lookahead::None)),
            HeuristicKind::EcefLa => Box::new(EcefPolicy::new(Lookahead::MinEdge)),
            HeuristicKind::EcefLaMin => Box::new(EcefPolicy::new(Lookahead::MinEdgePlusIntra)),
            HeuristicKind::EcefLaMax => Box::new(EcefPolicy::new(Lookahead::MaxEdgePlusIntra)),
            HeuristicKind::BottomUp => Box::new(BottomUpPolicy),
        }
    }

    /// Whether the heuristic is one of the three grid-aware strategies proposed
    /// by the paper (Section 5) as opposed to the prior art of Section 4.
    pub fn is_grid_aware(&self) -> bool {
        matches!(
            self,
            HeuristicKind::EcefLaMin | HeuristicKind::EcefLaMax | HeuristicKind::BottomUp
        )
    }
}

impl fmt::Display for HeuristicKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::{MessageSize, Time};
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    #[test]
    fn every_heuristic_produces_a_valid_schedule() {
        for clusters in [2usize, 3, 5, 10, 25] {
            let problem = random_problem(clusters, clusters as u64);
            for kind in HeuristicKind::all() {
                let schedule = kind.schedule(&problem);
                assert!(
                    schedule.validate(&problem).is_ok(),
                    "{kind} produced an invalid schedule for {clusters} clusters: {:?}",
                    schedule.validate(&problem)
                );
                assert_eq!(schedule.num_transfers(), clusters - 1, "{kind}");
                assert!(schedule.makespan() >= problem.lower_bound(), "{kind}");
                assert_eq!(schedule.heuristic, kind.name());
            }
        }
    }

    #[test]
    fn names_match_the_paper() {
        let names: Vec<&str> = HeuristicKind::all().iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec![
                "Flat Tree",
                "FEF",
                "ECEF",
                "ECEF-LA",
                "ECEF-LAT",
                "ECEF-LAt",
                "BottomUp"
            ]
        );
        assert_eq!(HeuristicKind::BottomUp.to_string(), "BottomUp");
    }

    #[test]
    fn from_name_round_trips_and_stays_case_sensitive() {
        for kind in HeuristicKind::all() {
            assert_eq!(HeuristicKind::from_name(kind.name()), Some(kind));
        }
        // The two paper variants differ only by case — no fuzzy matching.
        assert_eq!(
            HeuristicKind::from_name("ECEF-LAt"),
            Some(HeuristicKind::EcefLaMin)
        );
        assert_eq!(
            HeuristicKind::from_name("ECEF-LAT"),
            Some(HeuristicKind::EcefLaMax)
        );
        assert_eq!(HeuristicKind::from_name("ecef-lat"), None);
        assert_eq!(HeuristicKind::from_name("nope"), None);
    }

    #[test]
    fn grid_aware_flags() {
        assert!(HeuristicKind::EcefLaMin.is_grid_aware());
        assert!(HeuristicKind::EcefLaMax.is_grid_aware());
        assert!(HeuristicKind::BottomUp.is_grid_aware());
        assert!(!HeuristicKind::Ecef.is_grid_aware());
        assert!(!HeuristicKind::FlatTree.is_grid_aware());
        assert_eq!(HeuristicKind::ecef_family().len(), 4);
    }

    #[test]
    fn ecef_family_beats_flat_tree_on_average() {
        // Statistical sanity check on a handful of random instances: the average
        // makespan of ECEF-like schedules must not exceed the flat tree's.
        let mut flat_total = Time::ZERO;
        let mut ecef_total = Time::ZERO;
        for seed in 0..50u64 {
            let problem = random_problem(8, seed);
            flat_total += HeuristicKind::FlatTree.schedule(&problem).makespan();
            ecef_total += HeuristicKind::Ecef.schedule(&problem).makespan();
        }
        assert!(
            ecef_total < flat_total,
            "ECEF ({ecef_total}) should beat Flat Tree ({flat_total}) on average"
        );
    }

    #[test]
    fn two_cluster_grids_are_handled() {
        let problem = random_problem(2, 99);
        for kind in HeuristicKind::all() {
            let schedule = kind.schedule(&problem);
            assert_eq!(schedule.num_transfers(), 1);
            assert!(schedule.validate(&problem).is_ok());
        }
    }
}
