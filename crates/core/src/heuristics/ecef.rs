//! The ECEF family: Early Completion Edge First and its lookahead variants
//! (Sections 4.3, 4.4, 5.1 and 5.2).

use crate::engine::{
    with_shared_engine, EngineView, LookaheadWorkspace, ReplayTraits, RowDecay, SelectionPolicy,
};
use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, Schedule};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;
use serde::{Deserialize, Serialize};

/// The lookahead function `F_j` attached to a candidate receiver `j`.
///
/// ECEF selects the pair minimising `RT_i + g_ij + L_ij`; the lookahead variants
/// add `F_j` to that sum so that the chosen receiver is also *useful* once it
/// becomes a sender. The paper's two grid-aware variants differ from Bhat's
/// original by folding the intra-cluster broadcast time `T_k` of the clusters
/// still waiting into the lookahead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Lookahead {
    /// No lookahead: plain ECEF.
    None,
    /// Bhat's ECEF-LA: `F_j = min_{k ∈ B} (g_jk + L_jk)` — how quickly `j` could
    /// serve its best remaining cluster.
    MinEdge,
    /// Bhat's alternative lookahead: the *average* transfer time from `j` to the
    /// remaining clusters (mentioned in Section 4.4 as one of the other options).
    AvgEdge,
    /// ECEF-LAt (Section 5.1): `F_j = min_{k ∈ B} (g_jk + L_jk + T_k)` — the
    /// receiver should be able to finish some remaining cluster, *including its
    /// internal broadcast*, quickly.
    MinEdgePlusIntra,
    /// ECEF-LAT (Section 5.2): `F_j = max_{k ∈ B} (g_jk + L_jk + T_k)` — the
    /// selection accounts for the *worst* remaining obligation, which steers the
    /// schedule towards serving slow clusters early and overlapping their long
    /// internal broadcasts with the rest of the operation.
    MaxEdgePlusIntra,
}

impl Lookahead {
    /// Evaluates `F_j` for candidate receiver `j` given the clusters still in B.
    ///
    /// `remaining` must not include `j` itself; if no other cluster remains the
    /// lookahead is zero (the last receiver needs no forwarding ability).
    ///
    /// This is the direct `O(|remaining|)` definition; [`EcefPolicy`] evaluates
    /// the same quantity incrementally inside the engine. It stays public as
    /// the executable specification of `F_j` (and as the reference the parity
    /// property tests compare against).
    pub fn evaluate(
        &self,
        problem: &BroadcastProblem,
        j: ClusterId,
        remaining: &[ClusterId],
    ) -> Time {
        if remaining.is_empty() || matches!(self, Lookahead::None) {
            return Time::ZERO;
        }
        let edge = |k: ClusterId| problem.transfer(j, k);
        match self {
            Lookahead::None => Time::ZERO,
            Lookahead::MinEdge => remaining.iter().map(|&k| edge(k)).min().unwrap(),
            Lookahead::AvgEdge => {
                let total: Time = remaining.iter().map(|&k| edge(k)).sum();
                total / remaining.len() as f64
            }
            Lookahead::MinEdgePlusIntra => remaining
                .iter()
                .map(|&k| edge(k) + problem.intra_time(k))
                .min()
                .unwrap(),
            Lookahead::MaxEdgePlusIntra => remaining
                .iter()
                .map(|&k| edge(k) + problem.intra_time(k))
                .max()
                .unwrap(),
        }
    }
}

/// Early Completion Edge First, optionally with a lookahead function.
///
/// At each round the heuristic selects the (sender, receiver) pair minimising
///
/// ```text
/// RT_i + g_ij(m) + L_ij + F_j
/// ```
///
/// where `RT_i` is the sender's ready time (when its coordinator can start the
/// transfer) and `F_j` the configured [`Lookahead`]. The receiver then joins set
/// A with its arrival time as ready time.
#[derive(Debug, Clone, Copy)]
pub struct Ecef {
    lookahead: Lookahead,
    name: &'static str,
}

impl Ecef {
    /// Plain ECEF (no lookahead).
    pub fn plain() -> Self {
        Ecef {
            lookahead: Lookahead::None,
            name: "ECEF",
        }
    }

    /// ECEF with the given lookahead function.
    pub fn with_lookahead(lookahead: Lookahead) -> Self {
        let name = match lookahead {
            Lookahead::None => "ECEF",
            Lookahead::MinEdge => "ECEF-LA",
            Lookahead::AvgEdge => "ECEF-LA(avg)",
            Lookahead::MinEdgePlusIntra => "ECEF-LAt",
            Lookahead::MaxEdgePlusIntra => "ECEF-LAT",
        };
        Ecef { lookahead, name }
    }

    /// The configured lookahead.
    pub fn lookahead(&self) -> Lookahead {
        self.lookahead
    }
}

impl Heuristic for Ecef {
    fn name(&self) -> &str {
        self.name
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        let mut policy = EcefPolicy::new(self.lookahead);
        with_shared_engine(|engine| engine.schedule_with(problem, &mut policy))
    }
}

/// [`SelectionPolicy`] for the whole ECEF family: the edge score is the
/// completion estimate `RT_i + g_ij + L_ij`, and the configured [`Lookahead`]
/// enters as the engine's receiver-level bias `F_j`.
///
/// The min/max lookaheads are evaluated incrementally through a **dense bias
/// cache**: `F_j` and the candidate cluster attaining it (`watch[j]`). `F_j`
/// can only change when that candidate leaves B, so
/// [`SelectionPolicy::on_commit`] refreshes exactly the receivers watching
/// the departed cluster (found with one sequential scan) and the per-round
/// selection reads biases from a flat array. A refresh recomputes the
/// extremum with one pass over the engine's compacted B list
/// ([`EngineView::receivers`]) — no sorted candidate rows are materialised,
/// because *which* candidate attains the extremum is irrelevant to the bias
/// value: among tied candidates any choice of `watch[j]` yields the same
/// float and a refresh no later than the value can change. With roughly one
/// watcher per departing cluster this costs `O(|B|)` once per commit on
/// average, strictly cheaper than building and maintaining `n` sorted rows.
/// The average lookahead is still summed in ascending cluster order so the
/// floating-point result stays bit-identical to the original
/// implementation.
#[derive(Debug, Clone)]
pub struct EcefPolicy {
    lookahead: Lookahead,
    name: &'static str,
    /// Dense per-receiver lookahead values (`F_j`).
    bias: Vec<Time>,
    /// The candidate cluster whose departure invalidates `bias[j]`.
    watch: Vec<u32>,
}

impl EcefPolicy {
    /// Creates the policy for one lookahead variant.
    pub fn new(lookahead: Lookahead) -> Self {
        EcefPolicy {
            lookahead,
            name: Ecef::with_lookahead(lookahead).name,
            bias: Vec::new(),
            watch: Vec::new(),
        }
    }

    /// Recomputes the cached `F_j` of `j` with one dense pass over the
    /// engine's current B list (which no longer contains departed clusters,
    /// so no aliveness test is needed — only `j` itself is skipped).
    ///
    /// Ties are resolved by list position; that choice is unobservable in the
    /// schedule because every tied candidate carries the same value, and the
    /// cached bias is refreshed when the watched one departs — at which point
    /// any remaining tied candidate still attains the unchanged extremum.
    #[inline]
    fn refresh_bias(&mut self, view: &EngineView<'_>, j: usize) {
        let mut watch = u32::MAX;
        let mut best = Time::ZERO;
        if matches!(self.lookahead, Lookahead::MaxEdgePlusIntra) {
            for &k in view.receivers() {
                if k as usize == j {
                    continue;
                }
                let v = self.lookahead_value(view, ClusterId(j), ClusterId(k as usize));
                if watch == u32::MAX || v > best {
                    best = v;
                    watch = k;
                }
            }
        } else {
            best = Time::INFINITY;
            for &k in view.receivers() {
                if k as usize == j {
                    continue;
                }
                let v = self.lookahead_value(view, ClusterId(j), ClusterId(k as usize));
                if v < best {
                    best = v;
                    watch = k;
                }
            }
        }
        if watch == u32::MAX {
            self.watch[j] = u32::MAX;
            self.bias[j] = Time::ZERO;
        } else {
            self.watch[j] = watch;
            self.bias[j] = best;
        }
    }

    /// The lookahead value of candidate `k` seen from receiver `j`.
    ///
    /// Reads the engine's flat cost matrix through the view so that the row
    /// build in [`SelectionPolicy::reset`] streams over contiguous memory; on
    /// the uniform-price path `view.transfer` is bit-identical to
    /// `problem.transfer`.
    #[inline]
    fn lookahead_value(&self, view: &EngineView<'_>, j: ClusterId, k: ClusterId) -> Time {
        match self.lookahead {
            Lookahead::MinEdge => view.transfer(j, k),
            Lookahead::MinEdgePlusIntra | Lookahead::MaxEdgePlusIntra => {
                view.transfer(j, k) + view.problem().intra_time(k)
            }
            Lookahead::None | Lookahead::AvgEdge => Time::ZERO,
        }
    }

    fn uses_bias_cache(&self) -> bool {
        matches!(
            self.lookahead,
            Lookahead::MinEdge | Lookahead::MinEdgePlusIntra | Lookahead::MaxEdgePlusIntra
        )
    }
}

impl SelectionPolicy for EcefPolicy {
    fn name(&self) -> &str {
        self.name
    }

    fn reset(&mut self, view: &EngineView<'_>, _workspace: &mut LookaheadWorkspace) {
        if !self.uses_bias_cache() {
            return;
        }
        let n = view.problem().num_clusters();
        self.bias.clear();
        self.bias.resize(n, Time::ZERO);
        self.watch.clear();
        self.watch.resize(n, u32::MAX);
        // Initially B is everything but the root — exactly the engine's list.
        for i in 0..view.receivers().len() {
            let j = view.receivers()[i] as usize;
            self.refresh_bias(view, j);
        }
    }

    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time {
        view.completion_estimate(sender, receiver)
    }

    fn edge_score_offset(
        &self,
        _problem: &BroadcastProblem,
        _receiver: ClusterId,
        min_incoming_transfer: Time,
    ) -> Time {
        // Every candidate edge costs at least the receiver's cheapest incoming
        // transfer on top of the sender's ready time.
        min_incoming_transfer
    }

    fn sender_score_offset(
        &self,
        _problem: &BroadcastProblem,
        _sender: ClusterId,
        min_outgoing_transfer: Time,
    ) -> Time {
        // Dual bound: the completion estimate is `fl(RT_i + (g + L))` with
        // `g + L >= min_outgoing`, so every score this sender can produce is
        // at least `fl(RT_i + min_outgoing)` (rounded addition is monotone).
        min_outgoing_transfer
    }

    fn row_decay(&self) -> RowDecay {
        // The lookahead variants chase receivers whose repairs bottom out
        // deeper as n grows (aggregate repair rate 0.67 at 1000 clusters at
        // K = 4); plain ECEF's repairs stay shallow.
        if matches!(self.lookahead, Lookahead::None) {
            RowDecay::Gradual
        } else {
            RowDecay::Steep
        }
    }

    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        let problem = view.problem();
        match self.lookahead {
            Lookahead::None => Time::ZERO,
            Lookahead::AvgEdge => {
                // Recomputed in ascending cluster order, exactly like the
                // original `Lookahead::evaluate`, to keep the sum bit-identical.
                let mut total = Time::ZERO;
                let mut count = 0usize;
                for k in problem.cluster_ids() {
                    if k != receiver && view.in_b(k) {
                        total += problem.transfer(receiver, k);
                        count += 1;
                    }
                }
                if count == 0 {
                    Time::ZERO
                } else {
                    total / count as f64
                }
            }
            Lookahead::MinEdge | Lookahead::MinEdgePlusIntra | Lookahead::MaxEdgePlusIntra => {
                // Served from the dense cache maintained by `on_commit`.
                let _ = workspace;
                self.bias[receiver.index()]
            }
        }
    }

    fn uses_receiver_bias(&self) -> bool {
        !matches!(self.lookahead, Lookahead::None)
    }

    fn receiver_biases(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        receivers: &[u32],
        out: &mut Vec<Time>,
    ) {
        match self.lookahead {
            Lookahead::None => {
                out.clear();
                out.resize(receivers.len(), Time::ZERO);
            }
            Lookahead::AvgEdge => {
                out.clear();
                for &r in receivers {
                    out.push(self.receiver_bias(view, workspace, ClusterId(r as usize)));
                }
            }
            Lookahead::MinEdge | Lookahead::MinEdgePlusIntra | Lookahead::MaxEdgePlusIntra => {
                // One sequential sweep over the dense cache — no per-receiver
                // virtual dispatch, no row-cursor chasing in the hot loop.
                out.clear();
                out.extend(receivers.iter().map(|&r| self.bias[r as usize]));
            }
        }
    }

    fn on_commit(
        &mut self,
        view: &EngineView<'_>,
        workspace: &mut LookaheadWorkspace,
        _sender: ClusterId,
        receiver: ClusterId,
    ) {
        let _ = workspace;
        if !self.uses_bias_cache() {
            return;
        }
        // `F_j` only changes when the candidate attaining it departs from B:
        // refresh exactly the receivers that watched the committed one.
        let departed = receiver.index() as u32;
        for j in 0..self.watch.len() {
            if self.watch[j] == departed && view.in_b(ClusterId(j)) {
                self.refresh_bias(view, j);
            }
        }
    }

    fn replay_traits(&self) -> ReplayTraits {
        ReplayTraits {
            gap_blind: false,
            // The completion estimate is `RT_i + g_ij + L_ij` and every
            // lookahead is an extremum or average over `g + L (+ T)` terms:
            // all monotone non-decreasing in every gap entry.
            gap_monotone: true,
            replay_bias_exact: true,
        }
    }

    /// Cache-free `F_j`, bit-identical to the cached path: the min/max
    /// variants recompute the extremum with the same pass `refresh_bias`
    /// runs (the cached value is refreshed no later than it can change, so a
    /// fresh extremum over the current B carries the same float), and the
    /// average variant uses the exact ascending-order sum of
    /// [`SelectionPolicy::receiver_bias`], which never caches.
    fn replay_bias(&self, view: &EngineView<'_>, receiver: ClusterId) -> Time {
        let j = receiver.index();
        match self.lookahead {
            Lookahead::None => Time::ZERO,
            Lookahead::AvgEdge => {
                let problem = view.problem();
                let mut total = Time::ZERO;
                let mut count = 0usize;
                for k in problem.cluster_ids() {
                    if k != receiver && view.in_b(k) {
                        total += problem.transfer(receiver, k);
                        count += 1;
                    }
                }
                if count == 0 {
                    Time::ZERO
                } else {
                    total / count as f64
                }
            }
            Lookahead::MaxEdgePlusIntra => {
                let mut any = false;
                let mut best = Time::ZERO;
                for &k in view.receivers() {
                    if k as usize == j {
                        continue;
                    }
                    let v = self.lookahead_value(view, receiver, ClusterId(k as usize));
                    if !any || v > best {
                        best = v;
                        any = true;
                    }
                }
                if any {
                    best
                } else {
                    Time::ZERO
                }
            }
            Lookahead::MinEdge | Lookahead::MinEdgePlusIntra => {
                let mut any = false;
                let mut best = Time::INFINITY;
                for &k in view.receivers() {
                    if k as usize == j {
                        continue;
                    }
                    let v = self.lookahead_value(view, receiver, ClusterId(k as usize));
                    if v < best {
                        best = v;
                        any = true;
                    }
                }
                if any {
                    best
                } else {
                    Time::ZERO
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::SquareMatrix;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    /// 3-cluster instance where relaying beats root-only sending: the root's
    /// second send would have to wait for its first gap, while cluster 1 can
    /// forward immediately after receiving.
    fn relay_problem() -> BroadcastProblem {
        let mut latency = SquareMatrix::filled(3, ms(1.0));
        let mut gap = SquareMatrix::filled(3, ms(100.0));
        for i in 0..3 {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        // Make 1 → 2 cheap (20 ms) so that relaying through 1 wins.
        gap[(1, 2)] = ms(20.0);
        gap[(2, 1)] = ms(20.0);
        BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 3],
        )
    }

    #[test]
    fn ecef_prefers_the_earliest_completion() {
        let problem = relay_problem();
        let schedule = Ecef::plain().schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        // First transfer: 0 → 1 (both edges from the root cost the same, the
        // first receiver in iteration order wins).
        assert_eq!(schedule.events[0].receiver, ClusterId(1));
        // Second transfer: relaying 1 → 2 completes at 101 + 21 = 122 ms, while
        // 0 → 2 would complete at 100 + 101 = 201 ms; ECEF must pick the relay.
        assert_eq!(schedule.events[1].sender, ClusterId(1));
        assert_eq!(schedule.events[1].receiver, ClusterId(2));
        assert!(schedule
            .makespan()
            .approx_eq(ms(122.0), Time::from_micros(1.0)));
    }

    #[test]
    fn lookahead_avoids_dead_end_receivers() {
        // Two candidate receivers: cluster 1 is slightly cheaper to reach but is
        // a terrible forwarder (its outgoing edges are huge); cluster 2 costs a
        // bit more but forwards cheaply. Plain ECEF grabs cluster 1 first; the
        // lookahead variant must start with cluster 2.
        let mut latency = SquareMatrix::filled(4, ms(1.0));
        let mut gap = SquareMatrix::filled(4, ms(100.0));
        for i in 0..4 {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        // Reaching 1 is marginally cheaper than reaching 2.
        gap[(0, 1)] = ms(90.0);
        gap[(0, 2)] = ms(95.0);
        // 1 forwards terribly, 2 forwards well.
        gap[(1, 2)] = ms(500.0);
        gap[(1, 3)] = ms(500.0);
        gap[(2, 3)] = ms(30.0);
        gap[(2, 1)] = ms(30.0);
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 4],
        );

        let plain = Ecef::plain().schedule(&problem);
        let lookahead = Ecef::with_lookahead(Lookahead::MinEdge).schedule(&problem);
        assert_eq!(plain.events[0].receiver, ClusterId(1));
        assert_eq!(lookahead.events[0].receiver, ClusterId(2));
        assert!(lookahead.makespan() <= plain.makespan());
        assert!(lookahead.validate(&problem).is_ok());
    }

    #[test]
    fn intra_aware_lookaheads_account_for_cluster_broadcast_times() {
        // Clusters 1 and 2 are fast, cluster 3 needs a huge internal broadcast;
        // every inter-cluster link is identical. ECEF-LAT (max lookahead) must
        // contact the slow cluster first so its internal broadcast overlaps with
        // the remaining wide-area traffic; ECEF-LAt keeps the fast-first
        // behaviour because its lookahead only rewards cheap *future* targets.
        let mut latency = SquareMatrix::filled(4, ms(1.0));
        let mut gap = SquareMatrix::filled(4, ms(100.0));
        for i in 0..4 {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO, Time::ZERO, Time::ZERO, ms(1000.0)],
        );
        let lat_max = Ecef::with_lookahead(Lookahead::MaxEdgePlusIntra).schedule(&problem);
        assert_eq!(lat_max.events[0].receiver, ClusterId(3));
        let lat_min = Ecef::with_lookahead(Lookahead::MinEdgePlusIntra).schedule(&problem);
        assert_eq!(lat_min.events[0].receiver, ClusterId(1));
        // Serving the slow cluster first never hurts here.
        assert!(lat_max.makespan() <= lat_min.makespan());
        assert!(lat_max.validate(&problem).is_ok());
        assert!(lat_min.validate(&problem).is_ok());
    }

    #[test]
    fn avg_lookahead_is_between_min_and_max_behaviour() {
        let problem = relay_problem();
        let avg = Ecef::with_lookahead(Lookahead::AvgEdge).schedule(&problem);
        assert!(avg.validate(&problem).is_ok());
        assert_eq!(avg.heuristic, "ECEF-LA(avg)");
    }

    #[test]
    fn names_follow_the_paper() {
        assert_eq!(Ecef::plain().name(), "ECEF");
        assert_eq!(Ecef::with_lookahead(Lookahead::MinEdge).name(), "ECEF-LA");
        assert_eq!(
            Ecef::with_lookahead(Lookahead::MinEdgePlusIntra).name(),
            "ECEF-LAt"
        );
        assert_eq!(
            Ecef::with_lookahead(Lookahead::MaxEdgePlusIntra).name(),
            "ECEF-LAT"
        );
        assert_eq!(
            Ecef::with_lookahead(Lookahead::MinEdge).lookahead(),
            Lookahead::MinEdge
        );
    }

    #[test]
    fn last_receiver_has_zero_lookahead() {
        // With a single remaining receiver every lookahead evaluates to zero, so
        // all variants agree on the final transfer.
        let problem = relay_problem();
        for lookahead in [
            Lookahead::None,
            Lookahead::MinEdge,
            Lookahead::AvgEdge,
            Lookahead::MinEdgePlusIntra,
            Lookahead::MaxEdgePlusIntra,
        ] {
            let f = lookahead.evaluate(&problem, ClusterId(2), &[]);
            assert_eq!(f, Time::ZERO, "{lookahead:?}");
        }
    }
}
