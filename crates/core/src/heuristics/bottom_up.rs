//! The BottomUp heuristic (Section 5.3).

use crate::engine::{
    with_shared_engine, EngineView, Objective, ReplayTraits, RowDecay, SelectionPolicy,
};
use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, Schedule};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;

/// The third grid-aware heuristic proposed by the paper.
///
/// Unlike the ECEF family (min-min / min-max strategies that favour fast
/// clusters), BottomUp applies a **max-min** rule: at every round it considers,
/// for every waiting cluster `j`, the best possible way to serve it —
/// `min_{i ∈ A} (g_ij + L_ij + T_j)` — and then selects the cluster whose best
/// service is *worst*:
///
/// ```text
/// max_{j ∈ B} ( min_{i ∈ A} ( g_ij(m) + L_ij + T_j ) )
/// ```
///
/// The slowest clusters (large transfer cost and/or long internal broadcast) are
/// therefore contacted as early as possible, so their internal broadcasts overlap
/// with the rest of the schedule, while each transfer still uses the cheapest
/// available sender — releasing senders early for the next rounds.
#[derive(Debug, Clone, Copy, Default)]
pub struct BottomUp;

impl Heuristic for BottomUp {
    fn name(&self) -> &str {
        "BottomUp"
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        with_shared_engine(|engine| engine.schedule_with(problem, &mut BottomUpPolicy))
    }
}

/// [`SelectionPolicy`] for BottomUp: each candidate edge is scored by its full
/// service cost `RT_i + g_ij + L_ij + T_j` (ready times included, so "cheapest
/// available sender" accounts for senders still busy with a previous transfer)
/// and the cross-receiver objective is **maximised** — the engine's max-min
/// mode.
#[derive(Debug, Clone, Copy, Default)]
pub struct BottomUpPolicy;

impl SelectionPolicy for BottomUpPolicy {
    fn name(&self) -> &str {
        "BottomUp"
    }

    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time {
        view.completion_estimate(sender, receiver) + view.problem().intra_time(receiver)
    }

    fn edge_score_offset(
        &self,
        _problem: &BroadcastProblem,
        _receiver: ClusterId,
        min_incoming_transfer: Time,
    ) -> Time {
        // Every candidate edge costs at least the receiver's cheapest incoming
        // transfer on top of the sender's ready time.
        min_incoming_transfer
    }

    fn edge_score_post_offset(&self, problem: &BroadcastProblem, receiver: ClusterId) -> Time {
        // The receiver's intra-cluster broadcast is added to every score
        // *after* the completion estimate's rounding — exactly the shape of
        // the engine's two-step bound `fl(fl(t + c_j) + d_j)`. Folding it
        // into the pre-offset instead would not be float-safe (addition is
        // monotone but not associative under rounding); as a separate
        // post-rounding component it tightens the rescan walk's retirement
        // bound by the full intra time.
        problem.intra_time(receiver)
    }

    fn sender_score_offset(
        &self,
        _problem: &BroadcastProblem,
        _sender: ClusterId,
        min_outgoing_transfer: Time,
    ) -> Time {
        // The completion estimate is `fl(RT_i + (g + L))` with
        // `g + L >= min_outgoing`, and the intra time is added after that
        // rounding — exactly the engine's two-step sender bound
        // `fl(fl(t + r_s) + d_j)`.
        min_outgoing_transfer
    }

    fn row_decay(&self) -> RowDecay {
        // The max-min objective chases the *worst*-served receiver, whose
        // repairs bottom out deepest: the telemetry sweep shows BottomUp's
        // repair rate decaying hardest of all policies with problem size.
        RowDecay::Steep
    }

    fn objective(&self) -> Objective {
        Objective::Maximize
    }

    fn uses_receiver_bias(&self) -> bool {
        false
    }

    fn replay_traits(&self) -> ReplayTraits {
        ReplayTraits {
            gap_blind: false,
            // Scores grow with gaps, but the *maximised* objective means a
            // worsening delta can flip selections in either direction — the
            // engine's replay therefore keeps BottomUp in checked mode
            // (replay until perturbed state enters A), which `gap_monotone`
            // alone does not override.
            gap_monotone: true,
            replay_bias_exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::SquareMatrix;

    fn ms(v: f64) -> Time {
        Time::from_millis(v)
    }

    fn problem_with_intra(intra: Vec<Time>) -> BroadcastProblem {
        let n = intra.len();
        let mut latency = SquareMatrix::filled(n, ms(1.0));
        let mut gap = SquareMatrix::filled(n, ms(100.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(ClusterId(0), MessageSize::from_mib(1), latency, gap, intra)
    }

    #[test]
    fn slowest_cluster_is_served_first() {
        // Cluster 3 has by far the longest internal broadcast; BottomUp must
        // contact it in the very first round.
        let problem = problem_with_intra(vec![Time::ZERO, ms(50.0), ms(100.0), ms(2000.0)]);
        let schedule = BottomUp.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        assert_eq!(schedule.events[0].receiver, ClusterId(3));
    }

    #[test]
    fn cheapest_available_sender_is_used() {
        // After the first round two senders exist; the second round must use the
        // one that can complete the transfer earlier, not blindly the root.
        let n = 3;
        let mut latency = SquareMatrix::filled(n, ms(1.0));
        let mut gap = SquareMatrix::filled(n, ms(100.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        // Cluster 1 → 2 is much cheaper than 0 → 2.
        gap[(1, 2)] = ms(10.0);
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO, Time::ZERO, ms(300.0)],
        );
        let schedule = BottomUp.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        // Round 1: cluster 2 (largest T + transfer) is served by the root.
        assert_eq!(schedule.events[0].receiver, ClusterId(2));
        // Round 2: cluster 1 served by whoever is cheapest — the root is busy
        // until 100 ms, and 2 only becomes ready at 201 ms, so the root it is.
        assert_eq!(schedule.events[1].sender, ClusterId(0));
        assert_eq!(schedule.events[1].receiver, ClusterId(1));
    }

    #[test]
    fn beats_fef_when_slow_clusters_dominate() {
        // The paper's observation (Figure 1): accounting for slow clusters can
        // matter more than pure interconnection speed. Build an instance with one
        // very slow cluster that FEF (latency-greedy) serves last.
        let n = 5;
        let mut latency = SquareMatrix::filled(n, ms(1.0));
        let mut gap = SquareMatrix::filled(n, ms(100.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        // The slow cluster (4) also has the largest latency from everyone, so a
        // latency-greedy order reaches it last.
        for i in 0..4 {
            latency[(i, 4)] = ms(14.0);
            latency[(4, i)] = ms(14.0);
        }
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO, ms(20.0), ms(20.0), ms(20.0), ms(2500.0)],
        );
        let bottom_up = BottomUp.schedule(&problem).makespan();
        let fef = crate::heuristics::FastestEdgeFirst
            .schedule(&problem)
            .makespan();
        assert!(
            bottom_up < fef,
            "BottomUp ({bottom_up}) should beat FEF ({fef}) when a slow cluster dominates"
        );
    }
}
