//! The Flat Tree baseline (Section 4.1).

use crate::engine::{
    with_shared_engine, EngineView, LookaheadWorkspace, ReplayTraits, SelectionPolicy,
};
use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, Schedule};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;

/// The strategy used by the ECO and MagPIe libraries: the root coordinator sends
/// the message to every other cluster coordinator itself, sequentially, in the
/// order the clusters are listed — regardless of link speeds and regardless of
/// the other potential senders that appear in set A along the way.
///
/// The paper uses it as the baseline that every other heuristic must beat; its
/// only virtues are simplicity and a negligible scheduling cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatTree;

impl Heuristic for FlatTree {
    fn name(&self) -> &str {
        "Flat Tree"
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        with_shared_engine(|engine| engine.schedule_with(problem, &mut FlatTreePolicy::new()))
    }
}

/// [`SelectionPolicy`] expressing the flat tree in the engine's formalism: only
/// edges leaving the root are admissible (everything else scores infinity), and
/// with all objectives equal the receiver tie-break walks cluster ids in order
/// — the "depends on how the clusters list is arranged" behaviour the paper
/// criticises.
#[derive(Debug, Clone, Copy, Default)]
pub struct FlatTreePolicy {
    root: ClusterId,
}

impl FlatTreePolicy {
    /// Creates the policy; the root is captured at [`SelectionPolicy::reset`].
    pub fn new() -> Self {
        FlatTreePolicy::default()
    }
}

impl SelectionPolicy for FlatTreePolicy {
    fn name(&self) -> &str {
        "Flat Tree"
    }

    fn reset(&mut self, view: &EngineView<'_>, _workspace: &mut LookaheadWorkspace) {
        self.root = view.problem().root;
    }

    fn edge_score(&self, _view: &EngineView<'_>, sender: ClusterId, _receiver: ClusterId) -> Time {
        if sender == self.root {
            Time::ZERO
        } else {
            Time::INFINITY
        }
    }

    fn sender_time_sensitive(&self) -> bool {
        false
    }

    fn uses_receiver_bias(&self) -> bool {
        false
    }

    fn replay_traits(&self) -> ReplayTraits {
        ReplayTraits {
            // Constant scores (root or not): no perturbed quantity is ever
            // read, so every logged selection stands verbatim.
            gap_blind: true,
            gap_monotone: true,
            replay_bias_exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::{MessageSize, Time};
    use gridcast_topology::{ClusterId, SquareMatrix};

    fn uniform_problem(n: usize, root: usize) -> BroadcastProblem {
        let mut latency = SquareMatrix::filled(n, Time::from_millis(2.0));
        let mut gap = SquareMatrix::filled(n, Time::from_millis(100.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(
            ClusterId(root),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; n],
        )
    }

    #[test]
    fn root_sends_everything_sequentially() {
        let problem = uniform_problem(5, 0);
        let schedule = FlatTree.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        // Every event is sent by the root.
        assert!(schedule.events.iter().all(|e| e.sender == ClusterId(0)));
        // The k-th transfer starts after k gaps: last arrival = 4·g + g + L... i.e.
        // start of 4th = 3 * 100 ms, arrival = 300 + 102 = 402 ms.
        let last = schedule.events.last().unwrap();
        let eps = Time::from_micros(1.0);
        assert!(last.start.approx_eq(Time::from_millis(300.0), eps));
        assert!(last.arrival.approx_eq(Time::from_millis(402.0), eps));
        assert!(schedule.makespan().approx_eq(Time::from_millis(402.0), eps));
    }

    #[test]
    fn works_with_non_zero_root() {
        let problem = uniform_problem(4, 2);
        let schedule = FlatTree.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        assert!(schedule.events.iter().all(|e| e.sender == ClusterId(2)));
        assert_eq!(schedule.num_transfers(), 3);
    }

    #[test]
    fn makespan_grows_linearly_with_cluster_count() {
        // The paper's key criticism: with a flat tree the completion time grows
        // linearly with the number of clusters.
        let m5 = FlatTree.schedule(&uniform_problem(5, 0)).makespan();
        let m10 = FlatTree.schedule(&uniform_problem(10, 0)).makespan();
        let m20 = FlatTree.schedule(&uniform_problem(20, 0)).makespan();
        let step1 = m10 - m5;
        let step2 = m20 - m10;
        // 5 extra clusters cost ~5 gaps; 10 extra ~10 gaps.
        assert!((step1.as_millis() - 500.0).abs() < 1.0);
        assert!((step2.as_millis() - 1000.0).abs() < 1.0);
    }
}
