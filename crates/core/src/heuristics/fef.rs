//! Fastest Edge First (Section 4.2).

use crate::engine::{with_shared_engine, EngineView, ReplayTraits, SelectionPolicy, TieBreak};
use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, Schedule};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;

/// Bhat et al.'s *Fastest Edge First* heuristic.
///
/// Every link `i → j` carries an edge weight `T_ij`; as in the paper (and in
/// Bhat's original formulation) the weight is the **communication latency**
/// between the two coordinators. At every round the pair with the smallest
/// weight from set A to set B is selected, the receiver joins A, and the
/// process repeats — a greedy strategy that maximises the number of senders but
/// ignores both message transmission times (gaps) and intra-cluster broadcast
/// costs, which is why the paper finds it underwhelming on grids.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestEdgeFirst;

impl Heuristic for FastestEdgeFirst {
    fn name(&self) -> &str {
        "FEF"
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        with_shared_engine(|engine| engine.schedule_with(problem, &mut FefPolicy))
    }
}

/// [`SelectionPolicy`] for Fastest Edge First: the edge score is the static
/// link latency, so sender ready times never invalidate the engine's candidate
/// cache. The sender-then-receiver tie-break mirrors the original
/// sender-outer/receiver-inner scan.
#[derive(Debug, Clone, Copy, Default)]
pub struct FefPolicy;

impl SelectionPolicy for FefPolicy {
    fn name(&self) -> &str {
        "FEF"
    }

    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time {
        view.problem().latency(sender, receiver)
    }

    fn tie_break(&self) -> TieBreak {
        TieBreak::SenderThenReceiver
    }

    fn sender_time_sensitive(&self) -> bool {
        false
    }

    fn uses_receiver_bias(&self) -> bool {
        false
    }

    fn replay_traits(&self) -> ReplayTraits {
        ReplayTraits {
            // Latency-only scores: perturbations scale gaps, never latencies,
            // so a logged FEF selection is valid under any gap delta.
            gap_blind: true,
            gap_monotone: true,
            replay_bias_exact: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::{MessageSize, Time};
    use gridcast_topology::SquareMatrix;

    /// 4 clusters. Latencies from the root: 1 ms to C1, 5 ms to C2, 9 ms to C3;
    /// C1–C2 is 2 ms, C1–C3 is 3 ms, C2–C3 is 1 ms. All gaps equal.
    fn problem() -> BroadcastProblem {
        let l = |ms: f64| Time::from_millis(ms);
        let latency = SquareMatrix::from_rows(
            4,
            vec![
                l(0.0),
                l(1.0),
                l(5.0),
                l(9.0),
                l(1.0),
                l(0.0),
                l(2.0),
                l(3.0),
                l(5.0),
                l(2.0),
                l(0.0),
                l(1.0),
                l(9.0),
                l(3.0),
                l(1.0),
                l(0.0),
            ],
        );
        let mut gap = SquareMatrix::filled(4, Time::from_millis(100.0));
        for i in 0..4 {
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 4],
        )
    }

    #[test]
    fn picks_edges_in_latency_order() {
        let problem = problem();
        let schedule = FastestEdgeFirst.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        // Round 1: cheapest edge out of {0} is 0→1 (1 ms).
        assert_eq!(schedule.events[0].sender, ClusterId(0));
        assert_eq!(schedule.events[0].receiver, ClusterId(1));
        // Round 2: cheapest edge out of {0,1} is 1→2 (2 ms).
        assert_eq!(schedule.events[1].sender, ClusterId(1));
        assert_eq!(schedule.events[1].receiver, ClusterId(2));
        // Round 3: cheapest edge out of {0,1,2} to {3} is 2→3 (1 ms).
        assert_eq!(schedule.events[2].sender, ClusterId(2));
        assert_eq!(schedule.events[2].receiver, ClusterId(3));
    }

    #[test]
    fn ignores_sender_availability() {
        // FEF may keep choosing the same sender even when its interface is busy —
        // the schedule stays *valid* (times are computed correctly by the state)
        // but the choice itself only looks at latency. With this topology the
        // root has the two smallest latencies, so it sends twice in a row even
        // though relaying through C1 would overlap transfers.
        let l = |ms: f64| Time::from_millis(ms);
        let latency = SquareMatrix::from_rows(
            3,
            vec![
                l(0.0),
                l(1.0),
                l(2.0),
                l(1.0),
                l(0.0),
                l(50.0),
                l(2.0),
                l(50.0),
                l(0.0),
            ],
        );
        let mut gap = SquareMatrix::filled(3, Time::from_millis(100.0));
        for i in 0..3 {
            gap[(i, i)] = Time::ZERO;
        }
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 3],
        );
        let schedule = FastestEdgeFirst.schedule(&problem);
        assert_eq!(schedule.events[1].sender, ClusterId(0));
        // Second send can only start once the first gap has elapsed.
        assert_eq!(schedule.events[1].start, Time::from_millis(100.0));
        assert!(schedule.validate(&problem).is_ok());
    }
}
