//! Fastest Edge First (Section 4.2).

use crate::heuristics::Heuristic;
use crate::{BroadcastProblem, Schedule, ScheduleState};
use gridcast_topology::ClusterId;

/// Bhat et al.'s *Fastest Edge First* heuristic.
///
/// Every link `i → j` carries an edge weight `T_ij`; as in the paper (and in
/// Bhat's original formulation) the weight is the **communication latency**
/// between the two coordinators. At every round the pair with the smallest
/// weight from set A to set B is selected, the receiver joins A, and the
/// process repeats — a greedy strategy that maximises the number of senders but
/// ignores both message transmission times (gaps) and intra-cluster broadcast
/// costs, which is why the paper finds it underwhelming on grids.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastestEdgeFirst;

impl Heuristic for FastestEdgeFirst {
    fn name(&self) -> &str {
        "FEF"
    }

    fn schedule(&self, problem: &BroadcastProblem) -> Schedule {
        let mut state = ScheduleState::new(problem);
        while !state.is_complete() {
            let (sender, receiver) = select_fastest_edge(&state);
            state.commit(sender, receiver);
        }
        state.finish(self.name())
    }
}

fn select_fastest_edge(state: &ScheduleState<'_>) -> (ClusterId, ClusterId) {
    let problem = state.problem();
    let mut best: Option<(ClusterId, ClusterId)> = None;
    let mut best_weight = gridcast_plogp::Time::INFINITY;
    for sender in state.set_a() {
        for receiver in state.set_b() {
            let weight = problem.latency(sender, receiver);
            if weight < best_weight {
                best_weight = weight;
                best = Some((sender, receiver));
            }
        }
    }
    best.expect("set B is non-empty while the schedule is incomplete")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::{MessageSize, Time};
    use gridcast_topology::SquareMatrix;

    /// 4 clusters. Latencies from the root: 1 ms to C1, 5 ms to C2, 9 ms to C3;
    /// C1–C2 is 2 ms, C1–C3 is 3 ms, C2–C3 is 1 ms. All gaps equal.
    fn problem() -> BroadcastProblem {
        let l = |ms: f64| Time::from_millis(ms);
        let latency = SquareMatrix::from_rows(
            4,
            vec![
                l(0.0), l(1.0), l(5.0), l(9.0),
                l(1.0), l(0.0), l(2.0), l(3.0),
                l(5.0), l(2.0), l(0.0), l(1.0),
                l(9.0), l(3.0), l(1.0), l(0.0),
            ],
        );
        let mut gap = SquareMatrix::filled(4, Time::from_millis(100.0));
        for i in 0..4 {
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 4],
        )
    }

    #[test]
    fn picks_edges_in_latency_order() {
        let problem = problem();
        let schedule = FastestEdgeFirst.schedule(&problem);
        assert!(schedule.validate(&problem).is_ok());
        // Round 1: cheapest edge out of {0} is 0→1 (1 ms).
        assert_eq!(schedule.events[0].sender, ClusterId(0));
        assert_eq!(schedule.events[0].receiver, ClusterId(1));
        // Round 2: cheapest edge out of {0,1} is 1→2 (2 ms).
        assert_eq!(schedule.events[1].sender, ClusterId(1));
        assert_eq!(schedule.events[1].receiver, ClusterId(2));
        // Round 3: cheapest edge out of {0,1,2} to {3} is 2→3 (1 ms).
        assert_eq!(schedule.events[2].sender, ClusterId(2));
        assert_eq!(schedule.events[2].receiver, ClusterId(3));
    }

    #[test]
    fn ignores_sender_availability() {
        // FEF may keep choosing the same sender even when its interface is busy —
        // the schedule stays *valid* (times are computed correctly by the state)
        // but the choice itself only looks at latency. With this topology the
        // root has the two smallest latencies, so it sends twice in a row even
        // though relaying through C1 would overlap transfers.
        let l = |ms: f64| Time::from_millis(ms);
        let latency = SquareMatrix::from_rows(
            3,
            vec![
                l(0.0), l(1.0), l(2.0),
                l(1.0), l(0.0), l(50.0),
                l(2.0), l(50.0), l(0.0),
            ],
        );
        let mut gap = SquareMatrix::filled(3, Time::from_millis(100.0));
        for i in 0..3 {
            gap[(i, i)] = Time::ZERO;
        }
        let problem = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::ZERO; 3],
        );
        let schedule = FastestEdgeFirst.schedule(&problem);
        assert_eq!(schedule.events[1].sender, ClusterId(0));
        // Second send can only start once the first gap has elapsed.
        assert_eq!(schedule.events[1].start, Time::from_millis(100.0));
        assert!(schedule.validate(&problem).is_ok());
    }
}
