//! Exhaustive (branch-and-bound) search for the optimal schedule on small grids.
//!
//! Finding the optimal broadcast schedule is NP-complete, which is why the paper
//! relies on heuristics and, for its hit-rate metric (Figure 4), on the "global
//! minimum" across heuristics rather than the true optimum. For *small* grids the
//! optimum is nevertheless computable by enumerating the possible sender/receiver
//! sequences, and having it available is valuable for tests (no heuristic may
//! ever beat it) and for calibrating how far the heuristics are from optimal.

use crate::{BroadcastProblem, Schedule, ScheduleEvent};
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;

/// Branch-and-bound searcher for the optimal inter-cluster schedule.
#[derive(Debug, Clone)]
pub struct OptimalSearch {
    /// Maximum number of clusters the search accepts; beyond this the search
    /// space (roughly `(n-1)!·n!/2^n` schedules) is too large and
    /// [`OptimalSearch::search`] returns `None`.
    pub max_clusters: usize,
}

impl Default for OptimalSearch {
    fn default() -> Self {
        OptimalSearch { max_clusters: 8 }
    }
}

struct SearchCtx<'p> {
    problem: &'p BroadcastProblem,
    best_makespan: Time,
    best_events: Vec<ScheduleEvent>,
}

impl OptimalSearch {
    /// Runs the search. Returns `None` if the problem exceeds `max_clusters`.
    pub fn search(&self, problem: &BroadcastProblem) -> Option<Schedule> {
        let n = problem.num_clusters();
        if n > self.max_clusters {
            return None;
        }
        if n == 1 {
            return Some(Schedule::from_events(problem, "Optimal", vec![]));
        }
        let mut ctx = SearchCtx {
            problem,
            best_makespan: Time::INFINITY,
            best_events: Vec::new(),
        };
        // Seed the incumbent with a decent heuristic schedule so pruning bites
        // immediately.
        let seed = crate::HeuristicKind::EcefLa.schedule(problem);
        ctx.best_makespan = seed.makespan();
        ctx.best_events = seed.events.clone();

        let mut in_a = vec![false; n];
        in_a[problem.root.index()] = true;
        let mut ready = vec![Time::ZERO; n];
        let mut events = Vec::with_capacity(n - 1);
        explore(&mut ctx, &mut in_a, &mut ready, &mut events);

        let schedule = Schedule::from_events(problem, "Optimal", ctx.best_events);
        Some(schedule)
    }
}

/// Convenience wrapper: optimal schedule with the default cluster cap.
pub fn optimal_schedule(problem: &BroadcastProblem) -> Option<Schedule> {
    OptimalSearch::default().search(problem)
}

fn explore(
    ctx: &mut SearchCtx<'_>,
    in_a: &mut Vec<bool>,
    ready: &mut Vec<Time>,
    events: &mut Vec<ScheduleEvent>,
) {
    let problem = ctx.problem;
    let n = problem.num_clusters();
    if events.len() + 1 == n {
        let schedule = Schedule::from_events(problem, "Optimal", events.clone());
        let makespan = schedule.makespan();
        if makespan < ctx.best_makespan {
            ctx.best_makespan = makespan;
            ctx.best_events = events.clone();
        }
        return;
    }

    if lower_bound(problem, in_a, ready) >= ctx.best_makespan {
        return;
    }

    for receiver_idx in 0..n {
        if in_a[receiver_idx] {
            continue;
        }
        let receiver = ClusterId(receiver_idx);
        for sender_idx in 0..n {
            if !in_a[sender_idx] {
                continue;
            }
            let sender = ClusterId(sender_idx);
            let start = ready[sender_idx];
            let arrival = start + problem.transfer(sender, receiver);
            let saved_sender_ready = ready[sender_idx];
            ready[sender_idx] = start + problem.gap(sender, receiver);
            ready[receiver_idx] = arrival;
            in_a[receiver_idx] = true;
            events.push(ScheduleEvent {
                sender,
                receiver,
                start,
                arrival,
            });

            explore(ctx, in_a, ready, events);

            events.pop();
            in_a[receiver_idx] = false;
            ready[receiver_idx] = Time::ZERO;
            ready[sender_idx] = saved_sender_ready;
        }
    }
}

/// A safe lower bound on the makespan reachable from a partial state: every
/// cluster already in A must still run its internal broadcast after its current
/// ready time, and every cluster still in B must receive the message over at
/// least its cheapest incoming edge, starting no earlier than the earliest ready
/// time in A.
fn lower_bound(problem: &BroadcastProblem, in_a: &[bool], ready: &[Time]) -> Time {
    let n = problem.num_clusters();
    let earliest_sender = (0..n)
        .filter(|&i| in_a[i])
        .map(|i| ready[i])
        .min()
        .unwrap_or(Time::ZERO);
    let mut bound = Time::ZERO;
    for i in 0..n {
        let cluster = ClusterId(i);
        if in_a[i] {
            bound = bound.max(ready[i] + problem.intra_time(cluster));
        } else {
            let cheapest_in = (0..n)
                .filter(|&j| j != i)
                .map(|j| problem.transfer(ClusterId(j), cluster))
                .min()
                .unwrap_or(Time::ZERO);
            bound = bound.max(earliest_sender + cheapest_in + problem.intra_time(cluster));
        }
    }
    bound
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HeuristicKind;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::{ClusterId, GridGenerator};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn random_problem(clusters: usize, seed: u64) -> BroadcastProblem {
        let grid = GridGenerator::table2().generate(clusters, &mut ChaCha8Rng::seed_from_u64(seed));
        BroadcastProblem::from_grid(&grid, ClusterId(0), MessageSize::from_mib(1))
    }

    #[test]
    fn optimal_is_never_beaten_by_any_heuristic() {
        for clusters in [2usize, 3, 4, 5] {
            for seed in 0..10u64 {
                let problem = random_problem(clusters, seed * 31 + clusters as u64);
                let optimal = optimal_schedule(&problem).expect("within cluster cap");
                assert!(optimal.validate(&problem).is_ok());
                for kind in HeuristicKind::all() {
                    let heuristic = kind.schedule(&problem).makespan();
                    assert!(
                        optimal.makespan() <= heuristic + gridcast_plogp::Time::from_micros(1.0),
                        "{kind} beat the optimal search on {clusters} clusters, seed {seed}: \
                         optimal {} vs heuristic {heuristic}",
                        optimal.makespan()
                    );
                }
            }
        }
    }

    #[test]
    fn optimal_respects_the_lower_bound() {
        for seed in 0..10u64 {
            let problem = random_problem(5, seed);
            let optimal = optimal_schedule(&problem).unwrap();
            assert!(optimal.makespan() >= problem.lower_bound());
        }
    }

    #[test]
    fn refuses_oversized_problems() {
        let problem = random_problem(12, 1);
        assert!(optimal_schedule(&problem).is_none());
        let search = OptimalSearch { max_clusters: 12 };
        // With an explicit larger cap it still works (slowly, so only run once
        // with a small instance here).
        assert!(search.search(&random_problem(4, 2)).is_some());
    }

    #[test]
    fn single_and_two_cluster_grids() {
        let problem = random_problem(2, 3);
        let optimal = optimal_schedule(&problem).unwrap();
        assert_eq!(optimal.num_transfers(), 1);
        // With two clusters every heuristic is optimal.
        assert_eq!(
            optimal.makespan(),
            HeuristicKind::FlatTree.schedule(&problem).makespan()
        );
    }
}
