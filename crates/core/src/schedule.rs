//! Inter-cluster broadcast schedules and their makespan.

use crate::BroadcastProblem;
use gridcast_plogp::Time;
use gridcast_topology::ClusterId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One inter-cluster transfer of a schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleEvent {
    /// Cluster whose coordinator sends the message.
    pub sender: ClusterId,
    /// Cluster whose coordinator receives the message.
    pub receiver: ClusterId,
    /// Time the sender starts pushing the message (its interface is busy for the
    /// gap `g(m)` from this instant).
    pub start: Time,
    /// Time the receiver holds the complete message: `start + g(m) + L`.
    pub arrival: Time,
}

/// Errors found while validating a schedule against its problem instance.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A cluster other than the root never receives the message.
    NotCovered {
        /// The cluster left out.
        cluster: ClusterId,
    },
    /// A cluster receives the message more than once.
    DuplicateReceive {
        /// The cluster in question.
        cluster: ClusterId,
    },
    /// The root appears as a receiver.
    RootReceives,
    /// A sender transmits before it holds the message itself.
    SendsBeforeReady {
        /// The offending event index.
        event: usize,
    },
    /// An event's arrival time is inconsistent with the problem's link
    /// parameters.
    WrongArrival {
        /// The offending event index.
        event: usize,
    },
    /// Two sends from the same coordinator overlap (the gap constraint is
    /// violated).
    OverlappingSends {
        /// The cluster whose coordinator is oversubscribed.
        cluster: ClusterId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::NotCovered { cluster } => {
                write!(f, "cluster {cluster} never receives the message")
            }
            ScheduleError::DuplicateReceive { cluster } => {
                write!(f, "cluster {cluster} receives the message more than once")
            }
            ScheduleError::RootReceives => write!(f, "the root cluster appears as a receiver"),
            ScheduleError::SendsBeforeReady { event } => {
                write!(
                    f,
                    "event #{event}: sender transmits before holding the message"
                )
            }
            ScheduleError::WrongArrival { event } => {
                write!(
                    f,
                    "event #{event}: arrival time inconsistent with link parameters"
                )
            }
            ScheduleError::OverlappingSends { cluster } => {
                write!(f, "cluster {cluster} has overlapping outgoing transfers")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A complete inter-cluster broadcast schedule, together with the per-cluster
/// completion times (arrival at the coordinator, then intra-cluster broadcast
/// once the coordinator has finished forwarding).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// The root cluster.
    pub root: ClusterId,
    /// Inter-cluster transfers, in the order they were scheduled.
    pub events: Vec<ScheduleEvent>,
    /// For every cluster, the time at which all of its machines hold the message.
    pub cluster_completion: Vec<Time>,
    /// Name of the heuristic that produced the schedule (for reports).
    pub heuristic: String,
}

impl Schedule {
    /// Builds a schedule from its events, computing per-cluster completion times
    /// from the problem's intra-cluster broadcast times.
    ///
    /// A cluster's internal broadcast starts only once its coordinator has both
    /// received the message and finished every outgoing transfer assigned to it
    /// (the paper's formalism: "when a cluster does not participate in any other
    /// inter-cluster communication, it can finally broadcast the message among
    /// the cluster processes").
    pub fn from_events(
        problem: &BroadcastProblem,
        heuristic: impl Into<String>,
        events: Vec<ScheduleEvent>,
    ) -> Self {
        let n = problem.num_clusters();
        let mut arrival = vec![Time::ZERO; n];
        let mut busy_until = vec![Time::ZERO; n];
        for event in &events {
            arrival[event.receiver.index()] = event.arrival;
            // The sender's interface is occupied for the gap of this transfer.
            let send_end = event.start + problem.gap(event.sender, event.receiver);
            let cell = &mut busy_until[event.sender.index()];
            *cell = (*cell).max(send_end);
        }
        let cluster_completion = (0..n)
            .map(|i| {
                let coordinator_free = arrival[i].max(busy_until[i]);
                coordinator_free + problem.intra_time(ClusterId(i))
            })
            .collect();
        Schedule {
            root: problem.root,
            events,
            cluster_completion,
            heuristic: heuristic.into(),
        }
    }

    /// The makespan: the moment every machine of every cluster holds the message.
    pub fn makespan(&self) -> Time {
        self.cluster_completion
            .iter()
            .copied()
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The makespan over every cluster except `excluded`.
    ///
    /// This is the completion metric for crash-recovery schedules
    /// ([`ScheduleEngine::reschedule_excluding`](crate::ScheduleEngine::reschedule_excluding)):
    /// a dead cluster never finishes, and its `cluster_completion` entry only
    /// reflects whatever prefix executed before the crash, so the plain
    /// [`Schedule::makespan`] would mix a meaningless number into the max.
    pub fn makespan_excluding(&self, excluded: ClusterId) -> Time {
        self.cluster_completion
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != excluded.index())
            .map(|(_, &t)| t)
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// The completion time of one cluster.
    pub fn completion_of(&self, cluster: ClusterId) -> Time {
        self.cluster_completion[cluster.index()]
    }

    /// Number of inter-cluster transfers (always `num_clusters - 1`).
    pub fn num_transfers(&self) -> usize {
        self.events.len()
    }

    /// The arrival time of the message at a cluster coordinator (zero for the
    /// root).
    pub fn arrival_at(&self, cluster: ClusterId) -> Time {
        self.events
            .iter()
            .find(|e| e.receiver == cluster)
            .map(|e| e.arrival)
            .unwrap_or(Time::ZERO)
    }

    /// Validates the schedule against the problem: full coverage, unique
    /// reception, causality (senders hold the message before sending), correct
    /// arrival arithmetic and no overlapping sends from one coordinator.
    pub fn validate(&self, problem: &BroadcastProblem) -> Result<(), ScheduleError> {
        let n = problem.num_clusters();
        let mut received = vec![false; n];
        received[self.root.index()] = true;

        // Uniqueness and root checks first.
        let mut seen = vec![false; n];
        for event in &self.events {
            if event.receiver == self.root {
                return Err(ScheduleError::RootReceives);
            }
            if seen[event.receiver.index()] {
                return Err(ScheduleError::DuplicateReceive {
                    cluster: event.receiver,
                });
            }
            seen[event.receiver.index()] = true;
        }

        // Causality, arithmetic and gap occupancy.
        let tolerance = Time::from_micros(0.5);
        let mut ready = vec![Time::INFINITY; n];
        ready[self.root.index()] = Time::ZERO;
        let mut intervals: Vec<Vec<(Time, Time)>> = vec![Vec::new(); n];
        for (idx, event) in self.events.iter().enumerate() {
            let sender_ready = ready[event.sender.index()];
            if !sender_ready.is_finite() || event.start + tolerance < sender_ready {
                return Err(ScheduleError::SendsBeforeReady { event: idx });
            }
            let expected = event.start + problem.transfer(event.sender, event.receiver);
            if event.arrival.abs_diff(expected) > tolerance {
                return Err(ScheduleError::WrongArrival { event: idx });
            }
            ready[event.receiver.index()] = event.arrival;
            received[event.receiver.index()] = true;
            intervals[event.sender.index()].push((
                event.start,
                event.start + problem.gap(event.sender, event.receiver),
            ));
        }

        for (i, got) in received.iter().enumerate() {
            if !got {
                return Err(ScheduleError::NotCovered {
                    cluster: ClusterId(i),
                });
            }
        }

        for (i, list) in intervals.iter_mut().enumerate() {
            list.sort_by_key(|&(start, _)| start);
            for w in list.windows(2) {
                if w[1].0 + tolerance < w[0].1 {
                    return Err(ScheduleError::OverlappingSends {
                        cluster: ClusterId(i),
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::MessageSize;
    use gridcast_topology::SquareMatrix;

    /// 3-cluster problem where every transfer costs 10 ms gap + 1 ms latency and
    /// intra-cluster broadcasts take 5 ms (root), 7 ms, 0 ms.
    fn problem() -> BroadcastProblem {
        let n = 3;
        let mut latency = SquareMatrix::filled(n, Time::from_millis(1.0));
        let mut gap = SquareMatrix::filled(n, Time::from_millis(10.0));
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            latency,
            gap,
            vec![Time::from_millis(5.0), Time::from_millis(7.0), Time::ZERO],
        )
    }

    fn event(sender: usize, receiver: usize, start_ms: f64, arrival_ms: f64) -> ScheduleEvent {
        ScheduleEvent {
            sender: ClusterId(sender),
            receiver: ClusterId(receiver),
            start: Time::from_millis(start_ms),
            arrival: Time::from_millis(arrival_ms),
        }
    }

    #[test]
    fn completion_accounts_for_forwarding_and_intra_broadcast() {
        let p = problem();
        // Root sends to 1 at t=0 (arrival 11), then to 2 at t=10 (arrival 21).
        let s = Schedule::from_events(
            &p,
            "manual",
            vec![event(0, 1, 0.0, 11.0), event(0, 2, 10.0, 21.0)],
        );
        let eps = Time::from_micros(1.0);
        // Root coordinator is busy until 20 ms, then 5 ms intra: 25 ms.
        assert!(s
            .completion_of(ClusterId(0))
            .approx_eq(Time::from_millis(25.0), eps));
        // Cluster 1 receives at 11, no forwarding, 7 ms intra: 18 ms.
        assert!(s
            .completion_of(ClusterId(1))
            .approx_eq(Time::from_millis(18.0), eps));
        // Cluster 2 receives at 21, no intra time: 21 ms.
        assert!(s
            .completion_of(ClusterId(2))
            .approx_eq(Time::from_millis(21.0), eps));
        assert!(s.makespan().approx_eq(Time::from_millis(25.0), eps));
        assert_eq!(s.num_transfers(), 2);
        assert_eq!(s.arrival_at(ClusterId(2)), Time::from_millis(21.0));
        assert_eq!(s.arrival_at(ClusterId(0)), Time::ZERO);
        assert!(s.validate(&p).is_ok());
    }

    #[test]
    fn relay_schedule_validates() {
        let p = problem();
        // 0 → 1 (arrival 11), then 1 → 2 starting at 11 (arrival 22).
        let s = Schedule::from_events(
            &p,
            "relay",
            vec![event(0, 1, 0.0, 11.0), event(1, 2, 11.0, 22.0)],
        );
        assert!(s.validate(&p).is_ok());
        let eps = Time::from_micros(1.0);
        // Cluster 1 forwards until 21 ms and only then broadcasts internally.
        assert!(s
            .completion_of(ClusterId(1))
            .approx_eq(Time::from_millis(28.0), eps));
        assert!(s.makespan().approx_eq(Time::from_millis(28.0), eps));
    }

    #[test]
    fn validation_rejects_missing_cluster() {
        let p = problem();
        let s = Schedule::from_events(&p, "broken", vec![event(0, 1, 0.0, 11.0)]);
        assert_eq!(
            s.validate(&p),
            Err(ScheduleError::NotCovered {
                cluster: ClusterId(2)
            })
        );
    }

    #[test]
    fn validation_rejects_duplicate_and_root_receiver() {
        let p = problem();
        let dup = Schedule::from_events(
            &p,
            "dup",
            vec![
                event(0, 1, 0.0, 11.0),
                event(0, 1, 10.0, 21.0),
                event(0, 2, 20.0, 31.0),
            ],
        );
        assert_eq!(
            dup.validate(&p),
            Err(ScheduleError::DuplicateReceive {
                cluster: ClusterId(1)
            })
        );
        let root_rx = Schedule::from_events(
            &p,
            "root-rx",
            vec![event(1, 0, 0.0, 11.0), event(0, 2, 0.0, 11.0)],
        );
        assert_eq!(root_rx.validate(&p), Err(ScheduleError::RootReceives));
    }

    #[test]
    fn validation_rejects_causality_violations() {
        let p = problem();
        // Cluster 1 sends to 2 before it received anything.
        let s = Schedule::from_events(
            &p,
            "acausal",
            vec![event(1, 2, 0.0, 11.0), event(0, 1, 0.0, 11.0)],
        );
        assert_eq!(
            s.validate(&p),
            Err(ScheduleError::SendsBeforeReady { event: 0 })
        );
    }

    #[test]
    fn validation_rejects_wrong_arrival_and_overlap() {
        let p = problem();
        let wrong = Schedule::from_events(
            &p,
            "wrong-arrival",
            vec![event(0, 1, 0.0, 42.0), event(0, 2, 10.0, 21.0)],
        );
        assert_eq!(
            wrong.validate(&p),
            Err(ScheduleError::WrongArrival { event: 0 })
        );
        // Two sends from the root both starting at t=0: they overlap because the
        // first occupies the interface for 10 ms.
        let overlap = Schedule::from_events(
            &p,
            "overlap",
            vec![event(0, 1, 0.0, 11.0), event(0, 2, 0.0, 11.0)],
        );
        assert_eq!(
            overlap.validate(&p),
            Err(ScheduleError::OverlappingSends {
                cluster: ClusterId(0)
            })
        );
    }

    #[test]
    fn single_cluster_schedule_is_trivially_valid() {
        let p = BroadcastProblem::from_parts(
            ClusterId(0),
            MessageSize::from_mib(1),
            SquareMatrix::filled(1, Time::ZERO),
            SquareMatrix::filled(1, Time::ZERO),
            vec![Time::from_millis(3.0)],
        );
        let s = Schedule::from_events(&p, "noop", vec![]);
        assert!(s.validate(&p).is_ok());
        assert_eq!(s.makespan(), Time::from_millis(3.0));
    }
}
