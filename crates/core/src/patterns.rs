//! Grid-aware scheduling for the other collective patterns named in the paper's
//! conclusion (scatter, and an aggregate model for all-to-all).
//!
//! The paper closes with: *"We are particularly interested on the development of
//! efficient communication schedules for other communication patterns like
//! scatter and alltoall."* This module carries the broadcast formalism over to
//! the personalised-data case.
//!
//! For a **scatter**, the root holds a distinct block for every machine. At the
//! inter-cluster level the root must deliver, to each cluster coordinator, the
//! concatenation of the blocks of that cluster's machines (relaying through
//! other clusters does not reduce the number of bytes the root has to push, so —
//! as in MagPIe — the inter-cluster level is a sequence of direct sends from the
//! root and the only degree of freedom is their **order**). Once a coordinator
//! has its aggregate block it scatters it locally.
//!
//! With the pLogP timing used everywhere else, sending cluster `i`'s block costs
//! the root `g_{r,i}(S_i)` of exclusive interface time, and the cluster then
//! needs `L_{r,i} + T^{scatter}_i` more before it is done. Ordering the sends by
//! **non-increasing tail** (`latency + local scatter time`) is the classic
//! "largest delivery time first" rule and is provably optimal for this
//! one-machine scheduling problem; [`ScatterOrdering::LongestTailFirst`]
//! implements it, and the tests verify optimality against brute-force
//! enumeration on small instances.
//!
//! Scheduling itself goes through the same pattern-agnostic
//! [`ScheduleEngine`](crate::ScheduleEngine) as the broadcast heuristics: a
//! scatter is embedded as a broadcast problem whose non-root links are
//! infinitely expensive ([`ScatterProblem::as_broadcast_problem`]), and each
//! [`ScatterOrdering`] is a tiny [`SelectionPolicy`]. Intra-cluster pattern
//! costs come from the shared
//! [`PatternCost`] trait rather than a
//! duplicated formula.

use crate::engine::{
    with_shared_engine, EngineView, LookaheadWorkspace, Objective, SelectionPolicy,
};
use crate::BroadcastProblem;
use gridcast_collectives::{Pattern, PatternCost};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid, SquareMatrix};
use serde::{Deserialize, Serialize};

/// A scatter problem at the inter-cluster level: the root must push each
/// cluster's aggregate block to that cluster's coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterProblem {
    /// The cluster whose coordinator initially holds all blocks.
    pub root: ClusterId,
    /// Per-machine block size.
    pub per_node: MessageSize,
    /// For every cluster: the gap the root pays to push its aggregate block.
    pub root_gap: Vec<Time>,
    /// For every cluster: latency from the root.
    pub latency: Vec<Time>,
    /// For every cluster: the time its coordinator needs to scatter the block
    /// locally once received (zero for singletons and for the root, whose local
    /// scatter overlaps with nothing by convention of the makespan definition
    /// below).
    pub local_scatter: Vec<Time>,
}

impl ScatterProblem {
    /// Builds the inter-cluster scatter problem for `grid`, distributing
    /// `per_node` bytes to every machine from the coordinator of `root`.
    pub fn from_grid(grid: &Grid, root: ClusterId, per_node: MessageSize) -> Self {
        let n = grid.num_clusters();
        assert!(root.index() < n, "root cluster outside the grid");
        let mut root_gap = vec![Time::ZERO; n];
        let mut latency = vec![Time::ZERO; n];
        let mut local_scatter = vec![Time::ZERO; n];
        for id in grid.cluster_ids() {
            let cluster = grid.cluster(id);
            let aggregate = MessageSize::from_bytes(per_node.as_bytes() * u64::from(cluster.size));
            if id != root {
                root_gap[id.index()] = grid.gap(root, id, aggregate);
                latency[id.index()] = grid.latency(root, id);
            }
            if let Some(plogp) = cluster.intra.plogp() {
                local_scatter[id.index()] =
                    Pattern::Scatter.intra_time(plogp, cluster.size, per_node);
            }
        }
        ScatterProblem {
            root,
            per_node,
            root_gap,
            latency,
            local_scatter,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.root_gap.len()
    }

    /// The "tail" of a cluster: what still has to happen after the root finished
    /// pushing its block (`L + local scatter`).
    pub fn tail(&self, cluster: ClusterId) -> Time {
        self.latency[cluster.index()] + self.local_scatter[cluster.index()]
    }

    /// Makespan of scattering in the given send order: the root pushes the
    /// aggregate blocks back-to-back in that order, and every cluster finishes
    /// its local scatter `tail` after its block left the root; the root's own
    /// local scatter starts once its interface is free.
    pub fn makespan(&self, order: &[ClusterId]) -> Time {
        let mut clock = Time::ZERO;
        let mut makespan = Time::ZERO;
        for &cluster in order {
            debug_assert_ne!(cluster, self.root, "the root does not send to itself");
            clock += self.root_gap[cluster.index()];
            makespan = makespan.max(clock + self.tail(cluster));
        }
        // The root scatters locally once it has finished pushing everything.
        makespan.max(clock + self.local_scatter[self.root.index()])
    }

    /// Every non-root cluster, in identifier order.
    pub fn receivers(&self) -> Vec<ClusterId> {
        (0..self.num_clusters())
            .map(ClusterId)
            .filter(|&c| c != self.root)
            .collect()
    }

    /// Embeds the scatter into the broadcast formalism consumed by the
    /// [`ScheduleEngine`](crate::ScheduleEngine): only the root can send (every
    /// other link is infinitely expensive), the per-receiver gap is the cost of
    /// pushing that cluster's aggregate block, and the intra-cluster time is
    /// the local scatter. Relaying is thereby structurally excluded — exactly
    /// the MagPIe behaviour this module models.
    pub fn as_broadcast_problem(&self) -> BroadcastProblem {
        let n = self.num_clusters();
        let mut latency = SquareMatrix::filled(n, Time::INFINITY);
        let mut gap = SquareMatrix::filled(n, Time::INFINITY);
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        for j in 0..n {
            if j != self.root.index() {
                latency[(self.root.index(), j)] = self.latency[j];
                gap[(self.root.index(), j)] = self.root_gap[j];
            }
        }
        BroadcastProblem::from_parts(
            self.root,
            self.per_node,
            latency,
            gap,
            self.local_scatter.clone(),
        )
    }
}

/// The send orderings evaluated for the inter-cluster scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScatterOrdering {
    /// Identifier order — the grid-unaware baseline (MagPIe's behaviour).
    ListOrder,
    /// Non-increasing tail (`L + local scatter`): the grid-aware rule, analogous
    /// to ECEF-LAT's "serve the clusters with the most remaining work first".
    LongestTailFirst,
    /// Non-decreasing tail — the pessimal ordering, kept for ablation.
    ShortestTailFirst,
}

impl ScatterOrdering {
    /// The send order this policy produces, scheduled by the shared
    /// pattern-agnostic engine (see [`ScatterTailPolicy`]): each round picks
    /// the receiver optimising the policy's tail objective, which reproduces
    /// the corresponding stable sort exactly (ties fall back to cluster-id
    /// order).
    pub fn order(&self, problem: &ScatterProblem) -> Vec<ClusterId> {
        let broadcast = problem.as_broadcast_problem();
        let mut policy = ScatterTailPolicy {
            root: problem.root,
            ordering: *self,
        };
        with_shared_engine(|engine| {
            engine.schedule_with(&broadcast, &mut policy);
            engine.events().iter().map(|e| e.receiver).collect()
        })
    }

    /// The makespan this policy achieves on `problem`.
    pub fn makespan(&self, problem: &ScatterProblem) -> Time {
        problem.makespan(&self.order(problem))
    }
}

/// [`SelectionPolicy`] realising a [`ScatterOrdering`] on the engine: only
/// root-outgoing edges are admissible, and the receiver bias is the cluster's
/// *tail* (`L + local scatter`), minimised or maximised depending on the
/// ordering. Demonstrates that the engine serves patterns beyond broadcast —
/// the same round loop, candidate cache and tie-breaking drive the scatter.
#[derive(Debug, Clone, Copy)]
pub struct ScatterTailPolicy {
    root: ClusterId,
    ordering: ScatterOrdering,
}

impl SelectionPolicy for ScatterTailPolicy {
    fn name(&self) -> &str {
        match self.ordering {
            ScatterOrdering::ListOrder => "Scatter(list)",
            ScatterOrdering::LongestTailFirst => "Scatter(longest-tail)",
            ScatterOrdering::ShortestTailFirst => "Scatter(shortest-tail)",
        }
    }

    fn edge_score(&self, _view: &EngineView<'_>, sender: ClusterId, _receiver: ClusterId) -> Time {
        if sender == self.root {
            Time::ZERO
        } else {
            Time::INFINITY
        }
    }

    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        _workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        match self.ordering {
            ScatterOrdering::ListOrder => Time::ZERO,
            ScatterOrdering::LongestTailFirst | ScatterOrdering::ShortestTailFirst => {
                let problem = view.problem();
                problem.latency(self.root, receiver) + problem.intra_time(receiver)
            }
        }
    }

    fn objective(&self) -> Objective {
        match self.ordering {
            ScatterOrdering::LongestTailFirst => Objective::Maximize,
            ScatterOrdering::ListOrder | ScatterOrdering::ShortestTailFirst => Objective::Minimize,
        }
    }

    fn sender_time_sensitive(&self) -> bool {
        false
    }
}

/// Aggregate inter-cluster cost estimate for a personalised all-to-all in which
/// every machine exchanges `per_pair` bytes with every other machine: each
/// cluster pair `(i, j)` exchanges `size_i · size_j · per_pair` bytes in both
/// directions over its wide-area link, and every cluster additionally runs a
/// local all-to-all. The estimate is the maximum, over clusters, of its total
/// inter-cluster traffic time plus its local exchange — a lower-bound-style
/// figure used to compare topologies, not a schedule.
pub fn alltoall_estimate(grid: &Grid, per_pair: MessageSize) -> Time {
    let mut worst = Time::ZERO;
    for i in grid.cluster_ids() {
        let ci = grid.cluster(i);
        let mut total = Time::ZERO;
        for j in grid.cluster_ids() {
            if i == j {
                continue;
            }
            let cj = grid.cluster(j);
            let bytes = per_pair.as_bytes() * u64::from(ci.size) * u64::from(cj.size);
            total += grid.gap(i, j, MessageSize::from_bytes(bytes)) + grid.latency(i, j);
        }
        if let Some(plogp) = ci.intra.plogp() {
            total += Pattern::AllToAll.intra_time(plogp, ci.size, per_pair);
        }
        worst = worst.max(total);
    }
    worst
}

/// Convenience: the broadcast problem's root reused for a scatter on the same
/// grid — handy when an application alternates both collectives.
pub fn scatter_problem_like(broadcast: &BroadcastProblem, grid: &Grid) -> ScatterProblem {
    ScatterProblem::from_grid(grid, broadcast.root, broadcast.message)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_topology::grid5000_table3;

    fn grid5000_scatter() -> ScatterProblem {
        ScatterProblem::from_grid(&grid5000_table3(), ClusterId(0), MessageSize::from_kib(64))
    }

    #[test]
    fn from_grid_builds_consistent_vectors() {
        let p = grid5000_scatter();
        assert_eq!(p.num_clusters(), 6);
        assert_eq!(p.root_gap[0], Time::ZERO);
        assert_eq!(p.latency[0], Time::ZERO);
        // Singleton IDPOT clusters have no local scatter.
        assert_eq!(p.local_scatter[3], Time::ZERO);
        assert_eq!(p.local_scatter[4], Time::ZERO);
        // Bigger clusters mean bigger aggregate blocks, hence larger root gaps
        // towards them (Toulouse: 20 machines vs the 1-machine IDPOT nodes on a
        // comparable wide-area path).
        assert!(p.root_gap[5] > p.root_gap[3]);
        assert_eq!(p.receivers().len(), 5);
    }

    #[test]
    fn longest_tail_first_is_optimal_on_small_instances() {
        // Brute-force all send orders of the 5 receivers and check the rule.
        let p = grid5000_scatter();
        let receivers = p.receivers();
        let mut best = Time::INFINITY;
        let mut order = receivers.clone();
        permute(&mut order, 0, &p, &mut best);
        let rule = ScatterOrdering::LongestTailFirst.makespan(&p);
        assert!(
            rule <= best + Time::from_micros(1.0),
            "longest-tail-first ({rule}) worse than brute-force optimum ({best})"
        );
    }

    fn permute(order: &mut Vec<ClusterId>, k: usize, p: &ScatterProblem, best: &mut Time) {
        if k == order.len() {
            *best = (*best).min(p.makespan(order));
            return;
        }
        for i in k..order.len() {
            order.swap(k, i);
            permute(order, k + 1, p, best);
            order.swap(k, i);
        }
    }

    #[test]
    fn orderings_are_ranked_as_expected() {
        let p = grid5000_scatter();
        let longest = ScatterOrdering::LongestTailFirst.makespan(&p);
        let list = ScatterOrdering::ListOrder.makespan(&p);
        let shortest = ScatterOrdering::ShortestTailFirst.makespan(&p);
        assert!(longest <= list);
        assert!(longest <= shortest);
        // All three push the same bytes from the root, so none can beat the pure
        // transmission lower bound.
        let push_time: Time = p.root_gap.iter().copied().sum();
        assert!(longest >= push_time);
    }

    #[test]
    fn makespan_accounts_for_the_root_local_scatter() {
        let mut p = grid5000_scatter();
        let before = ScatterOrdering::LongestTailFirst.makespan(&p);
        // Give the root an enormous local scatter: it must dominate the makespan.
        p.local_scatter[0] = Time::from_secs(100.0);
        let after = ScatterOrdering::LongestTailFirst.makespan(&p);
        assert!(after > before);
        assert!(after >= Time::from_secs(100.0));
    }

    #[test]
    fn alltoall_estimate_scales_with_message_size() {
        let grid = grid5000_table3();
        let small = alltoall_estimate(&grid, MessageSize::from_bytes(256));
        let large = alltoall_estimate(&grid, MessageSize::from_kib(16));
        assert!(small > Time::ZERO);
        assert!(large > small);
    }

    #[test]
    fn scatter_problem_like_reuses_root_and_message() {
        let grid = grid5000_table3();
        let broadcast = BroadcastProblem::from_grid(&grid, ClusterId(5), MessageSize::from_kib(32));
        let scatter = scatter_problem_like(&broadcast, &grid);
        assert_eq!(scatter.root, ClusterId(5));
        assert_eq!(scatter.per_node, MessageSize::from_kib(32));
        assert_eq!(scatter.root_gap[5], Time::ZERO);
    }
}
