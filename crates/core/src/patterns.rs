//! Grid-aware scheduling for the other collective patterns named in the paper's
//! conclusion: scatter (direct and relay-capable) and all-to-all.
//!
//! The paper closes with: *"We are particularly interested on the development of
//! efficient communication schedules for other communication patterns like
//! scatter and alltoall."* This module carries the broadcast formalism over to
//! the personalised-data case, in three layers:
//!
//! * **Direct scatter** ([`ScatterProblem`]): the MagPIe assumption — the
//!   inter-cluster level is a sequence of direct sends from the root, and the
//!   only degree of freedom is their **order**. Sending cluster `i`'s aggregate
//!   block costs the root `g_{r,i}(S_i)` of exclusive interface time, and the
//!   cluster then needs `L_{r,i} + T^{scatter}_i` more before it is done.
//!   Ordering the sends by **non-increasing tail** (`latency + local scatter
//!   time`) is the classic "largest delivery time first" rule and is provably
//!   optimal for this one-machine problem;
//!   [`ScatterOrdering::LongestTailFirst`] implements it, verified against
//!   brute-force enumeration.
//!
//! * **Relay-capable scatter** ([`RelayScatterProblem`]): the MagPIe assumption
//!   is only about *bytes* — the root pushes the same total either way — but it
//!   ignores per-message cost and link asymmetry. A coordinator that has
//!   already received its cluster's aggregate may forward **other clusters'
//!   blocks** onward: the root hands a relay one concatenated message (priced
//!   `g(Σ blocks)` — one per-message cost instead of several) and the relay's
//!   own, possibly much better, links deliver the rest. The schedule is a tree
//!   with per-sender send orders, built greedily by the engine over per-edge
//!   payload prices ([`EdgeCosts`]) and then *retimed* exactly, pricing every
//!   edge by the concatenation of the blocks its subtree carries.
//!
//! * **All-to-all** ([`alltoall_schedule`]): the exchange decomposes into one
//!   transfer per ordered cluster pair (`S_i · S_j · m` bytes each), placed on
//!   the clusters' single network interfaces by the engine's
//!   earliest-completion-first transfer scheduler
//!   ([`ScheduleEngine::schedule_transfers`](crate::ScheduleEngine::schedule_transfers)).
//!   [`alltoall_estimate`] remains as the analytic **lower bound** the
//!   schedule is checked against.
//!
//! * **Gather** ([`RelayGatherProblem`]): the exact **time-reversed dual** of
//!   the relay-capable scatter — the mirrored scatter is scheduled on the
//!   [transposed grid](gridcast_topology::Grid::transposed) and reflected
//!   about its makespan, so every edge is priced for the direction the
//!   concatenation actually travels (child → parent) and the makespans match
//!   bit for bit.
//!
//! * **Allgather** ([`allgather_schedule`]): the receive-side mirror of the
//!   exchange machinery — one aggregate-block transfer per ordered cluster
//!   pair on the same transfer scheduler, with each interface released only
//!   after its cluster's local gather and the full concatenation
//!   redistributed locally afterwards; [`allgather_estimate`] is the matching
//!   lower bound (send *and* receive interface time, one terminal latency).
//!
//! Scheduling goes through the same pattern-agnostic
//! [`ScheduleEngine`](crate::ScheduleEngine) as the broadcast heuristics: a
//! direct scatter is embedded as a broadcast problem whose non-root links are
//! infinitely expensive ([`ScatterProblem::as_broadcast_problem`]), the
//! relay-capable scatter as one whose edges are payload-priced, and each
//! ordering is a tiny [`SelectionPolicy`]. Intra-cluster pattern costs and
//! aggregate block sizes come from the shared [`PatternCost`] trait rather
//! than duplicated formulas.

use crate::engine::{
    with_shared_engine, EdgeCosts, EngineView, ExchangeSchedule, LookaheadWorkspace, Objective,
    SelectionPolicy, Transfer, TransferSet,
};
use crate::BroadcastProblem;
use gridcast_collectives::{concat_blocks, BroadcastAlgorithm, Pattern, PatternCost};
use gridcast_plogp::{MessageSize, Time};
use gridcast_topology::{ClusterId, Grid, SquareMatrix};
use serde::{Deserialize, Serialize};

/// A scatter problem at the inter-cluster level: the root must push each
/// cluster's aggregate block to that cluster's coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScatterProblem {
    /// The cluster whose coordinator initially holds all blocks.
    pub root: ClusterId,
    /// Per-machine block size.
    pub per_node: MessageSize,
    /// For every cluster: the gap the root pays to push its aggregate block.
    pub root_gap: Vec<Time>,
    /// For every cluster: latency from the root.
    pub latency: Vec<Time>,
    /// For every cluster: the time its coordinator needs to scatter the block
    /// locally once it holds it. Zero for singletons (nothing to distribute);
    /// the **root's entry is filled and used** — [`ScatterProblem::from_grid`]
    /// models the root's own local scatter like any other cluster's, and
    /// [`ScatterProblem::makespan`] charges it once the root's interface has
    /// finished pushing every remote block (the root serves the wide-area
    /// sends first, exactly like the broadcast formalism's "forward, then
    /// broadcast locally" rule).
    pub local_scatter: Vec<Time>,
}

impl ScatterProblem {
    /// Builds the inter-cluster scatter problem for `grid`, distributing
    /// `per_node` bytes to every machine from the coordinator of `root`.
    pub fn from_grid(grid: &Grid, root: ClusterId, per_node: MessageSize) -> Self {
        let n = grid.num_clusters();
        assert!(root.index() < n, "root cluster outside the grid");
        let mut root_gap = vec![Time::ZERO; n];
        let mut latency = vec![Time::ZERO; n];
        let mut local_scatter = vec![Time::ZERO; n];
        for id in grid.cluster_ids() {
            let cluster = grid.cluster(id);
            let aggregate = Pattern::Scatter.aggregate_bytes(cluster.size, per_node);
            if id != root {
                root_gap[id.index()] = grid.gap(root, id, aggregate);
                latency[id.index()] = grid.latency(root, id);
            }
            if let Some(plogp) = cluster.intra.plogp() {
                local_scatter[id.index()] =
                    Pattern::Scatter.intra_time(plogp, cluster.size, per_node);
            }
        }
        ScatterProblem {
            root,
            per_node,
            root_gap,
            latency,
            local_scatter,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.root_gap.len()
    }

    /// The "tail" of a cluster: what still has to happen after the root finished
    /// pushing its block (`L + local scatter`).
    pub fn tail(&self, cluster: ClusterId) -> Time {
        self.latency[cluster.index()] + self.local_scatter[cluster.index()]
    }

    /// Makespan of scattering in the given send order: the root pushes the
    /// aggregate blocks back-to-back in that order, and every cluster finishes
    /// its local scatter `tail` after its block left the root; the root's own
    /// local scatter starts once its interface is free.
    pub fn makespan(&self, order: &[ClusterId]) -> Time {
        let mut clock = Time::ZERO;
        let mut makespan = Time::ZERO;
        for &cluster in order {
            debug_assert_ne!(cluster, self.root, "the root does not send to itself");
            clock += self.root_gap[cluster.index()];
            makespan = makespan.max(clock + self.tail(cluster));
        }
        // The root scatters locally once it has finished pushing everything.
        makespan.max(clock + self.local_scatter[self.root.index()])
    }

    /// Every non-root cluster, in identifier order.
    pub fn receivers(&self) -> Vec<ClusterId> {
        (0..self.num_clusters())
            .map(ClusterId)
            .filter(|&c| c != self.root)
            .collect()
    }

    /// Embeds the scatter into the broadcast formalism consumed by the
    /// [`ScheduleEngine`](crate::ScheduleEngine): only the root can send (every
    /// other link is infinitely expensive), the per-receiver gap is the cost of
    /// pushing that cluster's aggregate block, and the intra-cluster time is
    /// the local scatter. Relaying is thereby structurally excluded — exactly
    /// the MagPIe behaviour this module models.
    pub fn as_broadcast_problem(&self) -> BroadcastProblem {
        let n = self.num_clusters();
        let mut latency = SquareMatrix::filled(n, Time::INFINITY);
        let mut gap = SquareMatrix::filled(n, Time::INFINITY);
        for i in 0..n {
            latency[(i, i)] = Time::ZERO;
            gap[(i, i)] = Time::ZERO;
        }
        for j in 0..n {
            if j != self.root.index() {
                latency[(self.root.index(), j)] = self.latency[j];
                gap[(self.root.index(), j)] = self.root_gap[j];
            }
        }
        BroadcastProblem::from_parts(
            self.root,
            self.per_node,
            latency,
            gap,
            self.local_scatter.clone(),
        )
    }
}

/// The send orderings evaluated for the inter-cluster scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScatterOrdering {
    /// Identifier order — the grid-unaware baseline (MagPIe's behaviour).
    ListOrder,
    /// Non-increasing tail (`L + local scatter`): the grid-aware rule, analogous
    /// to ECEF-LAT's "serve the clusters with the most remaining work first".
    LongestTailFirst,
    /// Non-decreasing tail — the pessimal ordering, kept for ablation.
    ShortestTailFirst,
}

impl ScatterOrdering {
    /// The send order this policy produces, scheduled by the shared
    /// pattern-agnostic engine (see [`ScatterTailPolicy`]): each round picks
    /// the receiver optimising the policy's tail objective, which reproduces
    /// the corresponding stable sort exactly (ties fall back to cluster-id
    /// order).
    pub fn order(&self, problem: &ScatterProblem) -> Vec<ClusterId> {
        let broadcast = problem.as_broadcast_problem();
        let mut policy = ScatterTailPolicy {
            root: problem.root,
            ordering: *self,
        };
        with_shared_engine(|engine| {
            engine.schedule_with(&broadcast, &mut policy);
            engine.events().iter().map(|e| e.receiver).collect()
        })
    }

    /// The makespan this policy achieves on `problem`.
    pub fn makespan(&self, problem: &ScatterProblem) -> Time {
        problem.makespan(&self.order(problem))
    }
}

/// [`SelectionPolicy`] realising a [`ScatterOrdering`] on the engine: only
/// root-outgoing edges are admissible, and the receiver bias is the cluster's
/// *tail* (`L + local scatter`), minimised or maximised depending on the
/// ordering. Demonstrates that the engine serves patterns beyond broadcast —
/// the same round loop, candidate cache and tie-breaking drive the scatter.
#[derive(Debug, Clone, Copy)]
pub struct ScatterTailPolicy {
    root: ClusterId,
    ordering: ScatterOrdering,
}

impl SelectionPolicy for ScatterTailPolicy {
    fn name(&self) -> &str {
        match self.ordering {
            ScatterOrdering::ListOrder => "Scatter(list)",
            ScatterOrdering::LongestTailFirst => "Scatter(longest-tail)",
            ScatterOrdering::ShortestTailFirst => "Scatter(shortest-tail)",
        }
    }

    fn edge_score(&self, _view: &EngineView<'_>, sender: ClusterId, _receiver: ClusterId) -> Time {
        if sender == self.root {
            Time::ZERO
        } else {
            Time::INFINITY
        }
    }

    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        _workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        match self.ordering {
            ScatterOrdering::ListOrder => Time::ZERO,
            ScatterOrdering::LongestTailFirst | ScatterOrdering::ShortestTailFirst => {
                let problem = view.problem();
                problem.latency(self.root, receiver) + problem.intra_time(receiver)
            }
        }
    }

    fn objective(&self) -> Objective {
        match self.ordering {
            ScatterOrdering::LongestTailFirst => Objective::Maximize,
            ScatterOrdering::ListOrder | ScatterOrdering::ShortestTailFirst => Objective::Minimize,
        }
    }

    fn sender_time_sensitive(&self) -> bool {
        false
    }
}

/// Analytic **lower bound** on a personalised all-to-all in which every machine
/// exchanges `per_pair` bytes with every other machine: each ordered cluster
/// pair `(i, j)` moves `size_i · size_j · per_pair` bytes over its wide-area
/// link, so a cluster's single network interface must serialise the gaps of
/// **both** its outgoing and its incoming transfers (send *and* receive
/// interface time — the directed links may be asymmetric, so the two
/// directions are priced separately). Latencies pipeline behind the gaps and
/// only a **single terminal latency** is charged: the cluster's receives
/// serialise on its interface, so its last arrival cannot beat the summed
/// receive gaps plus the cheapest incoming latency. Each cluster additionally
/// runs its local all-to-all after its wide-area traffic drains. The estimate
/// is the maximum over clusters of these per-cluster bounds.
///
/// Every schedule produced by [`alltoall_schedule`] respects this figure (the
/// transfer scheduler uses the same single-port interface model), which the
/// tests assert; use the schedule for executable timings and this estimate to
/// compare topologies cheaply.
pub fn alltoall_estimate(grid: &Grid, per_pair: MessageSize) -> Time {
    let pair_bytes = |a: ClusterId, b: ClusterId| {
        MessageSize::from_bytes(
            per_pair.as_bytes() * u64::from(grid.cluster(a).size) * u64::from(grid.cluster(b).size),
        )
    };
    exchange_estimate(
        grid,
        pair_bytes,
        |_| Time::ZERO,
        |i| {
            let ci = grid.cluster(i);
            match ci.intra.plogp() {
                Some(plogp) => Pattern::AllToAll.intra_time(plogp, ci.size, per_pair),
                None => Time::ZERO,
            }
        },
    )
}

/// The per-cluster interface bound shared by [`alltoall_estimate`] and
/// [`allgather_estimate`] — the skeleton the PR-3 send/receive-inversion fix
/// showed must exist exactly once: cluster `i`'s single interface, available
/// only after `lead_in(i)`, serialises the gaps of its outgoing **and**
/// incoming transfers (`payload(from, to)` bytes per ordered pair, each
/// priced on its own directed link); its last arrival cannot beat the summed
/// receive gaps plus one (the cheapest) incoming latency; `tail(i)` runs
/// after the traffic drains. Returns the maximum over clusters.
fn exchange_estimate(
    grid: &Grid,
    mut payload: impl FnMut(ClusterId, ClusterId) -> MessageSize,
    mut lead_in: impl FnMut(ClusterId) -> Time,
    mut tail: impl FnMut(ClusterId) -> Time,
) -> Time {
    let mut worst = Time::ZERO;
    for i in grid.cluster_ids() {
        let mut interface = Time::ZERO;
        let mut receive_gaps = Time::ZERO;
        let mut min_in_latency = Time::INFINITY;
        for j in grid.cluster_ids() {
            if i == j {
                continue;
            }
            let in_gap = grid.gap(j, i, payload(j, i));
            interface += grid.gap(i, j, payload(i, j)) + in_gap;
            receive_gaps += in_gap;
            min_in_latency = min_in_latency.min(grid.latency(j, i));
        }
        let mut busy = interface;
        if min_in_latency.is_finite() {
            // The last incoming payload arrives no earlier than all receive
            // gaps plus one (the cheapest) latency.
            busy = busy.max(receive_gaps + min_in_latency);
        }
        worst = worst.max(lead_in(i) + busy + tail(i));
    }
    worst
}

/// Convenience: the broadcast problem's root reused for a scatter on the same
/// grid — handy when an application alternates both collectives.
pub fn scatter_problem_like(broadcast: &BroadcastProblem, grid: &Grid) -> ScatterProblem {
    ScatterProblem::from_grid(grid, broadcast.root, broadcast.message)
}

/// A scatter problem whose inter-cluster level may **relay**: a coordinator
/// that holds a concatenation of blocks forwards other clusters' blocks
/// onward instead of leaving every delivery to the root.
///
/// The schedule is a rooted tree with per-sender send orders. The message a
/// sender pushes towards child `c` is the concatenation of the blocks of `c`'s
/// whole subtree, priced by the link's `g(m)` for that concatenated size — one
/// per-message cost instead of one per block, which is exactly what the MagPIe
/// "relaying never helps" argument ignores (it counts bytes, not messages, and
/// assumes symmetric links).
///
/// Unlike [`ScatterProblem`], this type keeps the [`Grid`] so edges can be
/// priced for arbitrary concatenations.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayScatterProblem {
    /// The cluster whose coordinator initially holds all blocks.
    pub root: ClusterId,
    /// Per-machine block size.
    pub per_node: MessageSize,
    grid: Grid,
    /// Per cluster: its aggregate block (`size · per_node`).
    block: Vec<MessageSize>,
    /// Per cluster: local scatter time once its coordinator holds its block.
    local_scatter: Vec<Time>,
}

/// One inter-cluster transfer of a [`RelaySchedule`], carrying the
/// concatenated blocks of the receiver's subtree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelayEvent {
    /// Cluster whose coordinator pushes the payload.
    pub sender: ClusterId,
    /// Cluster whose coordinator receives it.
    pub receiver: ClusterId,
    /// Concatenated payload: the receiver's block plus every block it will
    /// relay onward.
    pub payload: MessageSize,
    /// When the sender's interface starts pushing.
    pub start: Time,
    /// When the receiver holds the payload: `start + g(payload) + L`.
    pub arrival: Time,
}

/// A fully timed relay-capable scatter schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelaySchedule {
    /// The root cluster.
    pub root: ClusterId,
    /// Inter-cluster transfers in commit order (each sender issues its own
    /// transfers back to back in this order).
    pub events: Vec<RelayEvent>,
    /// Per cluster: when all of its machines hold their blocks (coordinator
    /// forwards first, then scatters locally — the broadcast convention).
    pub completion: Vec<Time>,
    /// Name of the ordering that produced the schedule.
    pub heuristic: String,
}

impl RelaySchedule {
    /// The makespan: the moment every machine holds its block.
    pub fn makespan(&self) -> Time {
        self.completion.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// The relay-capable send orderings evaluated for the inter-cluster scatter,
/// realised as [`SelectionPolicy`] impls over payload-priced edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RelayOrdering {
    /// Only the root sends — the MagPIe direct scatter expressed in the relay
    /// machinery (its retimed makespan matches [`ScatterProblem::makespan`]
    /// for the same order).
    Direct,
    /// ECEF carried over to per-block payloads: each round commits the
    /// `(sender, receiver)` pair minimising `RT_s + g_{s,r}(S_r) + L_{s,r}`.
    EarliestCompletion,
    /// [`RelayOrdering::EarliestCompletion`] plus the receiver's local scatter
    /// time — the ECEF-LAt analogue, favouring clusters that still have local
    /// work to hide.
    EarliestLocalFinish,
}

impl RelayOrdering {
    /// Display name recorded in produced schedules.
    pub fn name(&self) -> &'static str {
        match self {
            RelayOrdering::Direct => "RelayScatter(direct)",
            RelayOrdering::EarliestCompletion => "RelayScatter(earliest-completion)",
            RelayOrdering::EarliestLocalFinish => "RelayScatter(earliest-local-finish)",
        }
    }
}

/// [`SelectionPolicy`] realising a [`RelayOrdering`] on the engine: edge
/// scores are the payload-priced completion estimates served by the costed
/// view (the engine's per-edge [`EdgeCosts`] path), so a relay with cheap
/// links wins senders away from the root as soon as it is reached.
#[derive(Debug, Clone, Copy)]
pub struct RelayScatterPolicy {
    root: ClusterId,
    ordering: RelayOrdering,
}

impl RelayScatterPolicy {
    /// A policy realising `ordering` for a scatter rooted at `root`.
    pub fn new(root: ClusterId, ordering: RelayOrdering) -> Self {
        RelayScatterPolicy { root, ordering }
    }
}

impl SelectionPolicy for RelayScatterPolicy {
    fn name(&self) -> &str {
        self.ordering.name()
    }

    fn edge_score(&self, view: &EngineView<'_>, sender: ClusterId, receiver: ClusterId) -> Time {
        if self.ordering == RelayOrdering::Direct && sender != self.root {
            return Time::INFINITY;
        }
        view.completion_estimate(sender, receiver)
    }

    fn receiver_bias(
        &mut self,
        view: &EngineView<'_>,
        _workspace: &mut LookaheadWorkspace,
        receiver: ClusterId,
    ) -> Time {
        match self.ordering {
            RelayOrdering::EarliestLocalFinish => view.problem().intra_time(receiver),
            _ => Time::ZERO,
        }
    }

    fn uses_receiver_bias(&self) -> bool {
        self.ordering == RelayOrdering::EarliestLocalFinish
    }

    fn edge_score_offset(
        &self,
        _problem: &BroadcastProblem,
        _receiver: ClusterId,
        min_incoming_transfer: Time,
    ) -> Time {
        // Scores are completion estimates `RT_s + g + L`, so every sender's
        // score is bounded below by its ready time plus the receiver's
        // cheapest incoming transfer (precomputed from the costed matrix).
        min_incoming_transfer
    }
}

impl RelayScatterProblem {
    /// Builds the relay-capable scatter problem for `grid`, distributing
    /// `per_node` bytes to every machine from the coordinator of `root`.
    pub fn from_grid(grid: &Grid, root: ClusterId, per_node: MessageSize) -> Self {
        let n = grid.num_clusters();
        assert!(root.index() < n, "root cluster outside the grid");
        let mut block = vec![MessageSize::ZERO; n];
        let mut local_scatter = vec![Time::ZERO; n];
        for id in grid.cluster_ids() {
            let cluster = grid.cluster(id);
            block[id.index()] = Pattern::Scatter.aggregate_bytes(cluster.size, per_node);
            if let Some(plogp) = cluster.intra.plogp() {
                local_scatter[id.index()] =
                    Pattern::Scatter.intra_time(plogp, cluster.size, per_node);
            }
        }
        RelayScatterProblem {
            root,
            per_node,
            grid: grid.clone(),
            block,
            local_scatter,
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.block.len()
    }

    /// The aggregate block of one cluster.
    pub fn block(&self, cluster: ClusterId) -> MessageSize {
        self.block[cluster.index()]
    }

    /// The local scatter time of one cluster.
    pub fn local_scatter(&self, cluster: ClusterId) -> Time {
        self.local_scatter[cluster.index()]
    }

    /// The embedding handed to the engine's structure pass: latencies and
    /// intra times are real, while the gap matrix carries the nominal
    /// `per_node` pricing — the per-receiver block prices are supplied
    /// separately through [`RelayScatterProblem::edge_costs`], exercising the
    /// engine's per-edge payload path.
    pub fn as_broadcast_problem(&self) -> BroadcastProblem {
        let n = self.num_clusters();
        let mut latency = SquareMatrix::filled(n, Time::ZERO);
        let mut gap = SquareMatrix::filled(n, Time::ZERO);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                latency[(i, j)] = self.grid.latency(ClusterId(i), ClusterId(j));
                gap[(i, j)] = self.grid.gap(ClusterId(i), ClusterId(j), self.per_node);
            }
        }
        BroadcastProblem::from_parts(
            self.root,
            self.per_node,
            latency,
            gap,
            self.local_scatter.clone(),
        )
    }

    /// Per-edge costs pricing each candidate edge for the **receiver's
    /// aggregate block** — the optimistic (single-block) price the greedy
    /// structure pass scores with; the exact concatenated prices are applied
    /// by [`RelayScatterProblem::retime`] once subtrees are known.
    pub fn edge_costs(&self) -> EdgeCosts {
        EdgeCosts::priced_by_grid(&self.grid, |_, receiver| self.block[receiver.index()])
    }

    /// Schedules the scatter with `ordering`: a greedy engine pass over
    /// payload-priced edges decides the relay tree and send orders, then the
    /// exact retiming pass prices every edge by its subtree concatenation.
    pub fn schedule(&self, ordering: RelayOrdering) -> RelaySchedule {
        let broadcast = self.as_broadcast_problem();
        let costs = self.edge_costs();
        let mut policy = RelayScatterPolicy {
            root: self.root,
            ordering,
        };
        let structure = with_shared_engine(|engine| {
            engine.schedule_with_costs(&broadcast, &costs, &mut policy)
        });
        let commits: Vec<(ClusterId, ClusterId)> = structure
            .events
            .iter()
            .map(|e| (e.sender, e.receiver))
            .collect();
        self.retime(&commits, ordering.name())
    }

    /// The makespan `ordering` achieves on this problem.
    pub fn makespan(&self, ordering: RelayOrdering) -> Time {
        self.schedule(ordering).makespan()
    }

    /// Exactly times a commit sequence (any valid A/B sequence: each sender
    /// already reached, each receiver reached exactly once):
    ///
    /// 1. the payload of the edge to `r` is the concatenation of the blocks of
    ///    `r`'s whole subtree (every cluster later committed below `r`),
    /// 2. each sender issues its transfers back to back in commit order once
    ///    it holds its own payload, the edge occupying its interface for
    ///    `g(payload)`,
    /// 3. a coordinator scatters locally after its last forward (the root:
    ///    after pushing everything) — the broadcast convention, which makes a
    ///    direct star sequence reproduce [`ScatterProblem::makespan`] exactly.
    pub fn retime(&self, commits: &[(ClusterId, ClusterId)], heuristic: &str) -> RelaySchedule {
        let n = self.num_clusters();
        assert_eq!(commits.len(), n.saturating_sub(1), "incomplete sequence");
        // Subtree payloads: walking the commits in reverse, a receiver's
        // subtree is final before its own edge is priced (its children all
        // appear later in commit order).
        let mut subtree: Vec<u64> = self.block.iter().map(|b| b.as_bytes()).collect();
        subtree[self.root.index()] = 0;
        for &(s, r) in commits.iter().rev() {
            subtree[s.index()] += subtree[r.index()];
        }
        let mut received = vec![false; n];
        received[self.root.index()] = true;
        let mut nic_free = vec![Time::ZERO; n];
        let mut events = Vec::with_capacity(commits.len());
        for &(s, r) in commits {
            assert!(received[s.index()], "sender {s} relays before receiving");
            assert!(!received[r.index()], "receiver {r} reached twice");
            assert_ne!(r, self.root, "the root never receives");
            received[r.index()] = true;
            let payload = MessageSize::from_bytes(subtree[r.index()]);
            let start = nic_free[s.index()];
            let gap = self.grid.gap(s, r, payload);
            let arrival = start + gap + self.grid.latency(s, r);
            nic_free[s.index()] = start + gap;
            nic_free[r.index()] = arrival;
            events.push(RelayEvent {
                sender: s,
                receiver: r,
                payload,
                start,
                arrival,
            });
        }
        let completion = (0..n)
            .map(|i| nic_free[i] + self.local_scatter[i])
            .collect();
        RelaySchedule {
            root: self.root,
            events,
            completion,
            heuristic: heuristic.to_owned(),
        }
    }

    /// Brute-force optimum over **every** relay tree and send order (all A/B
    /// commit sequences), exact per [`RelayScatterProblem::retime`]. The
    /// search is super-exponential; callers are limited to small instances.
    pub fn optimal_makespan(&self) -> Time {
        let n = self.num_clusters();
        assert!(n <= 6, "brute-force relay enumeration is super-exponential");
        let mut in_a = vec![false; n];
        in_a[self.root.index()] = true;
        let mut seq = Vec::with_capacity(n.saturating_sub(1));
        let mut best = Time::INFINITY;
        self.enumerate(&mut in_a, &mut seq, &mut best);
        best
    }

    fn enumerate(&self, in_a: &mut [bool], seq: &mut Vec<(ClusterId, ClusterId)>, best: &mut Time) {
        let n = self.num_clusters();
        if seq.len() + 1 == n {
            *best = (*best).min(self.retime(seq, "enumerated").makespan());
            return;
        }
        for s in 0..n {
            if !in_a[s] {
                continue;
            }
            for r in 0..n {
                if in_a[r] {
                    continue;
                }
                in_a[r] = true;
                seq.push((ClusterId(s), ClusterId(r)));
                self.enumerate(in_a, seq, best);
                seq.pop();
                in_a[r] = false;
            }
        }
    }

    /// Brute-force optimum over **direct-only** orderings (the star trees):
    /// the best the MagPIe assumption can do on this instance.
    pub fn best_direct_makespan(&self) -> Time {
        let n = self.num_clusters();
        assert!(n <= 7, "direct enumeration is factorial");
        let mut receivers: Vec<ClusterId> =
            (0..n).map(ClusterId).filter(|&c| c != self.root).collect();
        if receivers.is_empty() {
            return self.retime(&[], "singleton").makespan();
        }
        let mut best = Time::INFINITY;
        let root = self.root;
        permute_sequences(&mut receivers, 0, &mut |order| {
            let seq: Vec<(ClusterId, ClusterId)> = order.iter().map(|&r| (root, r)).collect();
            best = best.min(self.retime(&seq, "direct").makespan());
        });
        best
    }

    /// Sanity payload: the concatenation of every non-root block — what a
    /// single-relay schedule would push over the root's uplink first.
    pub fn total_remote_bytes(&self) -> MessageSize {
        concat_blocks(
            self.block
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != self.root.index())
                .map(|(_, &b)| b),
        )
    }
}

/// A gather problem whose inter-cluster level may **relay** — the exact
/// **time-reversed dual** of [`RelayScatterProblem`].
///
/// Every cluster's coordinator holds its cluster's aggregate block (collected
/// by a local gather) and all blocks must reach the `root`'s coordinator.
/// A gather tree is a scatter tree run backwards: each coordinator hands the
/// concatenation of its **whole subtree's blocks** to its parent, and a block
/// travelling `c → p` pays the `c → p` link — the sender/receiver roles of
/// every edge are swapped relative to the scatter.
///
/// The implementation *is* that duality: the problem wraps a
/// [`RelayScatterProblem`] over the [transposed grid](Grid::transposed)
/// (so every scatter edge `p → c` is priced on the original `c → p` link),
/// schedules it with the unchanged engine machinery, and reflects the result
/// about its makespan ([`RelayGatherSchedule`]). Gather's local phase is the
/// mirror too: the local gather time equals the local scatter time under the
/// pLogP model ([`Pattern::Gather`] and [`Pattern::Scatter`] share one
/// formula), charged *before* a coordinator's uplink send instead of after
/// its forwards.
///
/// The reflected schedule is genuinely executable (receives serialise on the
/// parent's interface exactly where the scatter's sends did) and its makespan
/// equals the mirrored scatter's **bit for bit**; an independent forward
/// (ASAP) retiming — [`RelayGatherProblem::forward_makespan`] — reproduces it
/// to float tolerance, which the duality proptests pin.
#[derive(Debug, Clone, PartialEq)]
pub struct RelayGatherProblem {
    /// The cluster whose coordinator must end up holding every block.
    pub root: ClusterId,
    /// Per-machine block size.
    pub per_node: MessageSize,
    /// The time-reversed twin: a relay-capable scatter from `root` on the
    /// transposed grid.
    mirror: RelayScatterProblem,
}

/// A fully timed relay-capable gather schedule: the reflection of a
/// [`RelaySchedule`] about its makespan.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayGatherSchedule {
    /// The sink cluster.
    pub root: ClusterId,
    /// Inter-cluster transfers in execution (time) order. `sender` is the
    /// child handing the concatenation of its subtree's blocks to `receiver`,
    /// its parent; `start` is the hand-off (the payload then travels `L` and
    /// occupies the **parent's** interface for `g(payload)` — the mirrored
    /// gap model), `arrival` the moment the parent holds it.
    pub events: Vec<RelayEvent>,
    /// Per cluster: when its subtree's data is complete at its parent (for
    /// the root: when it holds every block — the makespan).
    pub completion: Vec<Time>,
    /// Name of the ordering that produced the schedule.
    pub heuristic: String,
}

impl RelayGatherSchedule {
    /// The makespan: the moment the root's coordinator holds every block.
    pub fn makespan(&self) -> Time {
        self.completion.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

impl RelayGatherProblem {
    /// Builds the relay-capable gather problem for `grid`, collecting
    /// `per_node` bytes from every machine at the coordinator of `root`.
    pub fn from_grid(grid: &Grid, root: ClusterId, per_node: MessageSize) -> Self {
        RelayGatherProblem {
            root,
            per_node,
            mirror: RelayScatterProblem::from_grid(&grid.transposed(), root, per_node),
        }
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.mirror.num_clusters()
    }

    /// The aggregate block one cluster contributes.
    pub fn block(&self, cluster: ClusterId) -> MessageSize {
        self.mirror.block(cluster)
    }

    /// The local gather time of one cluster (its coordinator collecting the
    /// cluster's blocks before any uplink send).
    pub fn local_gather(&self, cluster: ClusterId) -> Time {
        self.mirror.local_scatter(cluster)
    }

    /// The time-reversed scatter twin — a [`RelayScatterProblem`] from `root`
    /// on the transposed grid. Exposed so the duality tests can compare
    /// against an independently built instance.
    pub fn mirror(&self) -> &RelayScatterProblem {
        &self.mirror
    }

    /// Schedules the gather with `ordering` by scheduling the mirrored
    /// scatter and reflecting the result; the makespan equals the mirror's
    /// bit for bit.
    pub fn schedule(&self, ordering: RelayOrdering) -> RelayGatherSchedule {
        self.reflect(&self.mirror.schedule(ordering))
    }

    /// The makespan `ordering` achieves on this problem.
    pub fn makespan(&self, ordering: RelayOrdering) -> Time {
        self.schedule(ordering).makespan()
    }

    /// Exactly times a gather tree given as a scatter-direction commit
    /// sequence (`(parent, child)` pairs growing the tree from the root, the
    /// same shape [`RelayScatterProblem::retime`] consumes): the mirrored
    /// scatter is retimed and reflected.
    pub fn retime(
        &self,
        commits: &[(ClusterId, ClusterId)],
        heuristic: &str,
    ) -> RelayGatherSchedule {
        self.reflect(&self.mirror.retime(commits, heuristic))
    }

    /// Reflects a mirrored-scatter schedule about its makespan `M`: event
    /// `p → c` with window `[start, arrival]` becomes gather event `c → p`
    /// with window `[M − arrival, M − start]`, in reversed order (so events
    /// stay time-ordered). The makespan is exactly `M` — same float.
    fn reflect(&self, scatter: &RelaySchedule) -> RelayGatherSchedule {
        let horizon = scatter.makespan();
        let n = self.num_clusters();
        let events = scatter
            .events
            .iter()
            .rev()
            .map(|e| RelayEvent {
                sender: e.receiver,
                receiver: e.sender,
                payload: e.payload,
                start: horizon - e.arrival,
                arrival: horizon - e.start,
            })
            .collect();
        let mut completion = vec![Time::ZERO; n];
        completion[self.root.index()] = horizon;
        for e in &scatter.events {
            completion[e.receiver.index()] = horizon - e.start;
        }
        RelayGatherSchedule {
            root: self.root,
            events,
            completion,
            heuristic: scatter.heuristic.clone(),
        }
    }

    /// Independent **forward** (ASAP) timing of a gather tree, given as a
    /// scatter-direction commit sequence: every cluster finishes its local
    /// gather first, a child hands off its subtree concatenation as soon as
    /// it is complete, the payload travels `L` and then occupies the parent's
    /// interface for `g` (receives serialise per parent in reflected order).
    ///
    /// By the reversal argument this equals the mirrored scatter's retimed
    /// makespan *mathematically*; the floats are accumulated in a different
    /// order, so tests compare with a tolerance. Used by the brute-force
    /// gather enumeration so the bracket is computed without going through
    /// the mirror.
    pub fn forward_makespan(&self, commits: &[(ClusterId, ClusterId)]) -> Time {
        let n = self.num_clusters();
        assert_eq!(commits.len(), n.saturating_sub(1), "incomplete sequence");
        // Subtree payloads, exactly as the scatter retiming computes them.
        let mut subtree: Vec<u64> = (0..n)
            .map(|i| self.mirror.block(ClusterId(i)).as_bytes())
            .collect();
        subtree[self.root.index()] = 0;
        for &(p, c) in commits.iter().rev() {
            subtree[p.index()] += subtree[c.index()];
        }
        // `avail[i]`: cluster i's subtree concatenation is complete;
        // `nic[i]`: its interface is free (local gather occupies it first).
        let mut avail: Vec<Time> = (0..n).map(|i| self.local_gather(ClusterId(i))).collect();
        let mut nic = avail.clone();
        // Reversed commit order puts every (c, grandchild) hand-off before
        // (p, c), so `avail[c]` is final when c's own edge is timed; it is
        // also each parent's receive order in the reflected schedule.
        for &(p, c) in commits.iter().rev() {
            let payload = MessageSize::from_bytes(subtree[c.index()]);
            // Mirrored pricing: the original `c → p` link is the transposed
            // grid's `p → c` entry, evaluated through the same pLogP curve as
            // the mirror so both timings price identical floats.
            let gap = self.mirror.grid.gap(p, c, payload);
            let latency = self.mirror.grid.latency(p, c);
            let occupancy_start = nic[p.index()].max(avail[c.index()] + latency);
            let done = occupancy_start + gap;
            nic[p.index()] = done;
            avail[p.index()] = avail[p.index()].max(done);
        }
        avail[self.root.index()]
    }

    /// Brute-force optimum over **every** gather tree and receive order,
    /// timed forward by [`RelayGatherProblem::forward_makespan`] — the gather
    /// side of the duality bracket. Super-exponential; small instances only.
    pub fn optimal_forward_makespan(&self) -> Time {
        let n = self.num_clusters();
        assert!(
            n <= 6,
            "brute-force gather enumeration is super-exponential"
        );
        let mut in_a = vec![false; n];
        in_a[self.root.index()] = true;
        let mut seq = Vec::with_capacity(n.saturating_sub(1));
        let mut best = Time::INFINITY;
        self.enumerate_forward(&mut in_a, &mut seq, &mut best);
        best
    }

    fn enumerate_forward(
        &self,
        in_a: &mut [bool],
        seq: &mut Vec<(ClusterId, ClusterId)>,
        best: &mut Time,
    ) {
        let n = self.num_clusters();
        if seq.len() + 1 == n {
            *best = (*best).min(self.forward_makespan(seq));
            return;
        }
        for p in 0..n {
            if !in_a[p] {
                continue;
            }
            for c in 0..n {
                if in_a[c] {
                    continue;
                }
                in_a[c] = true;
                seq.push((ClusterId(p), ClusterId(c)));
                self.enumerate_forward(in_a, seq, best);
                seq.pop();
                in_a[c] = false;
            }
        }
    }

    /// Brute-force optimum over every gather tree via the mirrored scatter's
    /// exact enumeration (bit-exact against the greedy's timing model).
    pub fn optimal_makespan(&self) -> Time {
        self.mirror.optimal_makespan()
    }

    /// Brute-force optimum over **direct-only** gathers (every cluster hands
    /// its own block straight to the root, only the receive order varies).
    pub fn best_direct_makespan(&self) -> Time {
        self.mirror.best_direct_makespan()
    }
}

fn permute_sequences(order: &mut Vec<ClusterId>, k: usize, visit: &mut impl FnMut(&[ClusterId])) {
    if k == order.len() {
        visit(order);
        return;
    }
    for i in k..order.len() {
        order.swap(k, i);
        permute_sequences(order, k + 1, visit);
        order.swap(k, i);
    }
}

/// A fully timed all-to-all exchange schedule: the per-pair transfers placed
/// by the engine plus per-cluster completion times including the local
/// exchange.
#[derive(Debug, Clone, PartialEq)]
pub struct AllToAllSchedule {
    /// The timed per-cluster-pair transfers.
    pub exchange: ExchangeSchedule,
    /// Per cluster: when all of its machines hold all their data.
    pub completion: Vec<Time>,
}

impl AllToAllSchedule {
    /// The makespan of the exchange.
    pub fn makespan(&self) -> Time {
        self.completion.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// Schedules a personalised all-to-all on `grid`: the exchange decomposes into
/// one transfer per ordered cluster pair (`S_i · S_j · per_pair` bytes, priced
/// by that link's `g`), placed on the clusters' single interfaces by the
/// engine's earliest-completion-first rule
/// ([`ScheduleEngine::schedule_transfers`](crate::ScheduleEngine::schedule_transfers));
/// each cluster then runs its local all-to-all. The resulting makespan is an
/// executable figure — always at least [`alltoall_estimate`], which stays the
/// analytic lower bound.
pub fn alltoall_schedule(grid: &Grid, per_pair: MessageSize) -> AllToAllSchedule {
    let set = alltoall_transfer_set(grid, per_pair);
    let local: Vec<Time> = grid
        .clusters()
        .iter()
        .map(|c| match c.intra.plogp() {
            Some(plogp) => Pattern::AllToAll.intra_time(plogp, c.size, per_pair),
            None => Time::ZERO,
        })
        .collect();
    let exchange = with_shared_engine(|engine| engine.schedule_transfers(&set));
    let completion = exchange.completion_with_local(&local);
    AllToAllSchedule {
        exchange,
        completion,
    }
}

/// The [`TransferSet`] of a personalised all-to-all on `grid`: one transfer
/// per ordered cluster pair moving `S_i · S_j · per_pair` bytes, gap priced
/// by that directed link. The single source of the exchange workload —
/// [`alltoall_schedule`] consumes it, and the scaling figure and the
/// telemetry regression bench measure exactly this set, so the benchmarked
/// workload can never drift from the product path.
pub fn alltoall_transfer_set(grid: &Grid, per_pair: MessageSize) -> TransferSet {
    let mut set = TransferSet::new(grid.num_clusters());
    for i in grid.cluster_ids() {
        let ci = grid.cluster(i);
        for j in grid.cluster_ids() {
            if i == j {
                continue;
            }
            let cj = grid.cluster(j);
            let payload = MessageSize::from_bytes(
                per_pair.as_bytes() * u64::from(ci.size) * u64::from(cj.size),
            );
            set.push(Transfer {
                from: i,
                to: j,
                payload,
                gap: grid.gap(i, j, payload),
                latency: grid.latency(i, j),
            });
        }
    }
    set
}

/// A fully timed allgather schedule: the per-ordered-pair aggregate-block
/// transfers placed by the engine (each cluster's interface released only
/// after its local gather), plus per-cluster completion times including the
/// local redistribution of the full concatenation.
#[derive(Debug, Clone, PartialEq)]
pub struct AllGatherSchedule {
    /// The timed per-cluster-pair transfers.
    pub exchange: ExchangeSchedule,
    /// Per cluster: the local gather lead-in gating its interface (the
    /// release times handed to the transfer scheduler).
    pub release: Vec<Time>,
    /// Per cluster: when all of its machines hold every block.
    pub completion: Vec<Time>,
}

impl AllGatherSchedule {
    /// The makespan of the allgather.
    pub fn makespan(&self) -> Time {
        self.completion.iter().copied().max().unwrap_or(Time::ZERO)
    }
}

/// Per-cluster local phases of the allgather: the **local gather** lead-in
/// (the coordinator collects its cluster's blocks before any wide-area send)
/// and the **local redistribution** tail (the coordinator broadcasts the full
/// concatenation — every cluster's aggregate, its own included, since each
/// rank only holds its own block — along a binomial tree once its wide-area
/// traffic drains).
fn allgather_local_phases(grid: &Grid, per_node: MessageSize) -> (Vec<Time>, Vec<Time>) {
    let total = concat_blocks(
        grid.clusters()
            .iter()
            .map(|c| Pattern::AllGather.aggregate_bytes(c.size, per_node)),
    );
    let mut release = Vec::with_capacity(grid.num_clusters());
    let mut redistribute = Vec::with_capacity(grid.num_clusters());
    for cluster in grid.clusters() {
        match cluster.intra.plogp() {
            Some(plogp) => {
                release.push(Pattern::Gather.intra_time(plogp, cluster.size, per_node));
                redistribute.push(if cluster.size > 1 {
                    BroadcastAlgorithm::BinomialTree.predict(plogp, cluster.size, total)
                } else {
                    Time::ZERO
                });
            }
            None => {
                release.push(Time::ZERO);
                redistribute.push(Time::ZERO);
            }
        }
    }
    (release, redistribute)
}

/// Analytic **lower bound** on an allgather in which every machine contributes
/// `per_node` bytes and must end up with every other machine's block: cluster
/// `i` pushes its aggregate block (`S_i · per_node`) to every other cluster
/// and receives every other cluster's aggregate, so its single interface —
/// released only after its local gather — must serialise the gaps of both its
/// outgoing **and** incoming transfers (the directed links may be asymmetric,
/// so the two directions are priced separately, exactly like the corrected
/// [`alltoall_estimate`]). Latencies pipeline behind the gaps and only a
/// single terminal latency is charged on the receive path. Each cluster then
/// redistributes the full concatenation locally. The estimate is the maximum
/// over clusters of these per-cluster bounds; every schedule produced by
/// [`allgather_schedule`] respects it (the transfer scheduler uses the same
/// single-port, release-gated interface model), which the tests assert.
pub fn allgather_estimate(grid: &Grid, per_node: MessageSize) -> Time {
    let (release, redistribute) = allgather_local_phases(grid, per_node);
    exchange_estimate(
        grid,
        // An allgather transfer carries the *sender's* aggregate block.
        |from, _| Pattern::AllGather.aggregate_bytes(grid.cluster(from).size, per_node),
        |i| release[i.index()],
        |i| redistribute[i.index()],
    )
}

/// Schedules an allgather on `grid`: the exchange decomposes into one
/// transfer per ordered cluster pair — cluster `i` pushes its **aggregate
/// block** (`S_i · per_node` bytes, priced by that link's `g`) to cluster `j`
/// — placed on the clusters' single interfaces by the engine's
/// earliest-completion-first transfer scheduler with each interface released
/// only after its cluster's local gather
/// ([`ScheduleEngine::schedule_transfers_from`](crate::ScheduleEngine::schedule_transfers_from)).
/// This is the receive-side mirror of the machinery behind
/// [`alltoall_schedule`]: same transfer engine, but every payload is a whole
/// cluster aggregate instead of a pair-personalised slice, and the local
/// phases bracket the exchange (gather before, redistribution after). The
/// resulting makespan is always at least [`allgather_estimate`].
pub fn allgather_schedule(grid: &Grid, per_node: MessageSize) -> AllGatherSchedule {
    let n = grid.num_clusters();
    let (release, redistribute) = allgather_local_phases(grid, per_node);
    let mut set = TransferSet::new(n);
    for i in grid.cluster_ids() {
        let block = Pattern::AllGather.aggregate_bytes(grid.cluster(i).size, per_node);
        for j in grid.cluster_ids() {
            if i == j {
                continue;
            }
            set.push(Transfer {
                from: i,
                to: j,
                payload: block,
                gap: grid.gap(i, j, block),
                latency: grid.latency(i, j),
            });
        }
    }
    let exchange = with_shared_engine(|engine| engine.schedule_transfers_from(&set, &release));
    let completion = exchange.completion_with_local(&redistribute);
    AllGatherSchedule {
        exchange,
        release,
        completion,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridcast_plogp::PLogP;
    use gridcast_topology::{grid5000_table3, Cluster, Grid};

    fn grid5000_scatter() -> ScatterProblem {
        ScatterProblem::from_grid(&grid5000_table3(), ClusterId(0), MessageSize::from_kib(64))
    }

    /// Five clusters: a root with a slow, high-per-message uplink to everyone,
    /// one singleton relay with fast links to the three leaf clusters. The
    /// instance the acceptance criteria name: relaying through the singleton
    /// strictly beats the best direct-only ordering.
    fn slow_uplink_grid() -> Grid {
        let lan = PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6);
        // Root uplink: 300 ms per-message cost, 50 MB/s, 200 ms latency.
        let slow = PLogP::affine(Time::from_millis(200.0), Time::from_millis(300.0), 50e6);
        // Relay fan-out: 5 ms per-message cost, 1 GB/s, 5 ms latency.
        let fast = PLogP::affine(Time::from_millis(5.0), Time::from_millis(5.0), 1e9);
        let mut builder = Grid::builder()
            .cluster(Cluster::with_plogp(ClusterId(0), "root", 4, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(1), "relay", 1, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(2), "leaf-a", 4, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(3), "leaf-b", 4, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(4), "leaf-c", 4, lan));
        for other in 1..5 {
            builder = builder.link_symmetric(ClusterId(0), ClusterId(other), slow.clone());
        }
        for leaf in 2..5 {
            builder = builder.link_symmetric(ClusterId(1), ClusterId(leaf), fast.clone());
        }
        for a in 2..5 {
            for b in (a + 1)..5 {
                builder = builder.link_symmetric(ClusterId(a), ClusterId(b), slow.clone());
            }
        }
        builder.build().unwrap()
    }

    #[test]
    fn from_grid_builds_consistent_vectors() {
        let p = grid5000_scatter();
        assert_eq!(p.num_clusters(), 6);
        assert_eq!(p.root_gap[0], Time::ZERO);
        assert_eq!(p.latency[0], Time::ZERO);
        // Singleton IDPOT clusters have no local scatter.
        assert_eq!(p.local_scatter[3], Time::ZERO);
        assert_eq!(p.local_scatter[4], Time::ZERO);
        // Bigger clusters mean bigger aggregate blocks, hence larger root gaps
        // towards them (Toulouse: 20 machines vs the 1-machine IDPOT nodes on a
        // comparable wide-area path).
        assert!(p.root_gap[5] > p.root_gap[3]);
        assert_eq!(p.receivers().len(), 5);
    }

    #[test]
    fn longest_tail_first_is_optimal_on_small_instances() {
        // Brute-force all send orders of the 5 receivers and check the rule.
        let p = grid5000_scatter();
        let receivers = p.receivers();
        let mut best = Time::INFINITY;
        let mut order = receivers.clone();
        permute(&mut order, 0, &p, &mut best);
        let rule = ScatterOrdering::LongestTailFirst.makespan(&p);
        assert!(
            rule <= best + Time::from_micros(1.0),
            "longest-tail-first ({rule}) worse than brute-force optimum ({best})"
        );
    }

    fn permute(order: &mut Vec<ClusterId>, k: usize, p: &ScatterProblem, best: &mut Time) {
        if k == order.len() {
            *best = (*best).min(p.makespan(order));
            return;
        }
        for i in k..order.len() {
            order.swap(k, i);
            permute(order, k + 1, p, best);
            order.swap(k, i);
        }
    }

    #[test]
    fn orderings_are_ranked_as_expected() {
        let p = grid5000_scatter();
        let longest = ScatterOrdering::LongestTailFirst.makespan(&p);
        let list = ScatterOrdering::ListOrder.makespan(&p);
        let shortest = ScatterOrdering::ShortestTailFirst.makespan(&p);
        assert!(longest <= list);
        assert!(longest <= shortest);
        // All three push the same bytes from the root, so none can beat the pure
        // transmission lower bound.
        let push_time: Time = p.root_gap.iter().copied().sum();
        assert!(longest >= push_time);
    }

    #[test]
    fn makespan_accounts_for_the_root_local_scatter() {
        let mut p = grid5000_scatter();
        let before = ScatterOrdering::LongestTailFirst.makespan(&p);
        // Give the root an enormous local scatter: it must dominate the makespan.
        p.local_scatter[0] = Time::from_secs(100.0);
        let after = ScatterOrdering::LongestTailFirst.makespan(&p);
        assert!(after > before);
        assert!(after >= Time::from_secs(100.0));
    }

    #[test]
    fn alltoall_estimate_scales_with_message_size() {
        let grid = grid5000_table3();
        let small = alltoall_estimate(&grid, MessageSize::from_bytes(256));
        let large = alltoall_estimate(&grid, MessageSize::from_kib(16));
        assert!(small > Time::ZERO);
        assert!(large > small);
        // The corrected figure counts send *and* receive interface time, so on
        // a symmetric grid it must dominate the send-gaps-only sum of the
        // busiest cluster.
        let m = MessageSize::from_kib(16);
        let outgoing_only = grid
            .cluster_ids()
            .map(|i| {
                grid.cluster_ids()
                    .filter(|&j| j != i)
                    .map(|j| {
                        let bytes = MessageSize::from_bytes(
                            m.as_bytes()
                                * u64::from(grid.cluster(i).size)
                                * u64::from(grid.cluster(j).size),
                        );
                        grid.gap(i, j, bytes)
                    })
                    .sum::<Time>()
            })
            .max()
            .unwrap();
        assert!(large > outgoing_only);
    }

    #[test]
    fn alltoall_estimate_counts_both_directions_with_one_terminal_latency() {
        // Two singleton clusters with asymmetric gaps: 0 → 1 cheap, 1 → 0
        // expensive. The per-cluster bound must serialise both directions on
        // each interface and add exactly one latency on the receive path.
        let cheap = PLogP::constant(Time::from_millis(1.0), Time::from_millis(10.0));
        let expensive = PLogP::constant(Time::from_millis(1.0), Time::from_millis(1000.0));
        let lan = PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6);
        let grid = Grid::builder()
            .cluster(Cluster::with_plogp(ClusterId(0), "a", 1, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(1), "b", 1, lan))
            .link_directed(ClusterId(0), ClusterId(1), cheap)
            .link_directed(ClusterId(1), ClusterId(0), expensive)
            .build()
            .unwrap();
        let estimate = alltoall_estimate(&grid, MessageSize::from_bytes(1));
        // Cluster 0's interface: 10 ms out + 1000 ms in = 1010 ms, which beats
        // its receive path (1000 + 1 ms) and both of cluster 1's bounds.
        assert!(
            estimate.approx_eq(Time::from_millis(1010.0), Time::from_micros(1.0)),
            "estimate {estimate} should pin both directions"
        );
    }

    #[test]
    fn alltoall_schedule_is_never_better_than_the_corrected_estimate() {
        let grid = grid5000_table3();
        for &kib in &[1u64, 16, 256] {
            let m = MessageSize::from_kib(kib);
            let schedule = alltoall_schedule(&grid, m);
            let estimate = alltoall_estimate(&grid, m);
            assert!(schedule.makespan().is_finite());
            assert_eq!(schedule.exchange.transfers.len(), 6 * 5);
            assert!(
                schedule.makespan() >= estimate,
                "schedule {} beat the lower bound {} at {kib} KiB",
                schedule.makespan(),
                estimate
            );
        }
    }

    #[test]
    fn root_local_scatter_entry_is_modelled_and_charged() {
        // Regression for the doc/behaviour mismatch: on a grid whose root
        // cluster is *modelled* (Orsay, 31 machines), `from_grid` fills the
        // root's local-scatter entry and `makespan` charges it after the
        // wide-area pushes.
        let p = grid5000_scatter();
        assert!(
            p.local_scatter[0] > Time::ZERO,
            "modelled root must keep a nonzero local scatter entry"
        );
        let order = p.receivers();
        let push_time: Time = p.root_gap.iter().copied().sum();
        assert!(p.makespan(&order) >= push_time + p.local_scatter[0]);
    }

    #[test]
    fn relay_star_retiming_matches_the_direct_scatter_model() {
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(64);
        let direct = ScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let relay = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let order = direct.receivers();
        let star: Vec<(ClusterId, ClusterId)> = order.iter().map(|&r| (ClusterId(0), r)).collect();
        let retimed = relay.retime(&star, "star");
        assert!(
            retimed
                .makespan()
                .approx_eq(direct.makespan(&order), Time::from_micros(1.0)),
            "star retiming {} diverges from the direct model {}",
            retimed.makespan(),
            direct.makespan(&order)
        );
        // Every event of a star carries exactly the receiver's block.
        for event in &retimed.events {
            assert_eq!(event.payload, relay.block(event.receiver));
        }
    }

    #[test]
    fn relay_direct_ordering_never_beats_the_brute_force_direct_optimum() {
        let relay = RelayScatterProblem::from_grid(
            &grid5000_table3(),
            ClusterId(0),
            MessageSize::from_kib(64),
        );
        let direct = relay.makespan(RelayOrdering::Direct);
        let best_direct = relay.best_direct_makespan();
        assert!(direct + Time::from_micros(1.0) >= best_direct);
    }

    #[test]
    fn relaying_strictly_beats_the_best_direct_ordering_on_a_slow_uplink() {
        let grid = slow_uplink_grid();
        let problem =
            RelayScatterProblem::from_grid(&grid, ClusterId(0), MessageSize::from_kib(64));
        let best_direct = problem.best_direct_makespan();
        let greedy = problem.schedule(RelayOrdering::EarliestCompletion);
        assert!(
            greedy.makespan() < best_direct,
            "relay-capable greedy ({}) should strictly beat the best direct ordering ({})",
            greedy.makespan(),
            best_direct
        );
        // The greedy actually relays: some event is sent by a non-root cluster
        // and the relay's first payload concatenates several blocks.
        assert!(greedy.events.iter().any(|e| e.sender != ClusterId(0)));
        let to_relay = greedy
            .events
            .iter()
            .find(|e| e.receiver == ClusterId(1))
            .expect("relay cluster is served");
        assert!(to_relay.payload > problem.block(ClusterId(1)));
        // And the true optimum over all relay trees is at least as good.
        let optimal = problem.optimal_makespan();
        assert!(optimal <= best_direct + Time::from_micros(1.0));
        assert!(greedy.makespan() + Time::from_micros(1.0) >= optimal);
    }

    #[test]
    fn relay_brute_force_is_bounded_by_direct_enumeration_on_grid5000() {
        // 6 clusters is within the enumeration bound; the relay optimum can
        // only improve on the star optimum because stars are a subset of the
        // enumerated trees.
        let problem = RelayScatterProblem::from_grid(
            &grid5000_table3(),
            ClusterId(0),
            MessageSize::from_kib(16),
        );
        let optimal = problem.optimal_makespan();
        let best_direct = problem.best_direct_makespan();
        assert!(optimal <= best_direct + Time::from_micros(1.0));
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let makespan = problem.makespan(ordering);
            assert!(makespan.is_finite());
            assert!(makespan + Time::from_micros(1.0) >= optimal, "{ordering:?}");
        }
    }

    #[test]
    fn single_relay_chain_carries_all_remote_bytes_first() {
        let grid = slow_uplink_grid();
        let problem = RelayScatterProblem::from_grid(&grid, ClusterId(0), MessageSize::from_kib(4));
        // Chain: root → relay, then the relay serves every leaf.
        let seq = vec![
            (ClusterId(0), ClusterId(1)),
            (ClusterId(1), ClusterId(2)),
            (ClusterId(1), ClusterId(3)),
            (ClusterId(1), ClusterId(4)),
        ];
        let schedule = problem.retime(&seq, "chain");
        assert_eq!(schedule.events[0].payload, problem.total_remote_bytes());
        assert!(schedule.makespan().is_finite());
    }

    /// Two singleton clusters with asymmetric directed links — the instance
    /// that catches any send/receive-interface role inversion.
    fn asymmetric_pair() -> Grid {
        let lan = PLogP::affine(Time::from_micros(50.0), Time::from_micros(20.0), 110e6);
        let cheap = PLogP::constant(Time::from_millis(1.0), Time::from_millis(10.0));
        let expensive = PLogP::constant(Time::from_millis(1.0), Time::from_millis(1000.0));
        Grid::builder()
            .cluster(Cluster::with_plogp(ClusterId(0), "a", 1, lan.clone()))
            .cluster(Cluster::with_plogp(ClusterId(1), "b", 1, lan))
            .link_directed(ClusterId(0), ClusterId(1), cheap)
            .link_directed(ClusterId(1), ClusterId(0), expensive)
            .build()
            .unwrap()
    }

    #[test]
    fn gather_makespan_equals_the_mirrored_scatter_bit_for_bit() {
        let grid = grid5000_table3();
        let per_node = MessageSize::from_kib(64);
        let gather = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
        let mirror = RelayScatterProblem::from_grid(&grid.transposed(), ClusterId(0), per_node);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            let g = gather.makespan(ordering);
            let s = mirror.makespan(ordering);
            assert_eq!(
                g.as_secs().to_bits(),
                s.as_secs().to_bits(),
                "{ordering:?}: gather {g} diverges from mirrored scatter {s}"
            );
        }
    }

    #[test]
    fn gather_prices_edges_on_the_reversed_link_direction() {
        // Regression for the scatter-direction role inversion: on the
        // asymmetric pair, scattering from 0 uses the cheap 0 → 1 link but
        // gathering *to* 0 must pay the expensive 1 → 0 uplink.
        let grid = asymmetric_pair();
        let per_node = MessageSize::from_kib(1);
        let scatter = RelayScatterProblem::from_grid(&grid, ClusterId(0), per_node);
        let gather = RelayGatherProblem::from_grid(&grid, ClusterId(0), per_node);
        let s = scatter.makespan(RelayOrdering::Direct);
        let g = gather.makespan(RelayOrdering::Direct);
        assert!(
            g > s * 10.0,
            "gather ({g}) must pay the expensive reverse link, scatter paid {s}"
        );
        // And the dual direction agrees: gathering to 1 is as cheap as
        // scattering from 1 is expensive.
        let gather_to_1 = RelayGatherProblem::from_grid(&grid, ClusterId(1), per_node);
        assert!(gather_to_1.makespan(RelayOrdering::Direct) < g);
    }

    #[test]
    fn reflected_gather_schedule_is_executable() {
        // Replay the reflected events forward and check feasibility: every
        // child hands off after its local gather and after all its own
        // receives, and receives serialise on each parent's interface.
        let grid = grid5000_table3();
        let problem = RelayGatherProblem::from_grid(&grid, ClusterId(2), MessageSize::from_kib(64));
        for ordering in [RelayOrdering::Direct, RelayOrdering::EarliestCompletion] {
            let schedule = problem.schedule(ordering);
            let n = problem.num_clusters();
            assert_eq!(schedule.events.len(), n - 1);
            let eps = Time::from_micros(1.0);
            let mut last_window_end = vec![Time::ZERO; n];
            let mut received_all_by = vec![Time::ZERO; n];
            for e in &schedule.events {
                // Events come in time order; the payload occupies the
                // receiver's interface for its final `g` before `arrival`.
                let gap = grid.gap(e.sender, e.receiver, e.payload);
                let occupancy_start = e.arrival - gap;
                assert!(
                    occupancy_start + eps >= last_window_end[e.receiver.index()],
                    "{ordering:?}: receives overlap on {}",
                    e.receiver
                );
                last_window_end[e.receiver.index()] = e.arrival;
                // The child hands off only once its own subtree is complete
                // and its local gather is done.
                assert!(e.start + eps >= received_all_by[e.sender.index()]);
                assert!(e.start + eps >= problem.local_gather(e.sender));
                received_all_by[e.receiver.index()] =
                    received_all_by[e.receiver.index()].max(e.arrival);
            }
            assert!(schedule.makespan().approx_eq(
                received_all_by[ClusterId(2).index()].max(problem.local_gather(ClusterId(2))),
                eps
            ));
        }
    }

    #[test]
    fn forward_gather_timing_matches_the_reflection() {
        let grid = grid5000_table3();
        let problem = RelayGatherProblem::from_grid(&grid, ClusterId(0), MessageSize::from_kib(16));
        // A star and a chain, timed both ways.
        let star: Vec<(ClusterId, ClusterId)> =
            (1..6).map(|c| (ClusterId(0), ClusterId(c))).collect();
        let chain: Vec<(ClusterId, ClusterId)> =
            (1..6).map(|c| (ClusterId(c - 1), ClusterId(c))).collect();
        for seq in [star, chain] {
            let reflected = problem.retime(&seq, "t").makespan();
            let forward = problem.forward_makespan(&seq);
            assert!(
                forward.approx_eq(reflected, Time::from_micros(10.0)),
                "forward {forward} vs reflected {reflected}"
            );
        }
    }

    #[test]
    fn gather_brute_force_brackets_the_greedy_on_grid5000() {
        let problem = RelayGatherProblem::from_grid(
            &grid5000_table3(),
            ClusterId(0),
            MessageSize::from_kib(16),
        );
        let optimal = problem.optimal_makespan();
        let forward_optimal = problem.optimal_forward_makespan();
        let eps = Time::from_micros(10.0);
        assert!(optimal.approx_eq(forward_optimal, eps.max(optimal * 1e-9)));
        let best_direct = problem.best_direct_makespan();
        assert!(optimal <= best_direct + eps);
        for ordering in [
            RelayOrdering::Direct,
            RelayOrdering::EarliestCompletion,
            RelayOrdering::EarliestLocalFinish,
        ] {
            assert!(problem.makespan(ordering) + eps >= optimal, "{ordering:?}");
        }
    }

    #[test]
    fn allgather_estimate_counts_both_directions_with_one_terminal_latency() {
        // Same construction as the all-to-all regression: asymmetric gaps,
        // singleton clusters, 1-byte blocks. Cluster 0's interface must pay
        // 10 ms out + 1000 ms in = 1010 ms, beating its receive path
        // (1000 + 1 ms) and both of cluster 1's bounds.
        let grid = asymmetric_pair();
        let estimate = allgather_estimate(&grid, MessageSize::from_bytes(1));
        assert!(
            estimate.approx_eq(Time::from_millis(1010.0), Time::from_micros(1.0)),
            "estimate {estimate} should pin both directions"
        );
    }

    #[test]
    fn allgather_schedule_is_never_better_than_the_estimate() {
        let grid = grid5000_table3();
        for &kib in &[1u64, 16, 256] {
            let m = MessageSize::from_kib(kib);
            let schedule = allgather_schedule(&grid, m);
            let estimate = allgather_estimate(&grid, m);
            assert!(schedule.makespan().is_finite());
            assert_eq!(schedule.exchange.transfers.len(), 6 * 5);
            assert!(
                schedule.makespan() >= estimate,
                "schedule {} beat the lower bound {} at {kib} KiB",
                schedule.makespan(),
                estimate
            );
            // The local gather lead-in really gates the interfaces: no
            // transfer starts before its sender's (or receiver's) release.
            for t in &schedule.exchange.transfers {
                assert!(t.start >= schedule.release[t.from.index()]);
                assert!(t.start >= schedule.release[t.to.index()]);
            }
        }
    }

    #[test]
    fn scatter_problem_like_reuses_root_and_message() {
        let grid = grid5000_table3();
        let broadcast = BroadcastProblem::from_grid(&grid, ClusterId(5), MessageSize::from_kib(32));
        let scatter = scatter_problem_like(&broadcast, &grid);
        assert_eq!(scatter.root, ClusterId(5));
        assert_eq!(scatter.per_node, MessageSize::from_kib(32));
        assert_eq!(scatter.root_gap[5], Time::ZERO);
    }
}
