//! What-if perturbations and the replay delta they induce on a commit log.
//!
//! A [`Perturbation`] describes one way a scenario's world deviates from the
//! baseline grid: scaled link capacities, a degraded site uplink, a single
//! degraded link, a whole site's uplinks degraded together, a time-varying
//! capacity window, an alternate root, a cluster dropped from relay duty.
//! The enum used to live in the simulator crate; it moved here so that
//! [`crate::ScheduleEngine::reschedule_perturbed`] can reason about
//! perturbations directly — the simulator re-exports it unchanged.
//!
//! Two consumers read a perturbation:
//!
//! * the **cold path** ([`Perturbation::apply`], [`Perturbation::patch`])
//!   materialises the perturbed grid — either as a fresh `map_links` copy or
//!   as an in-place patch of a reusable scratch grid, both bit-identical;
//! * the **warm path** ([`ReplayDelta::from_perturbations`]) extracts the
//!   *shape* of the change — which sender rows of the cost matrices are
//!   dirty, and whether every change can only worsen (grow) or only improve
//!   (shrink) link costs — which is what the engine's commit-log replay needs
//!   to decide how far a baseline schedule survives verbatim.

use gridcast_plogp::Time;
use gridcast_topology::{ClusterId, Grid};

/// Gap scale applied by [`Perturbation::DropRelay`] to a cluster's outgoing
/// links: large enough that no heuristic ever relays through the cluster
/// (every direct alternative is cheaper by orders of magnitude), finite so
/// the engine's no-NaN and no-∞-arithmetic invariants hold throughout.
pub const DROP_RELAY_FACTOR: f64 = 1e6;

/// One way a scenario deviates from the baseline grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Multiply every inter-cluster link's gap by `factor` (`> 1` = a slower
    /// grid, `< 1` = a faster one). Latencies are unchanged.
    ScaleAllLinks {
        /// Gap multiplier, positive and finite.
        factor: f64,
    },
    /// Multiply the **outgoing** links of one cluster by `factor` — a
    /// degraded site uplink (the cluster still receives at full rate).
    DegradeUplink {
        /// The cluster whose uplink degrades.
        cluster: ClusterId,
        /// Gap multiplier, positive and finite.
        factor: f64,
    },
    /// Multiply the gap of one **directed** link by `factor` — the finest
    /// perturbation grain, and the one the warm-start speedup gate measures.
    DegradeLink {
        /// Sending side of the degraded link.
        from: ClusterId,
        /// Receiving side of the degraded link.
        to: ClusterId,
        /// Gap multiplier, positive and finite.
        factor: f64,
    },
    /// Correlated multi-link degradation: the uplinks of `span` consecutive
    /// clusters starting at `first` all scale by the same `factor` — the
    /// "every cluster of a site shares the degraded WAN egress" scenario.
    /// Grid generators lay clusters of a site out contiguously, so a site is
    /// a cluster range.
    DegradeSite {
        /// First cluster of the site.
        first: ClusterId,
        /// Number of consecutive clusters forming the site (≥ 1).
        span: usize,
        /// Gap multiplier applied to every uplink of the site, positive and
        /// finite.
        factor: f64,
    },
    /// Time-varying capacity: the gap of one directed link scales by
    /// `factor` for transmissions **starting** inside `[from_time, until)`.
    ///
    /// The static pLogP model the prediction leg prices is unchanged — the
    /// window exists only at execution time, where the simulator lowers it
    /// onto the fault injector's capacity windows. A warm replay therefore
    /// sees a clean delta and replays the baseline log verbatim.
    TimeVaryingCapacity {
        /// Sending side of the affected link.
        from: ClusterId,
        /// Receiving side of the affected link.
        to: ClusterId,
        /// Gap multiplier inside the window, positive and finite.
        factor: f64,
        /// Start of the window (inclusive).
        from_time: Time,
        /// End of the window (exclusive).
        until: Time,
    },
    /// Root the broadcast at a different cluster.
    AlternateRoot {
        /// The replacement root.
        root: ClusterId,
    },
    /// Remove a cluster from relay duty: its outgoing links become
    /// [`DROP_RELAY_FACTOR`] times slower, so no gap-aware schedule forwards
    /// through it while it remains reachable at full rate. (FEF scores edges
    /// by latency alone and stays blind to the penalty by design — its
    /// what-if report then carries the inflated makespan, which is exactly
    /// the comparison the sweep exists to surface.)
    DropRelay {
        /// The cluster excluded from relaying.
        cluster: ClusterId,
    },
}

/// Which directed links a perturbation's gap scaling touches.
#[derive(Debug, Clone, Copy, PartialEq)]
enum LinkSelector {
    /// Every inter-cluster link.
    All,
    /// The outgoing links of `span` consecutive clusters starting at `first`.
    Rows { first: ClusterId, span: usize },
    /// One directed link.
    One { from: ClusterId, to: ClusterId },
}

impl LinkSelector {
    #[inline]
    fn matches(&self, from: ClusterId, to: ClusterId) -> bool {
        match *self {
            LinkSelector::All => true,
            LinkSelector::Rows { first, span } => {
                from.index() >= first.index() && from.index() < first.index() + span
            }
            LinkSelector::One { from: f, to: t } => from == f && to == t,
        }
    }
}

impl Perturbation {
    /// The gap scaling this perturbation performs on the static link model,
    /// if any (`AlternateRoot` moves the root and `TimeVaryingCapacity` only
    /// exists at execution time — neither touches the model).
    fn gap_scaling(&self) -> Option<(LinkSelector, f64)> {
        match *self {
            Perturbation::ScaleAllLinks { factor } => Some((LinkSelector::All, factor)),
            Perturbation::DegradeUplink { cluster, factor } => Some((
                LinkSelector::Rows {
                    first: cluster,
                    span: 1,
                },
                factor,
            )),
            Perturbation::DegradeLink { from, to, factor } => {
                Some((LinkSelector::One { from, to }, factor))
            }
            Perturbation::DegradeSite {
                first,
                span,
                factor,
            } => Some((LinkSelector::Rows { first, span }, factor)),
            Perturbation::DropRelay { cluster } => Some((
                LinkSelector::Rows {
                    first: cluster,
                    span: 1,
                },
                DROP_RELAY_FACTOR,
            )),
            Perturbation::TimeVaryingCapacity { .. } | Perturbation::AlternateRoot { .. } => None,
        }
    }

    /// Applies the perturbation cold: updates `root` in place and returns a
    /// freshly built grid when any link changed (`None` when the static link
    /// model is untouched). The caller chains perturbations left to right.
    pub fn apply(&self, base: &Grid, root: &mut ClusterId) -> Option<Grid> {
        if let Perturbation::AlternateRoot { root: r } = *self {
            *root = r;
            return None;
        }
        let (selector, factor) = self.gap_scaling()?;
        Some(base.map_links(|from, to, link| {
            if selector.matches(from, to) {
                link.with_scaled_gap(factor)
            } else {
                link.clone()
            }
        }))
    }

    /// Applies the perturbation's gap scaling to `scratch` **in place**,
    /// recording every patched directed link in `touched` so the caller can
    /// later restore the scratch grid from its baseline.
    ///
    /// Scaling the current link value (rather than the baseline's) keeps a
    /// chain of patches bit-identical to the cold path's chain of
    /// `map_links` copies: both evaluate `((g · f₁) · f₂) …` in perturbation
    /// order. Root moves and capacity windows patch nothing.
    pub fn patch(&self, scratch: &mut Grid, touched: &mut Vec<(ClusterId, ClusterId)>) {
        let Some((selector, factor)) = self.gap_scaling() else {
            return;
        };
        let n = scratch.num_clusters();
        let mut patch_one = |grid: &mut Grid, from: ClusterId, to: ClusterId| {
            let scaled = grid.link(from, to).with_scaled_gap(factor);
            grid.set_link(from, to, scaled);
            touched.push((from, to));
        };
        match selector {
            LinkSelector::One { from, to } => patch_one(scratch, from, to),
            LinkSelector::Rows { first, span } => {
                for i in first.index()..(first.index() + span).min(n) {
                    for j in 0..n {
                        if i != j {
                            patch_one(scratch, ClusterId(i), ClusterId(j));
                        }
                    }
                }
            }
            LinkSelector::All => {
                for i in 0..n {
                    for j in 0..n {
                        if i != j {
                            patch_one(scratch, ClusterId(i), ClusterId(j));
                        }
                    }
                }
            }
        }
    }

    /// Whether this perturbation moves the broadcast root.
    pub fn moves_root(&self) -> bool {
        matches!(self, Perturbation::AlternateRoot { .. })
    }
}

/// The monotonicity of a delta's link-cost changes, as seen through the
/// engine's candidate order.
///
/// The warm replay can keep trusting a baseline commit log past the point
/// where changed state enters the sender set only when every change pushes
/// candidate tuples in one known direction; `Worsening` (every scaled gap
/// grew or stayed) is the direction the minimise-objective policies exploit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaDirection {
    /// No static link changed at all.
    Unchanged,
    /// Every changed gap grew (factor ≥ 1) — costs only get worse.
    Worsening,
    /// Every changed gap shrank (factor ≤ 1) — costs only get better.
    Improving,
    /// Changes in both directions.
    Mixed,
}

impl DeltaDirection {
    fn join(self, other: DeltaDirection) -> DeltaDirection {
        use DeltaDirection::*;
        match (self, other) {
            (Unchanged, d) | (d, Unchanged) => d,
            (a, b) if a == b => a,
            _ => Mixed,
        }
    }
}

/// The shape of a perturbation set, as the engine's commit-log replay needs
/// it: which sender **rows** of the evaluated cost matrices may differ from
/// the baseline problem, and in which [`DeltaDirection`] they moved.
///
/// Row granularity is deliberate: a sender row `s` covers both the edge
/// scores *from* `s` and the receiver bias of `s` (every built-in lookahead
/// reads only the receiver's own outgoing row), so one bitmap answers both
/// "is this commit's sender suspect?" and "is this receiver's bias suspect?".
/// A single degraded link marks its whole sender row — conservative, but a
/// recompute under suspicion is an exact check, so precision costs only a
/// few extra `O(n)` scans, never correctness.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayDelta {
    dirty: Vec<bool>,
    any_dirty: bool,
    direction: DeltaDirection,
}

impl ReplayDelta {
    /// Extracts the delta of a perturbation chain over an `n`-cluster grid.
    pub fn from_perturbations(n: usize, perturbations: &[Perturbation]) -> Self {
        let mut dirty = vec![false; n];
        let mut direction = DeltaDirection::Unchanged;
        for p in perturbations {
            let Some((selector, factor)) = p.gap_scaling() else {
                continue;
            };
            direction = direction.join(if factor >= 1.0 {
                DeltaDirection::Worsening
            } else {
                DeltaDirection::Improving
            });
            match selector {
                LinkSelector::All => dirty.iter_mut().for_each(|d| *d = true),
                LinkSelector::Rows { first, span } => {
                    let end = (first.index() + span).min(n);
                    if first.index() < end {
                        dirty[first.index()..end].fill(true);
                    }
                }
                LinkSelector::One { from, .. } => {
                    if from.index() < n {
                        dirty[from.index()] = true;
                    }
                }
            }
        }
        let any_dirty = dirty.iter().any(|&d| d);
        ReplayDelta {
            dirty,
            any_dirty,
            direction,
        }
    }

    /// A delta with no change at all (replays any compatible log verbatim).
    pub fn clean(n: usize) -> Self {
        ReplayDelta {
            dirty: vec![false; n],
            any_dirty: false,
            direction: DeltaDirection::Unchanged,
        }
    }

    /// Whether the sender row of `cluster` may differ from the baseline.
    #[inline]
    pub fn is_dirty(&self, cluster: usize) -> bool {
        self.dirty[cluster]
    }

    /// Whether any row is dirty.
    #[inline]
    pub fn any_dirty(&self) -> bool {
        self.any_dirty
    }

    /// The monotonicity of the change.
    #[inline]
    pub fn direction(&self) -> DeltaDirection {
        self.direction
    }

    /// Number of clusters the delta covers.
    #[inline]
    pub fn num_clusters(&self) -> usize {
        self.dirty.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_link_marks_one_row_worsening() {
        let delta = ReplayDelta::from_perturbations(
            8,
            &[Perturbation::DegradeLink {
                from: ClusterId(3),
                to: ClusterId(5),
                factor: 4.0,
            }],
        );
        assert!(delta.any_dirty());
        assert_eq!(delta.direction(), DeltaDirection::Worsening);
        for i in 0..8 {
            assert_eq!(delta.is_dirty(i), i == 3);
        }
    }

    #[test]
    fn site_span_marks_the_range() {
        let delta = ReplayDelta::from_perturbations(
            6,
            &[Perturbation::DegradeSite {
                first: ClusterId(2),
                span: 3,
                factor: 2.5,
            }],
        );
        for i in 0..6 {
            assert_eq!(delta.is_dirty(i), (2..5).contains(&i));
        }
    }

    #[test]
    fn time_varying_and_root_moves_are_clean() {
        let delta = ReplayDelta::from_perturbations(
            4,
            &[
                Perturbation::TimeVaryingCapacity {
                    from: ClusterId(0),
                    to: ClusterId(1),
                    factor: 3.0,
                    from_time: Time::ZERO,
                    until: Time::from_millis(50.0),
                },
                Perturbation::AlternateRoot { root: ClusterId(2) },
            ],
        );
        assert!(!delta.any_dirty());
        assert_eq!(delta.direction(), DeltaDirection::Unchanged);
    }

    #[test]
    fn mixed_factors_join_to_mixed() {
        let delta = ReplayDelta::from_perturbations(
            4,
            &[
                Perturbation::DegradeUplink {
                    cluster: ClusterId(0),
                    factor: 2.0,
                },
                Perturbation::DegradeUplink {
                    cluster: ClusterId(1),
                    factor: 0.5,
                },
            ],
        );
        assert_eq!(delta.direction(), DeltaDirection::Mixed);
        assert!(delta.is_dirty(0) && delta.is_dirty(1));
    }

    #[test]
    fn drop_relay_is_worsening() {
        let delta = ReplayDelta::from_perturbations(
            3,
            &[Perturbation::DropRelay {
                cluster: ClusterId(1),
            }],
        );
        assert_eq!(delta.direction(), DeltaDirection::Worsening);
        assert!(delta.is_dirty(1) && !delta.is_dirty(0));
    }
}
