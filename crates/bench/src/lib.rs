//! Shared workload helpers for the criterion benchmarks.
//!
//! Every bench regenerates one of the paper's tables or figures (see DESIGN.md's
//! per-experiment index). The helpers here build the deterministic problem
//! instances the benches operate on so that all benches agree on the workloads
//! and stay reproducible across runs.
//!
//! # `BENCH_engine_scaling.json` schema
//!
//! `benches/engine_scaling.rs` writes a machine-readable report to the
//! workspace root (atomically: a sibling `.tmp` file renamed into place, so a
//! crashed run never leaves a torn report). Top-level keys:
//!
//! * `bench` — always `"engine_scaling"`;
//! * `unit` — `"ns per schedule_all (7 heuristics)"`;
//! * `fitted_exponent` — least-squares slope of `log(median_ns)` over
//!   `log(clusters)` across **all** points (the growth gate; a pure
//!   `O(n^p)` cost would fit `p`);
//! * `points` — one object per cluster count, with:
//!   * `clusters`, `median_ns` — batched `schedule_all` median wall time;
//!   * `growth_vs_prev` — ratio to the previous point's `median_ns`;
//!   * `sharded_median_ns` — median wall time of the heuristic-sharded
//!     `schedule_all_sharded` (only emitted for 500+ clusters, where the
//!     per-thread problem is big enough to amortise thread spawning);
//!   * `per_heuristic_median_ns` — object keyed by heuristic display name,
//!     median `ScheduleEngine::makespan` wall time each;
//!   * `telemetry` — [`gridcast_core::EngineTelemetry`] deltas of one
//!     batch: `rounds`, `invalidations`, `second_best_hits`, `promotions`,
//!     `rescans`, `walked_senders` (senders actually examined by rescan
//!     walks), `bucket_skips` (ready-order buckets the walk retired
//!     wholesale via their cached lower bound) and the derived
//!     `repair_rate` (repaired-from-runner-up / invalidations);
//! * `k_best_probe` — the adaptive-K telemetry: one object per
//!   (cluster count, K) pair for K ∈ {2, 4, 8, 16, 32} at 500/1000
//!   clusters, with the warmed batch wall time (`batch_ns`), `repair_rate`,
//!   `rescans`, `walked_senders` and `bucket_skips` of a
//!   [`ScheduleEngine::with_k_best`](gridcast_core::ScheduleEngine::with_k_best)
//!   engine. Schedules are byte-identical across K (pinned by the core's
//!   parity test), so the probe isolates the pure performance trade-off.
//!
//! The bench fails when `fitted_exponent` exceeds 2.08 (the sweep measures
//! ~2.04 — the tail's remaining rescan walk is memory-bound — while a
//! reintroduced super-quadratic rescan term lands ≥2.15), with
//! `ENGINE_SCALING_BASELINE_GATE=1` (as set in CI) when the 200-cluster
//! `median_ns` regresses more than 15% against the committed report, and
//! with `ENGINE_BATCH_GATE=1` when the 1000-cluster seven-heuristic batch
//! median exceeds its 100 ms absolute-time floor — the raw-speed ladder's
//! target; CI arms a calibrated `ENGINE_BATCH_GATE=200` instead, the
//! current dev-container median (~130–150 ms) plus runner noise.
//!
//! # `BENCH_whatif.json` schema
//!
//! `benches/whatif.rs` sweeps 1000 perturbed 100-cluster scenarios through
//! [`gridcast_simulator::WhatIfRunner`] twice — one worker thread, then all
//! available cores — asserting the two sweeps **bit-identical** report for
//! report and every winning schedule executable (this is CI's check mode;
//! the assertions run on every invocation). Keys: `clusters`, `scenarios`,
//! `single_thread` / `parallel` (`elapsed_s`, `scenarios_per_sec`, worker
//! `threads`), `bit_identical_across_thread_counts` (always `true` — the
//! bench aborts otherwise) and `winners` (how often each heuristic won the
//! what-if, keyed by display name — the quickest check that perturbations
//! actually move the decision).
//!
//! # `BENCH_serving.json` schema
//!
//! `benches/serving.rs` drives the [`gridcast_serve`] daemon's batch loop
//! with a sustained request mix (80% cache hits / 15% warm starts / 5%
//! cold runs) on a 100-cluster Table 2 grid, once with one worker and once
//! with every available core, asserting the transcripts bit-identical and
//! every cached/warm response byte-identical to a cold run of the same
//! request (CI's check mode; the assertions run on every invocation).
//! Keys: `clusters`, `fill_requests`, `mix_requests`, `batch`,
//! `single_thread` / `parallel` (`workers`, `mix_elapsed_s`,
//! `requests_per_sec`, and `p50_us` / `p99_us` — upper bounds of the
//! daemon's log₂ latency histogram, measured batch admission to response
//! render), `traffic` (`cache_hits` / `warm_starts` / `cold_runs` /
//! `errors` counters) and the three always-`true` consistency flags
//! (`bit_identical_across_worker_counts`, `cached_bit_identical_to_cold`,
//! `warm_start_bit_identical_to_cold` — the bench aborts otherwise).
//! With `SERVING_GATE` set (as in CI) the sustained multi-worker
//! throughput must clear `SERVING_FLOOR` (default 1000 requests/s).

#![warn(missing_docs)]
#![deny(unsafe_code)]

use criterion::Criterion;
use gridcast_core::BroadcastProblem;
use gridcast_plogp::MessageSize;
use gridcast_topology::{ClusterId, Grid, GridGenerator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Duration;

/// Criterion configuration shared by every bench: small sample counts and short
/// measurement windows so that the full `cargo bench --workspace` sweep (ten
/// bench binaries, several dozen benchmark ids) completes in minutes while still
/// producing stable medians for the scheduling micro-costs.
pub fn criterion_config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .configure_from_args()
}

/// The deterministic seed every bench derives its instances from.
pub const BENCH_SEED: u64 = 0x0B0B_5CA7;

/// A random Table 2 grid with `clusters` clusters, deterministic in `index`.
pub fn random_grid(clusters: usize, index: u64) -> Grid {
    let mut rng = ChaCha8Rng::seed_from_u64(BENCH_SEED.wrapping_add(index));
    GridGenerator::table2().generate(clusters, &mut rng)
}

/// A broadcast problem (1 MB, rooted at cluster 0) on a random Table 2 grid.
pub fn random_problem(clusters: usize, index: u64) -> BroadcastProblem {
    BroadcastProblem::from_grid(
        &random_grid(clusters, index),
        ClusterId(0),
        MessageSize::from_mib(1),
    )
}

/// A batch of problems for averaging across instances inside one bench
/// iteration.
pub fn problem_batch(clusters: usize, count: u64) -> Vec<BroadcastProblem> {
    (0..count).map(|i| random_problem(clusters, i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batches_are_deterministic() {
        let a = problem_batch(6, 3);
        let b = problem_batch(6, 3);
        assert_eq!(a.len(), 3);
        assert_eq!(a, b);
        assert_ne!(random_problem(6, 0), random_problem(6, 1));
    }
}
