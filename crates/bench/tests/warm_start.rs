//! Warm-start regression suite: the commit-log replay's bit-identity
//! contract swept across all policies, candidate-row widths and random
//! perturbations (single links, whole sites, moved roots) up to 128
//! clusters, plus exact replay-telemetry pins on the acceptance-scale
//! 100-cluster grid.

use gridcast_bench::random_grid;
use gridcast_core::{BroadcastProblem, HeuristicKind, Perturbation, Schedule, ScheduleEngine};
use gridcast_plogp::MessageSize;
use gridcast_topology::ClusterId;
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// The candidate-row widths the sweep exercises: the degenerate head-only
/// cache, small caches, and one past the adaptive default.
const K_SWEEP: [usize; 4] = [1, 2, 4, 16];

fn assert_schedules_bit_identical(warm: &Schedule, cold: &Schedule, what: &str) {
    assert_eq!(warm.events.len(), cold.events.len(), "{what}: event count");
    for (i, (w, c)) in warm.events.iter().zip(&cold.events).enumerate() {
        assert_eq!(w.sender, c.sender, "{what}: sender of event {i}");
        assert_eq!(w.receiver, c.receiver, "{what}: receiver of event {i}");
        assert_eq!(
            w.start.as_secs().to_bits(),
            c.start.as_secs().to_bits(),
            "{what}: start of event {i}"
        );
        assert_eq!(
            w.arrival.as_secs().to_bits(),
            c.arrival.as_secs().to_bits(),
            "{what}: arrival of event {i}"
        );
    }
}

/// Draws one random perturbation: a single degraded link, a degraded site
/// span, or a moved root (the incompatible-log cold-fallback path). Factors
/// mix improving (< 1) and worsening (> 1) scalings.
fn random_perturbation(rng: &mut ChaCha8Rng, clusters: usize, sel: u8) -> Perturbation {
    let factor = if rng.gen_f64() < 0.5 {
        0.2 + 0.7 * rng.gen_f64()
    } else {
        1.0 + 7.0 * rng.gen_f64()
    };
    match sel {
        0 => {
            let from = rng.gen_range_u64(0, clusters as u64) as usize;
            let mut to = rng.gen_range_u64(0, clusters as u64 - 1) as usize;
            if to >= from {
                to += 1;
            }
            Perturbation::DegradeLink {
                from: ClusterId(from),
                to: ClusterId(to),
                factor,
            }
        }
        1 => Perturbation::DegradeSite {
            first: ClusterId(rng.gen_range_u64(0, clusters as u64) as usize),
            span: 1 + rng.gen_range_u64(0, 4) as usize,
            factor,
        },
        _ => Perturbation::AlternateRoot {
            root: ClusterId(rng.gen_range_u64(0, clusters as u64) as usize),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole invariant, randomized: for every policy, every K and a
    /// random perturbation on a random grid of up to 128 clusters, replaying
    /// the baseline commit log under the perturbed problem is bit-identical
    /// to scheduling the perturbed problem cold.
    #[test]
    fn warm_replay_is_bit_identical_for_random_perturbations(
        clusters in 2usize..=128,
        seed in any::<u64>(),
        k_sel in 0usize..=3,
        kind_sel in 0usize..=6,
        perturb_sel in 0u8..=2,
    ) {
        let kind = HeuristicKind::all()[kind_sel];
        let k = K_SWEEP[k_sel];
        let grid = random_grid(clusters, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x00DE_C0DE);
        let message = MessageSize::from_mib(1);
        let root = ClusterId(0);
        let base = BroadcastProblem::from_grid(&grid, root, message);
        let perturbation = random_perturbation(&mut rng, clusters, perturb_sel);

        let mut proot = root;
        let mut cur = grid.clone();
        if let Some(g) = perturbation.apply(&cur, &mut proot) {
            cur = g;
        }
        let perturbed = BroadcastProblem::from_grid(&cur, proot, message);

        let mut engine = ScheduleEngine::with_k_best(k);
        let (_, log) = engine.schedule_logged(&base, kind);
        let cold = engine.schedule(&perturbed, kind);
        let warm =
            engine.reschedule_perturbed(&perturbed, &log, std::slice::from_ref(&perturbation));
        prop_assert_eq!(warm.events.len(), cold.events.len());
        for (i, (w, c)) in warm.events.iter().zip(&cold.events).enumerate() {
            prop_assert_eq!(w.sender, c.sender, "{} K={} event {}", kind, k, i);
            prop_assert_eq!(w.receiver, c.receiver, "{} K={} event {}", kind, k, i);
            prop_assert_eq!(
                w.start.as_secs().to_bits(),
                c.start.as_secs().to_bits(),
                "{} K={} event {} start",
                kind, k, i
            );
            prop_assert_eq!(
                w.arrival.as_secs().to_bits(),
                c.arrival.as_secs().to_bits(),
                "{} K={} event {} arrival",
                kind, k, i
            );
        }
    }
}

/// Deterministic cross-check at the acceptance scale: every policy × every K
/// replays one worsened link on the 100-cluster grid bit-identically.
#[test]
fn every_policy_and_k_replays_the_acceptance_grid() {
    let grid = random_grid(100, 0);
    let message = MessageSize::from_mib(1);
    let base = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
    let perturbation = Perturbation::DegradeLink {
        from: ClusterId(7),
        to: ClusterId(42),
        factor: 3.0,
    };
    let mut proot = ClusterId(0);
    let cur = perturbation
        .apply(&grid, &mut proot)
        .expect("a degraded link changes the grid");
    let perturbed = BroadcastProblem::from_grid(&cur, proot, message);
    for k in K_SWEEP {
        let mut engine = ScheduleEngine::with_k_best(k);
        for kind in HeuristicKind::all() {
            let (_, log) = engine.schedule_logged(&base, kind);
            let cold = engine.schedule(&perturbed, kind);
            let warm = engine.reschedule_perturbed(&perturbed, &log, &[perturbation]);
            assert_schedules_bit_identical(&warm, &cold, &format!("{kind} K={k}"));
        }
    }
}

/// Exact replay-telemetry pins: how far each policy's baseline log survives
/// a single worsened link on the 100-cluster acceptance grid. The three
/// counters always sum to the 99 commits of the schedule; the split is a
/// deterministic function of the replay regimes (gap-blind policies replay
/// everything verbatim, monotone policies repair suspects in place, checked
/// policies recompute from the first commit that exposes dirty state).
#[test]
fn telemetry_pins_on_the_acceptance_grid() {
    let grid = random_grid(100, 0);
    let message = MessageSize::from_mib(1);
    let base = BroadcastProblem::from_grid(&grid, ClusterId(0), message);
    let perturbation = Perturbation::DegradeLink {
        from: ClusterId(7),
        to: ClusterId(42),
        factor: 3.0,
    };
    let mut proot = ClusterId(0);
    let cur = perturbation
        .apply(&grid, &mut proot)
        .expect("a degraded link changes the grid");
    let perturbed = BroadcastProblem::from_grid(&cur, proot, message);
    // (replayed, repaired, recomputed) per policy. Gap-blind policies (Flat
    // Tree, FEF) replay all 99 commits verbatim; the minimising ECEF family
    // repairs the handful of commits touching the dirty sender in place; the
    // maximising BottomUp stays in checked mode and recomputes from the round
    // the dirty cluster joins the sender set.
    let expected: [(u64, u64, u64); 7] = [
        (99, 0, 0),  // Flat Tree
        (99, 0, 0),  // FEF
        (98, 1, 0),  // ECEF
        (97, 2, 0),  // ECEF-LA
        (95, 4, 0),  // ECEF-LAT
        (85, 14, 0), // ECEF-LAt
        (1, 0, 98),  // BottomUp
    ];
    let mut engine = ScheduleEngine::new();
    for (kind, (replayed, repaired, recomputed)) in HeuristicKind::all().iter().zip(expected) {
        let kind = *kind;
        let (_, log) = engine.schedule_logged(&base, kind);
        engine.take_telemetry();
        let _ = engine.reschedule_perturbed(&perturbed, &log, &[perturbation]);
        let t = engine.take_telemetry();
        assert_eq!(
            (t.replayed_commits, t.repaired_commits, t.recomputed_commits),
            (replayed, repaired, recomputed),
            "{kind}: replay telemetry moved"
        );
        assert_eq!(
            t.replayed_commits + t.repaired_commits + t.recomputed_commits,
            99,
            "{kind}: counters must cover every commit"
        );
    }
}
