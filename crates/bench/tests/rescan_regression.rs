//! Pins the engine's invalidation-repair behaviour on a fixed grid.
//!
//! The k-best candidate cache is what keeps `ScheduleEngine` near-`n^2`; a
//! plausible-looking edit to the repair or offer logic can silently degrade it
//! back into rescans without failing any correctness test (schedules stay
//! byte-identical — only the work done changes). This test pins the exact
//! telemetry of the deterministic 100-cluster bench grid so such a regression
//! turns a build red instead of a future scaling sweep.

use gridcast_bench::random_problem;
use gridcast_core::{HeuristicKind, ScheduleEngine};

#[test]
fn rescan_counts_are_pinned_on_the_100_cluster_bench_grid() {
    let problem = random_problem(100, 0);
    let mut engine = ScheduleEngine::new();

    // Exact per-kind expectations on this grid, in `HeuristicKind::all()`
    // order: (invalidations, second-best hits, promotions, rescans,
    // walked_senders, bucket_skips). These are deterministic — the engine is
    // single-threaded and the problem is fixed — so any drift means the
    // invalidation logic changed. If the change is an intentional
    // improvement, re-pin the numbers; if rescans or walked senders grew,
    // the k-best cache (or the bucketed ready-order index) regressed. Bucket
    // skips are rare at 100 clusters — the walk covers only four 32-sender
    // buckets and usually retires on the in-bucket bound first — but the
    // counter being pinned at all keeps the skip path exercised.
    let expected: [(u64, u64, u64, u64, u64, u64); 7] = [
        (0, 0, 0, 0, 0, 0),            // Flat Tree (time-insensitive)
        (0, 0, 0, 0, 0, 0),            // FEF (time-insensitive)
        (732, 204, 273, 255, 6414, 0), // ECEF
        (728, 197, 261, 270, 6379, 0), // ECEF-LA
        (771, 200, 271, 300, 6376, 1), // ECEF-LAT
        (832, 177, 310, 345, 6795, 0), // ECEF-LAt
        (877, 122, 327, 428, 7323, 3), // BottomUp
    ];

    let mut total_invalidations = 0;
    let mut total_repaired = 0;
    for (kind, expected) in HeuristicKind::all().into_iter().zip(expected) {
        let _ = engine.schedule(&problem, kind);
        let t = engine.take_telemetry();
        assert_eq!(t.rounds, 99, "{kind}: one commit per non-root cluster");
        assert_eq!(
            t.invalidations,
            t.second_best_hits + t.promotions + t.rescans,
            "{kind}: every invalidation resolves exactly one way"
        );
        assert_eq!(
            (
                t.invalidations,
                t.second_best_hits,
                t.promotions,
                t.rescans,
                t.walked_senders,
                t.bucket_skips
            ),
            expected,
            "{kind}: cache telemetry drifted on the pinned 100-cluster grid"
        );
        total_invalidations += t.invalidations;
        total_repaired += t.repaired_from_second_best();
    }

    // The acceptance bar of the k-best cache: at least half of all
    // invalidations repair from the cached runners-up without a rescan.
    // The per-policy width tables pick K = 2 at this size for every
    // time-sensitive policy, trading repair coverage (~59% here, ~95% at the
    // old K = 16) for much cheaper rows — the committed k_best_probe shows
    // the narrow rows winning on wall clock at 100 clusters; the tables only
    // widen the rows at 200+ where the repair rate otherwise collapses.
    // The margin leaves room for workload drift, not for broken repairs.
    assert!(
        total_repaired * 2 >= total_invalidations,
        "runner-up repairs cover only {total_repaired}/{total_invalidations} invalidations"
    );
}
