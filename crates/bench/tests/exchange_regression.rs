//! Pins the exchange scheduler's lazy-invalidation behaviour.
//!
//! `ScheduleEngine::schedule_transfers` replaced an O(T²) rescan-per-commit
//! with a lazy-invalidation heap; a plausible-looking edit can silently
//! degrade it back towards quadratic work without failing any correctness
//! test (schedules stay byte-identical to the retained oracle — only the work
//! done changes). This test pins the exact telemetry on deterministic
//! all-to-all workloads and gates the growth so such a regression turns a
//! build red instead of a future scaling sweep.

use gridcast_core::ScheduleEngine;
use gridcast_experiments::figures::gather::alltoall_transfer_set;

/// Exact pins on the 64-cluster all-to-all (T = 4032): total heap pops and
/// the re-keys among them. Deterministic — drift means the lazy-invalidation
/// logic changed. If the change is an intentional improvement, re-pin; if
/// the numbers grew sharply, the heap regressed towards the oracle's full
/// rescans.
const PINNED_POPS_64: u64 = 226_675;
const PINNED_REINSERTS_64: u64 = 222_643;

#[test]
fn exchange_heap_work_is_pinned_and_sub_quadratic() {
    let mut engine = ScheduleEngine::new();
    engine.take_telemetry();

    let set = alltoall_transfer_set(64, 1000);
    let t64 = set.transfers().len() as u64;
    assert_eq!(t64, 64 * 63);
    let _ = engine.schedule_transfers(&set);
    let tel = engine.take_telemetry();
    assert_eq!(tel.exchange_commits, t64);
    assert_eq!(
        tel.exchange_pops,
        tel.exchange_commits + tel.exchange_reinserts,
        "every pop either commits or re-keys a stale entry"
    );
    assert_eq!(
        (tel.exchange_pops, tel.exchange_reinserts),
        (PINNED_POPS_64, PINNED_REINSERTS_64),
        "exchange telemetry drifted on the pinned 64-cluster all-to-all"
    );

    // The oracle's scan count is exactly T·(T+1)/2 — the quadratic yardstick
    // the heap is measured against: ~36x more work at 64 clusters already.
    let _ = engine.schedule_transfers_quadratic(&set);
    let oracle = engine.take_telemetry();
    assert_eq!(oracle.exchange_oracle_scans, t64 * (t64 + 1) / 2);
    assert!(
        tel.exchange_pops * 20 < oracle.exchange_oracle_scans,
        "the heap should do at least 20x less work than the oracle at 64 clusters"
    );

    // Growth gate at ≥200 clusters: doubling the cluster count quadruples T,
    // so quadratic work would grow ~16x per step. The heap's observed work is
    // ~O(T^1.5) on dense all-to-alls (~7.8x per step); the gate leaves margin
    // for workload drift but fails anything near-quadratic.
    let mut pops = Vec::new();
    for clusters in [100usize, 200] {
        let set = alltoall_transfer_set(clusters, 2000 + clusters as u64);
        let _ = engine.schedule_transfers(&set);
        let tel = engine.take_telemetry();
        let t = set.transfers().len() as u64;
        assert_eq!(tel.exchange_commits, t);
        // Far below the oracle's T·(T+1)/2 at this size.
        assert!(
            tel.exchange_pops < t * t / 8,
            "{clusters} clusters: {} pops vs T²/8 = {}",
            tel.exchange_pops,
            t * t / 8
        );
        pops.push(tel.exchange_pops);
    }
    let growth = pops[1] as f64 / pops[0] as f64;
    assert!(
        growth < 12.0,
        "exchange heap work grew {growth:.2}x from 100 to 200 clusters (quadratic-in-T would be ~16x)"
    );
}

/// Exact pins on the batch-shift scheduler's work at 64 clusters (T = 4032)
/// and 400 clusters (T = 159 600): main-heap pops and governance re-homes
/// (`exchange_migrations` — each one now an O(log) adopted-heap push instead
/// of a sorted-`Vec` memmove). Deterministic; if an intentional improvement
/// moves them, re-pin — if they grew, the flip-free adoption path regressed.
#[cfg(feature = "fast-math")]
const PINNED_BS_POPS_64: u64 = 83_109;
#[cfg(feature = "fast-math")]
const PINNED_BS_MIGRATIONS_64: u64 = 40_137;
#[cfg(feature = "fast-math")]
const PINNED_BS_POPS_400: u64 = 9_667_783;
#[cfg(feature = "fast-math")]
const PINNED_BS_MIGRATIONS_400: u64 = 4_764_768;

/// The feature-gated batch-shift scheduler keys *clusters* instead of
/// transfers (with versioned entries instead of re-keys), so on dense
/// all-to-alls its heap work grows ~O(T^1.3) against the lazy heap's
/// ~O(T^1.5) — and since the flip-free adopted-heap bounds landed, each of
/// the ~√n-per-transfer governance re-homes costs O(log) instead of a
/// Θ(queue) memmove, so the measured pop growth (~6.0x per cluster-count
/// doubling, both 100→200 and 200→400) is also the wall-clock growth. The
/// core's proptests pin its timing conformance; this pins the *work* — exact
/// pops/re-homes at 64 and 400 clusters, zero re-keys, and the growth rate —
/// so an edit that silently degrades it back towards per-transfer staling or
/// per-re-home restructuring turns the build red.
#[cfg(feature = "fast-math")]
#[test]
fn batch_shift_work_beats_the_heap_and_grows_slower() {
    let mut engine = ScheduleEngine::new();
    engine.take_telemetry();

    let set = alltoall_transfer_set(64, 1000);
    let t64 = set.transfers().len() as u64;
    let fast = engine.schedule_transfers_batch_shift(&set);
    let tel = engine.take_telemetry();
    assert_eq!(tel.exchange_commits, t64);
    // Versioned entries never re-key: every pop either commits, defers or
    // re-homes a non-governing head, or discards a superseded/drained entry.
    assert_eq!(
        tel.exchange_reinserts, 0,
        "batch-shift re-keyed an entry — versioning is broken"
    );
    assert_eq!(
        (tel.exchange_pops, tel.exchange_migrations),
        (PINNED_BS_POPS_64, PINNED_BS_MIGRATIONS_64),
        "batch-shift telemetry drifted on the pinned 64-cluster all-to-all"
    );
    // Discarded pops are bounded by the pushes that superseded them: two per
    // commit, up to two per deferral/re-home, plus the initial seeding.
    let pushes = 2 * tel.exchange_commits + 2 * tel.exchange_migrations + 64;
    assert!(
        tel.exchange_pops <= pushes,
        "batch-shift popped {} entries but pushed at most {pushes}",
        tel.exchange_pops
    );

    // The lazy heap's work on the identical workload is ~2.7x larger at 64
    // clusters (226k pops vs ~84k); assert a conservative margin so the
    // comparison survives workload drift.
    let heap = engine.schedule_transfers(&set);
    let heap_tel = engine.take_telemetry();
    assert!(
        tel.exchange_pops * 2 < heap_tel.exchange_pops,
        "batch-shift ({} pops) should do at least 2x less work than the \
         lazy heap ({} pops) on a dense 64-cluster all-to-all",
        tel.exchange_pops,
        heap_tel.exchange_pops
    );

    // Growth gate: doubling the cluster count quadruples T. The batch-shift
    // pops grow 6.00x from 100 to 200 clusters and 5.92x from 200 to 400
    // (T^1.29); the lazy heap's grow ~7.8x (T^1.5). Gate every step at 6.5x —
    // tight enough that per-transfer staling (or any regression of the
    // flip-free re-homes back towards restructuring work that shows up as
    // extra pops) fails, loose enough for workload drift. The 400-cluster
    // point is also pinned exactly: growth ratios alone would let a
    // proportional inflation at every size slide through.
    let mut pops = Vec::new();
    for clusters in [100usize, 200, 400] {
        let set = alltoall_transfer_set(clusters, 2000 + clusters as u64);
        let _ = engine.schedule_transfers_batch_shift(&set);
        let tel = engine.take_telemetry();
        assert_eq!(tel.exchange_commits, set.transfers().len() as u64);
        assert_eq!(tel.exchange_reinserts, 0, "{clusters} clusters: re-key");
        if clusters == 400 {
            assert_eq!(
                (tel.exchange_pops, tel.exchange_migrations),
                (PINNED_BS_POPS_400, PINNED_BS_MIGRATIONS_400),
                "batch-shift telemetry drifted on the pinned 400-cluster all-to-all"
            );
        }
        pops.push(tel.exchange_pops);
    }
    for (i, (&a, &b)) in pops.iter().zip(&pops[1..]).enumerate() {
        let growth = b as f64 / a as f64;
        assert!(
            growth < 6.5,
            "batch-shift work grew {growth:.2}x at step {i} of 100 -> 200 -> 400 \
             clusters (the lazy heap's per-transfer staling grows ~7.8x)"
        );
    }

    // Coarse conformance guard on the wiring (the tight relative-tolerance
    // property lives in the core's `batch_shift` proptest module).
    assert_eq!(fast.transfers.len(), heap.transfers.len());
    for (a, b) in fast.interface_free.iter().zip(&heap.interface_free) {
        let (a, b) = (a.as_secs(), b.as_secs());
        assert!(
            (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1e-9),
            "batch-shift interface_free diverged from the heap: {a} vs {b}"
        );
    }
}
