//! Pins the exchange scheduler's lazy-invalidation behaviour.
//!
//! `ScheduleEngine::schedule_transfers` replaced an O(T²) rescan-per-commit
//! with a lazy-invalidation heap; a plausible-looking edit can silently
//! degrade it back towards quadratic work without failing any correctness
//! test (schedules stay byte-identical to the retained oracle — only the work
//! done changes). This test pins the exact telemetry on deterministic
//! all-to-all workloads and gates the growth so such a regression turns a
//! build red instead of a future scaling sweep.

use gridcast_core::ScheduleEngine;
use gridcast_experiments::figures::gather::alltoall_transfer_set;

/// Exact pins on the 64-cluster all-to-all (T = 4032): total heap pops and
/// the re-keys among them. Deterministic — drift means the lazy-invalidation
/// logic changed. If the change is an intentional improvement, re-pin; if
/// the numbers grew sharply, the heap regressed towards the oracle's full
/// rescans.
const PINNED_POPS_64: u64 = 226_675;
const PINNED_REINSERTS_64: u64 = 222_643;

#[test]
fn exchange_heap_work_is_pinned_and_sub_quadratic() {
    let mut engine = ScheduleEngine::new();
    engine.take_telemetry();

    let set = alltoall_transfer_set(64, 1000);
    let t64 = set.transfers().len() as u64;
    assert_eq!(t64, 64 * 63);
    let _ = engine.schedule_transfers(&set);
    let tel = engine.take_telemetry();
    assert_eq!(tel.exchange_commits, t64);
    assert_eq!(
        tel.exchange_pops,
        tel.exchange_commits + tel.exchange_reinserts,
        "every pop either commits or re-keys a stale entry"
    );
    assert_eq!(
        (tel.exchange_pops, tel.exchange_reinserts),
        (PINNED_POPS_64, PINNED_REINSERTS_64),
        "exchange telemetry drifted on the pinned 64-cluster all-to-all"
    );

    // The oracle's scan count is exactly T·(T+1)/2 — the quadratic yardstick
    // the heap is measured against: ~36x more work at 64 clusters already.
    let _ = engine.schedule_transfers_quadratic(&set);
    let oracle = engine.take_telemetry();
    assert_eq!(oracle.exchange_oracle_scans, t64 * (t64 + 1) / 2);
    assert!(
        tel.exchange_pops * 20 < oracle.exchange_oracle_scans,
        "the heap should do at least 20x less work than the oracle at 64 clusters"
    );

    // Growth gate at ≥200 clusters: doubling the cluster count quadruples T,
    // so quadratic work would grow ~16x per step. The heap's observed work is
    // ~O(T^1.5) on dense all-to-alls (~7.8x per step); the gate leaves margin
    // for workload drift but fails anything near-quadratic.
    let mut pops = Vec::new();
    for clusters in [100usize, 200] {
        let set = alltoall_transfer_set(clusters, 2000 + clusters as u64);
        let _ = engine.schedule_transfers(&set);
        let tel = engine.take_telemetry();
        let t = set.transfers().len() as u64;
        assert_eq!(tel.exchange_commits, t);
        // Far below the oracle's T·(T+1)/2 at this size.
        assert!(
            tel.exchange_pops < t * t / 8,
            "{clusters} clusters: {} pops vs T²/8 = {}",
            tel.exchange_pops,
            t * t / 8
        );
        pops.push(tel.exchange_pops);
    }
    let growth = pops[1] as f64 / pops[0] as f64;
    assert!(
        growth < 12.0,
        "exchange heap work grew {growth:.2}x from 100 to 200 clusters (quadratic-in-T would be ~16x)"
    );
}
