//! Table 3 workload: Lowekamp-style logical-cluster detection over the 88
//! GRID'5000 machines.

use criterion::{criterion_group, criterion_main, Criterion};
use gridcast_experiments::tables;
use gridcast_topology::clustering::synthesize_node_matrix;
use gridcast_topology::{detect_logical_clusters, Grid5000Spec, LowekampConfig};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("\n{}", tables::table3());
    let spec = Grid5000Spec::table3();
    let matrix = synthesize_node_matrix(&spec.sizes, &spec.latency_us);
    c.bench_function("table3_detect_clusters_88_nodes", |b| {
        b.iter(|| {
            black_box(detect_logical_clusters(
                black_box(&matrix),
                LowekampConfig { tolerance: 0.30 },
            ))
        })
    });
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
