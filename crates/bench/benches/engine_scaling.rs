//! Scaling of the batched `ScheduleEngine::schedule_all` entry point.
//!
//! Times the full seven-heuristic batch from 10 up to 1000 clusters to pin the
//! engine's sub-cubic (`O(n² log n)`) growth — the seed's per-heuristic round
//! loops were `O(n³)` and worse with lookahead, and the first engine still
//! carried a super-quadratic rescan term that the k-best candidate cache now
//! amortises away. Besides the criterion report, the bench writes
//! `BENCH_engine_scaling.json` at the workspace root (schema documented in
//! `gridcast_bench`'s crate docs) with batch and per-heuristic medians, the
//! heuristic-sharded timings at 500+ clusters, the engine's cache telemetry,
//! and the least-squares growth exponent — and fails loudly if that exponent
//! leaves the `n^2.08` envelope, if the sharded batch is slower than the
//! serial one by more than 5% at 500+ clusters, (under
//! `ENGINE_SCALING_BASELINE_GATE=1`) if the 200-cluster median regresses more
//! than 15% against the committed report, or (under `ENGINE_BATCH_GATE=1`, or
//! `=<millis>` for a custom floor) if the 1000-cluster seven-heuristic batch
//! median exceeds the 100 ms absolute-time floor.
//!
//! The report also carries the **adaptive-K probe**: the candidate-row width
//! K is a pure performance knob (schedules are byte-identical for any K ≥ 1,
//! pinned by the core's parity test and the root `proptest_invariants`
//! parity proptest), so the sweep runs one batch per K ∈ {2, 4, 8, 16, 32}
//! at 500 and 1000 clusters and records each configuration's repair rate,
//! rescan count and wall time under `k_best_probe`, plus the width
//! `adaptive_k_best(n)` actually picks per sweep size — the evidence behind
//! the per-policy width tables (`adaptive_k_best_for`: static rows stay at
//! K=1, gradually decaying policies step 2 → 4 → 6, steeply decaying ones
//! 2 → 4 → 8).
//!
//! Under `ENGINE_SCALING_FRONTIER=1` the report additionally measures a
//! 10 000-cluster frontier point (grid generation plus one seven-heuristic
//! batch — several minutes); without the variable the previously committed
//! frontier block is carried over verbatim so regenerating the report never
//! silently drops it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridcast_bench::random_problem;
use gridcast_core::{
    adaptive_k_best, schedule_all_sharded, EngineTelemetry, HeuristicKind, ScheduleEngine,
};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 6] = [10, 50, 100, 200, 500, 1000];

/// Cluster count from which the sharded batch is also measured (below this the
/// per-heuristic work is too small to amortise thread spawning).
const SHARDED_FROM: usize = 500;

/// The exponent gate: a least-squares fit of `log t` over `log n` must stay
/// below this for the full sweep. The per-policy K tables plus the bucketed
/// rescan index measure ~2.04 on these sizes (the tail's remaining walk is
/// memory-bound, so the fit sits just above 2 even with the rescan counts
/// down ~37%); 2.08 leaves noise headroom while still failing any
/// reintroduced super-quadratic rescan term, which lands ≥2.15.
const MAX_FITTED_EXPONENT: f64 = 2.08;

/// Absolute-time floor (milliseconds) for the 1000-cluster seven-heuristic
/// batch median when `ENGINE_BATCH_GATE` is armed without a custom value.
/// Wall-clock floors are machine-dependent, so the gate stays env-armed like
/// the baseline gate instead of running unconditionally. 100 ms is the
/// target the raw-speed ladder is driving towards; the dev container
/// currently measures ~130–150 ms (the remaining cost is the rescan walk's
/// memory-bound edge pricing, not bookkeeping), so CI arms the gate with an
/// explicit calibrated value instead of the default.
const DEFAULT_BATCH_GATE_MILLIS: f64 = 100.0;

/// Maximum tolerated ratio of the sharded batch median to the serial batch
/// median at `SHARDED_FROM`+ clusters. The sharded path short-circuits to
/// the shared-engine serial path when only one shard would spawn, and uses a
/// pooled engine per thread otherwise, so it must never lose more than
/// measurement noise to the serial path.
const MAX_SHARDED_RATIO: f64 = 1.05;

/// Maximum tolerated regression of the 200-cluster median vs the committed
/// baseline JSON when the baseline gate is enabled.
const MAX_BASELINE_REGRESSION: f64 = 1.15;

/// Candidate-row widths swept by the adaptive-K probe. The small widths are
/// the interesting ones: the calibrated default picks 2 or 4 (see
/// `adaptive_k_best`), and the wide rows document what the extra repair
/// rate costs in row maintenance.
const K_PROBE_WIDTHS: [usize; 5] = [2, 4, 8, 16, 32];

/// Cluster counts the adaptive-K probe measures (where the repair rate
/// actually degrades; see the committed telemetry).
const K_PROBE_SIZES: [usize; 2] = [500, 1000];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    let kinds = HeuristicKind::all();
    for clusters in SIZES {
        let problem = random_problem(clusters, 0);
        let mut engine = ScheduleEngine::new();
        let mut out = Vec::new();
        group.sample_size(if clusters >= SHARDED_FROM { 5 } else { 10 });
        group.throughput(Throughput::Elements(clusters as u64));
        group.bench_with_input(
            BenchmarkId::new("schedule_all", clusters),
            &problem,
            |b, problem| {
                b.iter(|| {
                    engine.schedule_all_into(black_box(problem), &kinds, &mut out);
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();

    report_scaling();
}

/// Median of `samples` timed repetitions of `f`, in nanoseconds per call.
fn median_ns(samples: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut timings: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / reps as f64
        })
        .collect();
    timings.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    timings[timings.len() / 2]
}

struct Point {
    clusters: usize,
    median_ns: f64,
    /// Paired (serial, sharded) medians measured back-to-back through the
    /// same harness, so their ratio is meaningful on a noisy machine.
    sharded_pair_ns: Option<(f64, f64)>,
    per_heuristic_ns: Vec<(&'static str, f64)>,
    telemetry: EngineTelemetry,
}

/// Direct wall-clock measurement feeding `BENCH_engine_scaling.json` and the
/// growth gates (independent of the criterion plumbing).
fn report_scaling() {
    let kinds = HeuristicKind::all();
    let mut engine = ScheduleEngine::new();
    let mut out = Vec::new();

    // Batched medians are sampled round-robin across the sizes (not one size
    // after another), and every sample is repetition-sized to a comparable
    // wall-clock duration. Both choices de-bias the growth factors the gates
    // below assert on: round-robin spreads slow machine drift (thermal
    // throttling, noisy neighbours) evenly over the sizes, and equal-duration
    // samples absorb background contamination at the same *rate* everywhere —
    // otherwise the longest-running size soaks up the most noise and its
    // ratio to the previous size is systematically inflated.
    const SAMPLE_TARGET_SECS: f64 = 0.2;
    let problems: Vec<_> = SIZES.map(|clusters| random_problem(clusters, 0)).into();
    let mut batch_samples: Vec<Vec<f64>> = vec![Vec::new(); SIZES.len()];
    let mut batch_reps: Vec<usize> = Vec::new();
    for problem in &problems {
        // Warm buffers and size each sample's repetition count.
        engine.schedule_all_into(problem, &kinds, &mut out);
        let start = Instant::now();
        engine.schedule_all_into(problem, &kinds, &mut out);
        let one = start.elapsed().as_secs_f64().max(1e-9);
        batch_reps.push(((SAMPLE_TARGET_SECS / one) as usize).clamp(1, 100_000));
    }
    for _ in 0..9 {
        for (i, problem) in problems.iter().enumerate() {
            let reps = batch_reps[i];
            let start = Instant::now();
            for _ in 0..reps {
                engine.schedule_all_into(black_box(problem), &kinds, &mut out);
            }
            batch_samples[i].push(start.elapsed().as_secs_f64() * 1e9 / reps as f64);
        }
    }
    let reps_for = |clusters: usize| (2_000 / clusters).max(2);

    let mut points: Vec<Point> = Vec::new();
    for (i, clusters) in SIZES.into_iter().enumerate() {
        let problem = &problems[i];
        let reps = reps_for(clusters);
        let batch = {
            let samples = &mut batch_samples[i];
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
            samples[samples.len() / 2]
        };
        // One clean batch for the telemetry deltas.
        engine.take_telemetry();
        engine.schedule_all_into(problem, &kinds, &mut out);
        let telemetry = engine.take_telemetry();
        // Per-heuristic medians over the allocation-free makespan path.
        let per_heuristic_ns = kinds
            .iter()
            .map(|&kind| {
                let _ = engine.makespan(problem, kind);
                let ns = median_ns(5, reps, || {
                    black_box(engine.makespan(black_box(problem), kind));
                });
                (kind.name(), ns)
            })
            .collect();
        // Heuristic-sharded batch: only meaningful once the per-thread work
        // dwarfs thread spawning. Paired with a serial measurement through
        // the identical harness so the ratio gate below compares like with
        // like: the samples alternate between the two sides and each keeps
        // its minimum — measuring one side wholesale before the other lets a
        // few milliseconds of background drift masquerade as a systematic
        // sharding loss, and the min is the one estimator that discards
        // contamination instead of averaging it in.
        let sharded_pair_ns = (clusters >= SHARDED_FROM).then(|| {
            let _ = black_box(schedule_all_sharded(problem, &kinds));
            let (mut serial, mut sharded) = (f64::INFINITY, f64::INFINITY);
            for _ in 0..5 {
                serial = serial.min(median_ns(1, reps, || {
                    engine.schedule_all_into(black_box(problem), &kinds, &mut out);
                }));
                sharded = sharded.min(median_ns(1, reps, || {
                    black_box(schedule_all_sharded(black_box(problem), &kinds));
                }));
            }
            (serial, sharded)
        });
        let point = Point {
            clusters,
            median_ns: batch,
            sharded_pair_ns,
            per_heuristic_ns,
            telemetry,
        };
        let growth = points
            .last()
            .map(|prev| batch / prev.median_ns)
            .unwrap_or(1.0);
        println!(
            "engine_scaling: {clusters:>4} clusters -> {batch:>12.0} ns/batch (x{growth:.2}) \
             repair_rate={:.3} rescans={}",
            point.telemetry.repair_rate(),
            point.telemetry.rescans
        );
        points.push(point);
    }

    let exponent = fitted_exponent(&points);
    println!("engine_scaling: least-squares growth exponent {exponent:.3}");

    let probe = k_best_probe(&problems);
    let baseline_200 = read_baseline_median(200);
    let frontier = if std::env::var_os("ENGINE_SCALING_FRONTIER").is_some() {
        Some(measure_frontier())
    } else {
        read_frontier_block()
    };
    write_report(&points, exponent, &probe, frontier.as_deref());

    assert!(
        exponent < MAX_FITTED_EXPONENT,
        "schedule_all growth exponent {exponent:.3} exceeds {MAX_FITTED_EXPONENT} \
         (super-quadratic rescan term is back?)"
    );
    for point in &points {
        if let Some((serial, sharded)) = point.sharded_pair_ns {
            let ratio = sharded / serial;
            println!(
                "engine_scaling: {:>4} clusters sharded/serial ratio {ratio:.3}",
                point.clusters
            );
            assert!(
                ratio <= MAX_SHARDED_RATIO,
                "sharded batch at {} clusters is {:.1}% slower than the paired \
                 serial batch (gate: {:.0}%) — thread spawn overhead is back",
                point.clusters,
                (ratio - 1.0) * 100.0,
                (MAX_SHARDED_RATIO - 1.0) * 100.0
            );
        }
    }
    if let Some(armed) = std::env::var("ENGINE_BATCH_GATE").ok().filter(|v| v != "0") {
        // `ENGINE_BATCH_GATE=1` arms the default floor; any other value is a
        // custom floor in milliseconds.
        let gate_ms: f64 = match armed.parse() {
            Ok(ms) if armed != "1" => ms,
            _ => DEFAULT_BATCH_GATE_MILLIS,
        };
        let current_ms = points
            .iter()
            .find(|p| p.clusters == 1000)
            .expect("1000-cluster point is always measured")
            .median_ns
            / 1e6;
        println!(
            "engine_scaling: 1000-cluster batch median {current_ms:.1} ms \
             (gate: {gate_ms:.0} ms)"
        );
        assert!(
            current_ms <= gate_ms,
            "1000-cluster seven-heuristic batch median {current_ms:.1} ms \
             exceeds the {gate_ms:.0} ms ENGINE_BATCH_GATE floor"
        );
    }
    if std::env::var_os("ENGINE_SCALING_BASELINE_GATE").is_some() {
        let current = points
            .iter()
            .find(|p| p.clusters == 200)
            .expect("200-cluster point is always measured")
            .median_ns;
        if let Some(baseline) = baseline_200 {
            assert!(
                current <= baseline * MAX_BASELINE_REGRESSION,
                "200-cluster median {current:.0} ns regressed more than \
                 {:.0}% vs committed baseline {baseline:.0} ns",
                (MAX_BASELINE_REGRESSION - 1.0) * 100.0
            );
        } else {
            println!("engine_scaling: no committed baseline found; skipping regression gate");
        }
    }
}

/// One measurement of the adaptive-K probe: a full seven-heuristic batch run
/// with candidate rows of width `k`.
struct KProbePoint {
    clusters: usize,
    k: usize,
    batch_ns: f64,
    telemetry: EngineTelemetry,
}

/// Runs one warmed batch per (cluster count, K) pair and collects its
/// telemetry delta and wall time. Schedules are byte-identical across K (the
/// core's parity test pins it); only the repair/rescan split moves.
fn k_best_probe(problems: &[gridcast_core::BroadcastProblem]) -> Vec<KProbePoint> {
    let kinds = HeuristicKind::all();
    let mut out = Vec::new();
    for &clusters in &K_PROBE_SIZES {
        let problem = problems
            .iter()
            .zip(SIZES)
            .find(|&(_, size)| size == clusters)
            .map(|(p, _)| p)
            .expect("probe sizes are a subset of the sweep sizes");
        for &k in &K_PROBE_WIDTHS {
            let mut engine = ScheduleEngine::with_k_best(k);
            let mut schedules = Vec::new();
            // Warm the buffers, then measure one clean batch.
            engine.schedule_all_into(problem, &kinds, &mut schedules);
            engine.take_telemetry();
            let start = Instant::now();
            engine.schedule_all_into(black_box(problem), &kinds, &mut schedules);
            let batch_ns = start.elapsed().as_secs_f64() * 1e9;
            let telemetry = engine.take_telemetry();
            println!(
                "engine_scaling: K probe {clusters:>4} clusters K={k:<2} -> \
                 repair_rate={:.3} rescans={} ({batch_ns:>12.0} ns/batch)",
                telemetry.repair_rate(),
                telemetry.rescans
            );
            out.push(KProbePoint {
                clusters,
                k,
                batch_ns,
                telemetry,
            });
        }
    }
    out
}

/// Least-squares slope of `log(median_ns)` over `log(clusters)` — the growth
/// exponent of the whole sweep. Pairwise ratios are noisy at small `n` (a
/// single slow sample doubles a ratio); the fit uses every point at once.
fn fitted_exponent(points: &[Point]) -> f64 {
    let n = points.len() as f64;
    let xs = points.iter().map(|p| (p.clusters as f64).ln());
    let ys = points.iter().map(|p| p.median_ns.ln());
    let mean_x: f64 = xs.clone().sum::<f64>() / n;
    let mean_y: f64 = ys.clone().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var = 0.0;
    for (x, y) in xs.zip(ys) {
        cov += (x - mean_x) * (y - mean_y);
        var += (x - mean_x) * (x - mean_x);
    }
    cov / var
}

/// Path of the JSON report, anchored at the workspace root regardless of the
/// bench invocation directory.
fn report_path() -> &'static str {
    concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine_scaling.json"
    )
}

/// The committed `median_ns` for one cluster count, scraped from the previous
/// report before it is overwritten (tiny hand parser — the offline vendored
/// serde_json has no deserializer).
fn read_baseline_median(clusters: usize) -> Option<f64> {
    let text = std::fs::read_to_string(report_path()).ok()?;
    let marker = format!("\"clusters\": {clusters},");
    let at = text.find(&marker)?;
    let rest = &text[at..];
    let med = rest.find("\"median_ns\":")?;
    let tail = rest[med + "\"median_ns\":".len()..].trim_start();
    let end = tail
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

/// Measures the 10 000-cluster frontier point: grid-generation wall time and
/// one full seven-heuristic batch, plus each heuristic's predicted broadcast
/// makespan at that scale. Several minutes of wall clock (generation alone is
/// ~4.5 minutes), so it only runs under `ENGINE_SCALING_FRONTIER=1`; the
/// returned string is the pre-formatted JSON block `write_report` embeds.
fn measure_frontier() -> String {
    const FRONTIER_CLUSTERS: usize = 10_000;
    println!(
        "engine_scaling: measuring the {FRONTIER_CLUSTERS}-cluster frontier \
         point (several minutes)..."
    );
    let kinds = HeuristicKind::all();
    let start = Instant::now();
    let problem = random_problem(FRONTIER_CLUSTERS, 0);
    let generate_secs = start.elapsed().as_secs_f64();
    println!("engine_scaling: frontier grid generated in {generate_secs:.1} s");
    let mut engine = ScheduleEngine::new();
    let mut out = Vec::new();
    engine.take_telemetry();
    let start = Instant::now();
    engine.schedule_all_into(black_box(&problem), &kinds, &mut out);
    let batch_secs = start.elapsed().as_secs_f64();
    let telemetry = engine.take_telemetry();
    println!("engine_scaling: frontier seven-heuristic batch in {batch_secs:.1} s");

    let mut block = String::new();
    block.push_str("  \"frontier\": {\n");
    let _ = writeln!(
        block,
        "    \"clusters\": {FRONTIER_CLUSTERS}, \"adaptive_k\": {}, \
         \"generate_secs\": {generate_secs:.2}, \"batch_secs\": {batch_secs:.2},",
        adaptive_k_best(FRONTIER_CLUSTERS)
    );
    let _ = writeln!(
        block,
        "    \"rescans\": {}, \"walked_senders\": {}, \"bucket_skips\": {}, \
         \"repair_rate\": {:.3},",
        telemetry.rescans,
        telemetry.walked_senders,
        telemetry.bucket_skips,
        telemetry.repair_rate()
    );
    block.push_str("    \"predicted_makespan_secs\": {");
    for (i, (kind, schedule)) in kinds.iter().zip(&out).enumerate() {
        let _ = write!(
            block,
            "{}\"{}\": {:.2}",
            if i == 0 { "" } else { ", " },
            kind.name(),
            schedule.makespan().as_secs()
        );
    }
    block.push_str("}\n  }");
    block
}

/// Carries the committed frontier block over verbatim when the bench runs
/// without `ENGINE_SCALING_FRONTIER=1`, so regenerating the report never
/// silently drops the expensive measurement (hand scraper, like
/// `read_baseline_median`).
fn read_frontier_block() -> Option<String> {
    let text = std::fs::read_to_string(report_path()).ok()?;
    let at = text.find("  \"frontier\": {")?;
    let close = "\n  }";
    let end = text[at..].find(close)? + close.len();
    Some(text[at..at + end].to_string())
}

fn write_report(points: &[Point], exponent: f64, probe: &[KProbePoint], frontier: Option<&str>) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"engine_scaling\",\n");
    json.push_str("  \"unit\": \"ns per schedule_all (7 heuristics)\",\n");
    let _ = writeln!(json, "  \"fitted_exponent\": {exponent:.3},");
    json.push_str("  \"points\": [\n");
    for (i, point) in points.iter().enumerate() {
        let growth = if i == 0 {
            1.0
        } else {
            point.median_ns / points[i - 1].median_ns
        };
        let _ = write!(
            json,
            "    {{\"clusters\": {}, \"adaptive_k\": {}, \"median_ns\": {:.0}, \
             \"growth_vs_prev\": {:.2}",
            point.clusters,
            adaptive_k_best(point.clusters),
            point.median_ns,
            growth
        );
        if let Some((serial, sharded)) = point.sharded_pair_ns {
            let _ = write!(
                json,
                ", \"serial_median_ns\": {serial:.0}, \"sharded_median_ns\": {sharded:.0}, \
                 \"sharded_vs_serial\": {:.3}",
                sharded / serial
            );
        }
        json.push_str(",\n     \"per_heuristic_median_ns\": {");
        for (k, (name, ns)) in point.per_heuristic_ns.iter().enumerate() {
            let _ = write!(
                json,
                "{}\"{name}\": {ns:.0}",
                if k == 0 { "" } else { ", " }
            );
        }
        json.push_str("},\n");
        let t = &point.telemetry;
        let _ = writeln!(
            json,
            "     \"telemetry\": {{\"rounds\": {}, \"invalidations\": {}, \
             \"second_best_hits\": {}, \"promotions\": {}, \"rescans\": {}, \
             \"walked_senders\": {}, \"bucket_skips\": {}, \"repair_rate\": {:.3}}}}}{}",
            t.rounds,
            t.invalidations,
            t.second_best_hits,
            t.promotions,
            t.rescans,
            t.walked_senders,
            t.bucket_skips,
            t.repair_rate(),
            if i + 1 == points.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n");
    if let Some(frontier) = frontier {
        json.push_str(frontier);
        json.push_str(",\n");
    }
    json.push_str("  \"k_best_probe\": [\n");
    for (i, p) in probe.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{\"clusters\": {}, \"k\": {}, \"batch_ns\": {:.0}, \
             \"repair_rate\": {:.3}, \"rescans\": {}, \"walked_senders\": {}, \
             \"bucket_skips\": {}}}{}",
            p.clusters,
            p.k,
            p.batch_ns,
            p.telemetry.repair_rate(),
            p.telemetry.rescans,
            p.telemetry.walked_senders,
            p.telemetry.bucket_skips,
            if i + 1 == probe.len() { "" } else { "," }
        );
    }
    json.push_str("  ]\n}\n");

    // Atomic replace: write a sibling tmp file, then rename into place, so an
    // interrupted bench never leaves a torn report.
    let path = report_path();
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("engine_scaling: could not write {path}: {e}");
    }
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
