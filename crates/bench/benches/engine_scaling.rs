//! Scaling of the batched `ScheduleEngine::schedule_all` entry point.
//!
//! Times the full seven-heuristic batch at 10/50/100/200 clusters to pin the
//! engine's sub-cubic (`O(n² log n)`) growth — the seed's per-heuristic round
//! loops were `O(n³)` and worse with lookahead. Besides the criterion report,
//! the bench writes `BENCH_engine_scaling.json` at the workspace root with the
//! measured medians and per-size growth factors, and fails loudly if growth
//! from 100 to 200 clusters exceeds the cubic envelope.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridcast_bench::random_problem;
use gridcast_core::{HeuristicKind, ScheduleEngine};
use std::hint::black_box;
use std::time::Instant;

const SIZES: [usize; 4] = [10, 50, 100, 200];

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_scaling");
    let kinds = HeuristicKind::all();
    for clusters in SIZES {
        let problem = random_problem(clusters, 0);
        let mut engine = ScheduleEngine::new();
        let mut out = Vec::new();
        group.throughput(Throughput::Elements(clusters as u64));
        group.bench_with_input(
            BenchmarkId::new("schedule_all", clusters),
            &problem,
            |b, problem| {
                b.iter(|| {
                    engine.schedule_all_into(black_box(problem), &kinds, &mut out);
                    black_box(out.len())
                })
            },
        );
    }
    group.finish();

    report_scaling();
}

/// Direct wall-clock measurement feeding `BENCH_engine_scaling.json` and the
/// sub-cubic growth assertion (independent of the criterion plumbing).
fn report_scaling() {
    let kinds = HeuristicKind::all();
    let mut engine = ScheduleEngine::new();
    let mut out = Vec::new();
    let mut medians_ns: Vec<(usize, f64)> = Vec::new();
    for clusters in SIZES {
        let problem = random_problem(clusters, 0);
        // Warm up buffers, then take the median of several timed runs.
        engine.schedule_all_into(&problem, &kinds, &mut out);
        let reps = (2_000 / clusters).max(3);
        let mut samples: Vec<f64> = (0..9)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..reps {
                    engine.schedule_all_into(black_box(&problem), &kinds, &mut out);
                }
                start.elapsed().as_secs_f64() * 1e9 / reps as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        medians_ns.push((clusters, samples[samples.len() / 2]));
    }

    let mut json = String::from("{\n  \"bench\": \"engine_scaling\",\n  \"unit\": \"ns per schedule_all (7 heuristics)\",\n  \"points\": [\n");
    for (i, (clusters, ns)) in medians_ns.iter().enumerate() {
        let growth = if i == 0 {
            1.0
        } else {
            ns / medians_ns[i - 1].1
        };
        json.push_str(&format!(
            "    {{\"clusters\": {clusters}, \"median_ns\": {ns:.0}, \"growth_vs_prev\": {growth:.2}}}{}\n",
            if i + 1 == medians_ns.len() { "" } else { "," }
        ));
        println!("engine_scaling: {clusters:>4} clusters -> {ns:>12.0} ns/batch (x{growth:.2})");
    }
    json.push_str("  ]\n}\n");
    // Anchor the report at the workspace root regardless of the bench cwd.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_engine_scaling.json"
    );
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("engine_scaling: could not write {path}: {e}");
    }

    // 100 → 200 clusters doubles n: cubic growth would be ×8; n² log n is
    // ×~4.3. Allow generous noise headroom while still excluding cubic.
    let t100 = medians_ns[2].1;
    let t200 = medians_ns[3].1;
    let growth = t200 / t100;
    assert!(
        growth < 7.0,
        "schedule_all growth 100->200 clusters is x{growth:.2}; expected sub-cubic (< x7)"
    );
}

criterion_group! {
    name = benches;
    config = gridcast_bench::criterion_config();
    targets = bench
}
criterion_main!(benches);
