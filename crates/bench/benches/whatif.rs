//! Throughput of the concurrent what-if runner — and its determinism gate.
//!
//! The paper's pitch is *predictive*: evaluate many candidate worlds, pick
//! the best schedule before paying for it. This bench drives
//! [`WhatIfRunner`] through `SCENARIOS` perturbed scenarios (scaled link
//! capacities, degraded uplinks, alternate roots, dropped relay candidates)
//! of a 100-cluster Table-2 grid — every scenario a full
//! predict-all-heuristics → pick-best → execute-node-level loop over the
//! unified discrete-event core — once on a single worker and once on every
//! available core.
//!
//! It is also the **check mode** CI runs: the two sweeps must be
//! bit-identical report for report (the `schedule_all_sharded` aggregation
//! contract, extended to whole scenario sweeps), and every winning schedule
//! must simulate to a finite completion. Throughput lands in
//! `BENCH_whatif.json` at the workspace root (written atomically), alongside
//! the winner distribution — the quickest sanity check that the perturbations
//! actually move the decision.

use gridcast_bench::random_grid;
use gridcast_core::HeuristicKind;
use gridcast_plogp::MessageSize;
use gridcast_simulator::{Perturbation, Scenario, WhatIfReport, WhatIfRunner};
use gridcast_topology::ClusterId;
use std::fmt::Write as _;
use std::time::Instant;

/// Cluster count of the benched grid (the scale the acceptance gate names).
const CLUSTERS: usize = 100;

/// Number of perturbed scenarios per sweep.
const SCENARIOS: usize = 1000;

/// The deterministic scenario mix: baseline, grid-wide scaling, degraded
/// uplinks, alternate roots and dropped relays in equal parts, parameters
/// varied by index.
fn scenario_mix(clusters: usize, count: usize) -> Vec<Scenario> {
    (0..count)
        .map(|i| match i % 5 {
            0 => Scenario::baseline(),
            1 => Scenario::one(Perturbation::ScaleAllLinks {
                factor: 0.5 + 0.125 * (i % 16) as f64,
            }),
            2 => Scenario::one(Perturbation::DegradeUplink {
                cluster: ClusterId(i % clusters),
                factor: 2.0 + (i % 7) as f64,
            }),
            3 => Scenario::one(Perturbation::AlternateRoot {
                root: ClusterId(i % clusters),
            }),
            _ => Scenario::one(Perturbation::DropRelay {
                cluster: ClusterId(1 + i % (clusters - 1)),
            }),
        })
        .collect()
}

fn assert_bit_identical(a: &[WhatIfReport], b: &[WhatIfReport]) {
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.scenario, y.scenario);
        assert_eq!(x.best, y.best, "winner diverges at scenario {}", x.scenario);
        assert_eq!(x.events, y.events);
        let bits: fn(gridcast_plogp::Time) -> u64 = |t| t.as_secs().to_bits();
        assert!(
            x.makespans
                .iter()
                .zip(&y.makespans)
                .all(|(p, q)| bits(*p) == bits(*q)),
            "predicted makespans diverge at scenario {}",
            x.scenario
        );
        assert_eq!(
            bits(x.predicted),
            bits(y.predicted),
            "prediction diverges at scenario {}",
            x.scenario
        );
        assert_eq!(
            bits(x.simulated),
            bits(y.simulated),
            "simulation diverges at scenario {}",
            x.scenario
        );
    }
}

fn main() {
    let grid = random_grid(CLUSTERS, 0);
    let scenarios = scenario_mix(CLUSTERS, SCENARIOS);
    let message = MessageSize::from_mib(1);
    let runner = WhatIfRunner::new(&grid, message, ClusterId(0));
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let start = Instant::now();
    let sequential = runner.clone().with_threads(1).run(&scenarios);
    let single_elapsed = start.elapsed().as_secs_f64();

    let start = Instant::now();
    let parallel = runner.clone().with_threads(threads).run(&scenarios);
    let parallel_elapsed = start.elapsed().as_secs_f64();

    // Check mode: bit-identical across worker-thread counts, every winner
    // executable.
    assert_bit_identical(&sequential, &parallel);
    for report in &parallel {
        assert!(
            report.simulated.is_finite(),
            "scenario {} simulated to an infinite completion",
            report.scenario
        );
    }

    let single_rate = SCENARIOS as f64 / single_elapsed;
    let parallel_rate = SCENARIOS as f64 / parallel_elapsed;
    println!(
        "whatif: {SCENARIOS} scenarios on {CLUSTERS} clusters -> \
         {single_rate:.1}/s on 1 thread, {parallel_rate:.1}/s on {threads} threads \
         (bit-identical)"
    );

    let mut winners: Vec<(&'static str, usize)> =
        HeuristicKind::all().iter().map(|k| (k.name(), 0)).collect();
    for report in &parallel {
        let slot = winners
            .iter_mut()
            .find(|(name, _)| *name == report.best.name())
            .expect("winner is one of the candidates");
        slot.1 += 1;
    }

    write_report(
        threads,
        single_elapsed,
        parallel_elapsed,
        single_rate,
        parallel_rate,
        &winners,
    );
}

/// Path of the JSON report, anchored at the workspace root regardless of the
/// bench invocation directory.
fn report_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_whatif.json")
}

fn write_report(
    threads: usize,
    single_elapsed: f64,
    parallel_elapsed: f64,
    single_rate: f64,
    parallel_rate: f64,
    winners: &[(&'static str, usize)],
) {
    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"whatif\",\n");
    json.push_str("  \"unit\": \"scenarios per second (predict 7 heuristics + execute best)\",\n");
    let _ = writeln!(json, "  \"clusters\": {CLUSTERS},");
    let _ = writeln!(json, "  \"scenarios\": {SCENARIOS},");
    let _ = writeln!(
        json,
        "  \"single_thread\": {{\"elapsed_s\": {single_elapsed:.3}, \
         \"scenarios_per_sec\": {single_rate:.1}}},"
    );
    let _ = writeln!(
        json,
        "  \"parallel\": {{\"threads\": {threads}, \"elapsed_s\": {parallel_elapsed:.3}, \
         \"scenarios_per_sec\": {parallel_rate:.1}}},"
    );
    let _ = writeln!(json, "  \"bit_identical_across_thread_counts\": true,");
    json.push_str("  \"winners\": {");
    for (i, (name, count)) in winners.iter().enumerate() {
        let _ = write!(
            json,
            "{}\"{name}\": {count}",
            if i == 0 { "" } else { ", " }
        );
    }
    json.push_str("}\n}\n");

    // Atomic replace: write a sibling tmp file, then rename into place, so an
    // interrupted bench never leaves a torn report.
    let path = report_path();
    let tmp = format!("{path}.tmp");
    let result = std::fs::write(&tmp, &json).and_then(|()| std::fs::rename(&tmp, path));
    if let Err(e) = result {
        eprintln!("whatif: could not write {path}: {e}");
    }
}
